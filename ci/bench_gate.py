#!/usr/bin/env python3
"""Bench regression gate for BENCH_audit.json.

`repro --bench` appends one JSON line per run, so after the CI bench job the
file holds the committed baseline entries followed by the fresh ones. This
script compares each fresh entry against the latest committed entry with the
same (seed, jobs) pair and fails if total wall time regressed beyond the
threshold.

usage: bench_gate.py BASELINE CURRENT [--threshold 0.25]
"""

import argparse
import json
import sys


def load_entries(path):
    entries = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{lineno}: malformed JSON line: {e}")
    return entries


def key(entry):
    return (entry.get("seed"), entry.get("jobs"))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="snapshot of the committed BENCH_audit.json")
    ap.add_argument("current", help="BENCH_audit.json after the bench runs")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum allowed fractional total_ms regression (default 0.25)",
    )
    args = ap.parse_args()

    baseline = load_entries(args.baseline)
    current = load_entries(args.current)
    fresh = current[len(baseline):]
    if not fresh:
        sys.exit("no new bench entries found — did the bench runs happen?")

    # Latest committed entry per (seed, jobs) wins.
    committed = {}
    for entry in baseline:
        committed[key(entry)] = entry

    failures = []
    for entry in fresh:
        k = key(entry)
        base = committed.get(k)
        label = f"seed={k[0]} jobs={k[1]}"
        if base is None:
            print(f"{label}: no committed baseline, recording "
                  f"{entry['total_ms']} ms (not gated)")
            continue
        ratio = entry["total_ms"] / base["total_ms"] if base["total_ms"] else float("inf")
        verdict = "ok" if ratio <= 1 + args.threshold else "REGRESSION"
        print(f"{label}: {base['total_ms']} ms -> {entry['total_ms']} ms "
              f"({ratio - 1:+.1%} vs baseline) {verdict}")
        for stage, ms in entry.get("stages", {}).items():
            base_ms = base.get("stages", {}).get(stage)
            if base_ms is not None:
                print(f"  {stage}: {base_ms} ms -> {ms} ms")
        if verdict == "REGRESSION":
            failures.append(label)

    if failures:
        sys.exit(
            f"total wall time regressed >{args.threshold:.0%} vs committed "
            f"baseline for: {', '.join(failures)}"
        )
    print("bench gate passed")


if __name__ == "__main__":
    main()
