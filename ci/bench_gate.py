#!/usr/bin/env python3
"""Bench regression gate for BENCH_audit.json.

`repro --bench` appends one JSON line per run, so after the CI bench job the
file holds the committed baseline entries followed by the fresh ones. This
script compares each fresh entry against the latest committed entry with the
same (seed, jobs) pair and fails if total wall time regressed beyond the
threshold.

usage: bench_gate.py BASELINE CURRENT [--threshold 0.25]
"""

import argparse
import json
import sys


def load_entries(path):
    entries = []
    try:
        fh = open(path)
    except OSError as e:
        sys.exit(
            f"error: cannot read bench file {path!r}: {e.strerror or e}\n"
            "(run `repro --bench` to produce it, or check the CI snapshot step)"
        )
    with fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{lineno}: malformed JSON line: {e}")
    return entries


def key(entry):
    return (entry.get("seed"), entry.get("jobs"))


def total_ms(entry, path, what):
    try:
        return entry["total_ms"]
    except (KeyError, TypeError):
        sys.exit(
            f"error: {what} entry in {path} has no 'total_ms' field "
            f"(keys: {sorted(entry) if isinstance(entry, dict) else type(entry).__name__})"
        )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="snapshot of the committed BENCH_audit.json")
    ap.add_argument("current", help="BENCH_audit.json after the bench runs")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum allowed fractional total_ms regression (default 0.25)",
    )
    args = ap.parse_args()

    baseline = load_entries(args.baseline)
    current = load_entries(args.current)
    fresh = current[len(baseline):]
    if not fresh:
        sys.exit("no new bench entries found — did the bench runs happen?")

    # Latest committed entry per (seed, jobs) wins.
    committed = {}
    for entry in baseline:
        committed[key(entry)] = entry

    failures = []
    for entry in fresh:
        k = key(entry)
        base = committed.get(k)
        label = f"seed={k[0]} jobs={k[1]}"
        if base is None:
            print(f"{label}: no committed baseline, recording "
                  f"{total_ms(entry, args.current, 'fresh')} ms (not gated)")
            continue
        entry_total = total_ms(entry, args.current, "fresh")
        base_total = total_ms(base, args.baseline, "baseline")
        ratio = entry_total / base_total if base_total else float("inf")
        verdict = "ok" if ratio <= 1 + args.threshold else "REGRESSION"
        print(f"{label}: {base_total} ms -> {entry_total} ms "
              f"({ratio - 1:+.1%} vs baseline) {verdict}")
        entry_stages = entry.get("stages", {})
        base_stages = base.get("stages", {})
        for stage, ms in entry_stages.items():
            base_ms = base_stages.get(stage)
            if base_ms is not None:
                print(f"  {stage}: {base_ms} ms -> {ms} ms")
        gone = sorted(set(base_stages) - set(entry_stages))
        if gone:
            print(f"{label}: stage(s) present in baseline but missing from "
                  f"candidate: {', '.join(gone)}")
            failures.append(f"{label} (missing stages: {', '.join(gone)})")
        if verdict == "REGRESSION":
            failures.append(label)

    if failures:
        sys.exit(
            f"bench gate failed (total_ms regression >{args.threshold:.0%} "
            f"or missing stages) for: {'; '.join(failures)}"
        )
    print("bench gate passed")


if __name__ == "__main__":
    main()
