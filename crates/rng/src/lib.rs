//! Self-contained deterministic PRNG with a `rand`-0.8-shaped surface.
//!
//! The workspace builds in fully offline environments, so instead of the
//! crates.io `rand` crate we ship this minimal substitute and alias it to the
//! `rand` dependency name in the workspace manifest. Only the surface the
//! codebase actually uses is provided:
//!
//! * [`rngs::StdRng`] — an xoshiro256++ generator seeded through SplitMix64,
//!   constructed with [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`];
//! * [`seq::SliceRandom`] — Fisher–Yates [`seq::SliceRandom::shuffle`] and
//!   [`seq::SliceRandom::choose`].
//!
//! Every draw is a pure function of the seed: two generators seeded equally
//! produce identical streams on every platform (no `getrandom`, no OS
//! entropy), which is exactly the bit-identical-seed invariant the audit
//! engine is built on.

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// The raw output interface of a generator.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / ((1u64 << 53) as f64))
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range; panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to draw a uniform sample of type `T` from itself.
///
/// Generic over the output (mirroring `rand`) so integer-literal ranges infer
/// their type from how the sampled value is used, not from fallback.
pub trait SampleRange<T> {
    /// Draw one uniform sample. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded via SplitMix64.
    ///
    /// Named `StdRng` for drop-in compatibility with the `rand` crate's
    /// seeded-generator spelling; the algorithm differs from `rand`'s
    /// (ChaCha12) but the contract the workspace relies on — identical seed,
    /// identical stream, forever — is the same.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related sampling (shuffling, choosing).
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Slice element type.
        type Item;
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly chosen element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(3..17usize);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&i));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let r = rng.gen_range(5..400u32);
            assert!((5..400).contains(&r));
        }
    }

    #[test]
    fn unit_floats_cover_zero_one() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_hits_every_element() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [1, 2, 3, 4];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
