//! Full-report assembly: every table and figure streamed into one document
//! from a single shared [`AnalysisIndex`].

use crate::analysis::{audio, bids, creatives, partners, policy, profiling, significance, traffic};
use crate::index::AnalysisIndex;
use crate::observations::Observations;
use std::fmt::Write as _;

/// Render the complete audit report (all tables and figures, in paper
/// order) as one text document.
// analyzer:allow(AS01) -- taint is table7/table11's timing instrumentation; durations are volatile aggregates, never part of the committed bytes
pub fn full_report(obs: &Observations) -> String {
    let ix = AnalysisIndex::build(obs);
    let mut out = String::with_capacity(64 * 1024);
    full_report_into(&ix, &mut out);
    out
}

/// Stream the complete report into `out`; returns render work units.
// analyzer:allow(AS01) -- taint is table7/table11's timing instrumentation; durations are volatile aggregates, never part of the committed bytes
pub fn full_report_into(ix: &AnalysisIndex, out: &mut String) -> usize {
    let obs = ix.obs;
    let mut work = 0usize;

    let _ = writeln!(
        out,
        "ECHO AUDIT REPORT (seed {}, {} pre + {} post crawl iterations)",
        obs.seed, obs.pre_iterations, obs.post_iterations
    );
    out.push('\n');
    work += 1;
    out.push_str(&obs.coverage.render());
    out.push('\n');
    work += 1;

    // Each research-question section opens with the observed/expected counts
    // of the pipeline stages its tables are computed from, so a degraded run
    // is readable as such next to every result.
    let section_note = |out: &mut String, keys: &[&str]| -> usize {
        let parts: Vec<String> = keys
            .iter()
            .filter_map(|k| {
                obs.coverage.sections.get(*k).map(|c| {
                    format!(
                        "{k} {}/{} ({:.1}%)",
                        c.observed,
                        c.expected,
                        c.ratio() * 100.0
                    )
                })
            })
            .collect();
        if parts.is_empty() {
            out.push('\n');
            0
        } else {
            let _ = writeln!(out, "[section coverage — {}]", parts.join(", "));
            out.push('\n');
            1
        }
    };

    out.push_str("== RQ1: Which organizations collect and propagate user data? ==\n\n");
    work += 1;
    work += section_note(out, &["avs.skills", "skill.installs", "skill.interactions"]);
    work += traffic::table1(ix).render_into(out);
    out.push('\n');
    work += traffic::table2(ix).render_into(out);
    out.push('\n');
    work += traffic::table3(ix).render_into(out);
    out.push('\n');
    work += traffic::table4(ix).render_into(out);
    out.push('\n');

    out.push_str("== RQ2: Is voice data used beyond functional purposes? ==\n\n");
    work += 1;
    work += section_note(out, &["crawl.visits", "skill.interactions"]);
    work += bids::table5(ix).render_into(out);
    out.push('\n');
    work += bids::table6(ix).render_into(out);
    out.push('\n');
    work += bids::figure3(ix).render_into(out);
    out.push('\n');
    work += significance::table7(ix).render_into(out);
    out.push('\n');
    work += creatives::table8(ix).render_into(out);
    out.push('\n');
    work += audio::table9(ix).render_into(out);
    out.push('\n');
    work += audio::figure5(ix).render_into(out);
    out.push('\n');
    work += partners::sync_analysis(ix).render_into(out);
    out.push('\n');
    work += partners::table10(ix).render_into(out);
    out.push('\n');
    work += partners::figure6(ix).render_into(out);
    out.push('\n');
    work += significance::table11(ix).render_into(out);
    out.push('\n');
    work += bids::figure7(ix).render_into(out);
    out.push('\n');
    work += profiling::table12(ix).render_into(out);
    out.push('\n');

    work += bids::render_table5_cis_into(&bids::table5_median_cis(ix), out);
    out.push('\n');

    out.push_str("== RQ3: Are practices consistent with privacy policies? ==\n\n");
    work += 1;
    work += section_note(out, &["policy.downloads"]);
    work += policy::policy_stats(ix).render_into(out);
    out.push('\n');
    work += policy::table13(ix, false).render_into(out);
    out.push('\n');
    work += policy::table14(ix).render_into(out);
    out.push('\n');
    work += policy::validation(ix).render_into(out);
    out.push('\n');

    let liars = policy::incorrect_flows(ix);
    if !liars.is_empty() {
        let _ = writeln!(
            out,
            "Policies denying observed flows (PoliCheck 'incorrect'): {}",
            liars
                .iter()
                .map(|(s, dt)| format!("{s} ({dt})"))
                .collect::<Vec<_>>()
                .join("; ")
        );
        out.push('\n');
        work += 1;
    }

    work
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::test_support::{ix, obs};

    #[test]
    fn full_report_contains_every_artifact() {
        let r = full_report(obs());
        for needle in [
            "## Coverage (fault profile:",
            "run status:",
            "Table 1:",
            "Table 2:",
            "Table 3:",
            "Table 4:",
            "Table 5:",
            "Table 6:",
            "Figure 3a",
            "Figure 3b",
            "Table 7:",
            "Table 8:",
            "Table 9:",
            "Figure 5:",
            "Table 10:",
            "Figure 6:",
            "Table 11:",
            "Figure 7:",
            "Table 12:",
            "Table 13:",
            "Table 14:",
            "Cookie syncing",
            "PoliCheck validation",
        ] {
            assert!(r.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn streaming_report_matches_wrapper_and_counts_work() {
        let mut streamed = String::new();
        let work = full_report_into(ix(), &mut streamed);
        assert_eq!(streamed, full_report(obs()));
        assert!(work > 100, "implausibly low render work: {work}");
    }
}
