//! Full-report assembly: every table and figure in one document.

use crate::analysis::{audio, bids, creatives, partners, policy, profiling, significance, traffic};
use crate::observations::Observations;

/// Render the complete audit report (all tables and figures, in paper
/// order) as one text document.
pub fn full_report(obs: &Observations) -> String {
    let mut out = String::new();
    let mut push = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };

    push(format!(
        "ECHO AUDIT REPORT (seed {}, {} pre + {} post crawl iterations)\n",
        obs.seed, obs.pre_iterations, obs.post_iterations
    ));
    push(obs.coverage.render());

    // Each research-question section opens with the observed/expected counts
    // of the pipeline stages its tables are computed from, so a degraded run
    // is readable as such next to every result.
    let section_note = |keys: &[&str]| -> String {
        let parts: Vec<String> = keys
            .iter()
            .filter_map(|k| {
                obs.coverage.sections.get(*k).map(|c| {
                    format!(
                        "{k} {}/{} ({:.1}%)",
                        c.observed,
                        c.expected,
                        c.ratio() * 100.0
                    )
                })
            })
            .collect();
        if parts.is_empty() {
            String::new()
        } else {
            format!("[section coverage — {}]\n", parts.join(", "))
        }
    };

    push("== RQ1: Which organizations collect and propagate user data? ==\n".into());
    push(section_note(&[
        "avs.skills",
        "skill.installs",
        "skill.interactions",
    ]));
    push(traffic::table1(obs).render());
    push(traffic::table2(obs).render());
    push(traffic::table3(obs).render());
    push(traffic::table4(obs).render());

    push("== RQ2: Is voice data used beyond functional purposes? ==\n".into());
    push(section_note(&["crawl.visits", "skill.interactions"]));
    push(bids::table5(obs).render());
    push(bids::table6(obs).render());
    push(bids::figure3(obs).render());
    push(significance::table7(obs).render());
    push(creatives::table8(obs).render());
    push(audio::table9(obs).render());
    push(audio::figure5(obs).render());
    push(partners::sync_analysis(obs).render());
    push(partners::table10(obs).render());
    push(partners::figure6(obs).render());
    push(significance::table11(obs).render());
    push(bids::figure7(obs).render());
    push(profiling::table12(obs).render());

    push(bids::render_table5_cis(&bids::table5_median_cis(obs)));

    push("== RQ3: Are practices consistent with privacy policies? ==\n".into());
    push(section_note(&["policy.downloads"]));
    push(policy::policy_stats(obs).render());
    push(policy::table13(obs, false).render());
    push(policy::table14(obs).render());
    push(policy::validation(obs).render());

    let liars = policy::incorrect_flows(obs);
    if !liars.is_empty() {
        push(format!(
            "Policies denying observed flows (PoliCheck 'incorrect'): {}\n",
            liars
                .iter()
                .map(|(s, dt)| format!("{s} ({dt})"))
                .collect::<Vec<_>>()
                .join("; ")
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::test_support::obs;

    #[test]
    fn full_report_contains_every_artifact() {
        let r = full_report(obs());
        for needle in [
            "## Coverage (fault profile:",
            "run status:",
            "Table 1:",
            "Table 2:",
            "Table 3:",
            "Table 4:",
            "Table 5:",
            "Table 6:",
            "Figure 3a",
            "Figure 3b",
            "Table 7:",
            "Table 8:",
            "Table 9:",
            "Figure 5:",
            "Table 10:",
            "Figure 6:",
            "Table 11:",
            "Figure 7:",
            "Table 12:",
            "Table 13:",
            "Table 14:",
            "Cookie syncing",
            "PoliCheck validation",
        ] {
            assert!(r.contains(needle), "missing {needle}");
        }
    }
}
