//! Plain-text table rendering for analysis outputs.
//!
//! Every analysis struct has a `render()` that goes through [`TextTable`],
//! producing aligned monospace tables like the paper's.

/// A titled, column-aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are right-padded with
    /// empty cells; longer rows extend the column set.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut TextTable {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns, a title line, and a separator.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }

        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut out = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                out.push_str(cell);
                if i + 1 < widths.len() {
                    out.push_str(&" ".repeat(w.saturating_sub(cell.chars().count()) + 2));
                }
            }
            out.trim_end().to_string()
        };

        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total.max(self.title.chars().count())));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 3 decimals (the paper's bid-value precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a share as a percentage with 2 decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["Name", "Value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["a-much-longer-name", "22"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "Demo");
        assert!(lines[1].starts_with("Name"));
        // Both value cells start in the same column.
        let col = lines[3].find('1').unwrap();
        assert_eq!(lines[4].find("22").unwrap(), col);
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = TextTable::new("R", &["A"]);
        t.row(vec!["x", "extra", "more"]);
        t.row(vec!["y"]);
        let out = t.render();
        assert!(out.contains("extra"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.0301), "0.030");
        assert_eq!(pct(0.0940), "9.40%");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new("E", &["H1", "H2"]);
        let out = t.render();
        assert!(out.contains("H1"));
        assert_eq!(out.lines().count(), 3);
    }
}
