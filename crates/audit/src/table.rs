//! Plain-text table rendering for analysis outputs.
//!
//! Every analysis struct has a `render_into()` that goes through
//! [`TextTable`], producing aligned monospace tables like the paper's.
//!
//! The table is arena-backed: all cell text lives in one `String` and cells
//! are `(start, end)` spans into it, so building a table performs O(1)
//! allocations regardless of row count. Cells are written with `fmt::Write`
//! (any `Display` value goes straight into the arena) and rendering streams
//! into a caller-provided buffer — the streaming-render contract the report
//! pipeline relies on (see DESIGN.md §13).

use std::fmt::{self, Write as _};

/// A titled, column-aligned text table.
///
/// Cell text is stored in a single arena `String`; rows are cell-count runs
/// over the span list. `cell()` accepts any `Display` value and formats it
/// directly into the arena.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    /// All cell text, headers first, in append order.
    arena: String,
    /// `(start, end)` byte spans into `arena`, one per cell.
    spans: Vec<(u32, u32)>,
    /// Number of header cells (the first `header_cells` spans).
    header_cells: usize,
    /// Cells per data row, in row order.
    row_lens: Vec<u32>,
}

impl TextTable {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> TextTable {
        let mut t = TextTable {
            title: title.to_string(),
            arena: String::new(),
            spans: Vec::new(),
            header_cells: headers.len(),
            row_lens: Vec::new(),
        };
        for h in headers {
            let start = t.arena.len() as u32;
            t.arena.push_str(h);
            t.spans.push((start, t.arena.len() as u32));
        }
        t
    }

    /// Start a new data row. Rows shorter than the header are right-padded
    /// with empty cells; longer rows extend the column set.
    pub fn row(&mut self) -> &mut TextTable {
        self.row_lens.push(0);
        self
    }

    /// Append one cell to the current row, formatting `value` straight into
    /// the arena. Starts a row implicitly if none is open.
    pub fn cell(&mut self, value: impl fmt::Display) -> &mut TextTable {
        if self.row_lens.is_empty() {
            self.row_lens.push(0);
        }
        let start = self.arena.len() as u32;
        let _ = write!(self.arena, "{value}"); // write to String is infallible
        self.spans.push((start, self.arena.len() as u32));
        if let Some(last) = self.row_lens.last_mut() {
            *last += 1;
        }
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.row_lens.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.row_lens.is_empty()
    }

    fn span_str(&self, span: (u32, u32)) -> &str {
        &self.arena[span.0 as usize..span.1 as usize]
    }

    /// Render with aligned columns, a title line, and a separator, appending
    /// to `out`. Returns the number of cells emitted (headers included) —
    /// the render work-unit figure charged to the virtual work clock.
    pub fn render_into(&self, out: &mut String) -> usize {
        let cols = self
            .row_lens
            .iter()
            .map(|&n| n as usize)
            .chain(std::iter::once(self.header_cells))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        // First pass: measure, walking the same row runs emit will.
        let measure = |widths: &mut [usize], first: usize, last: usize| {
            for (col, &span) in self.spans[first..last].iter().enumerate() {
                widths[col] = widths[col].max(self.span_str(span).chars().count());
            }
        };
        measure(&mut widths, 0, self.header_cells);
        let mut first = self.header_cells;
        for &n in &self.row_lens {
            measure(&mut widths, first, first + n as usize);
            first += n as usize;
        }

        let mut emitted = 0usize;
        out.push_str(&self.title);
        out.push('\n');
        emitted += self.emit_row(out, &widths, 0, self.header_cells);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let dashes = total.max(self.title.chars().count());
        out.reserve(dashes + 1);
        for _ in 0..dashes {
            out.push('-');
        }
        out.push('\n');
        let mut first = self.header_cells;
        for &n in &self.row_lens {
            emitted += self.emit_row(out, &widths, first, first + n as usize);
            first += n as usize;
        }
        emitted
    }

    /// Emit one padded row (`spans[first..last]`) plus a newline, trimming
    /// trailing whitespace like the original row formatter did.
    fn emit_row(&self, out: &mut String, widths: &[usize], first: usize, last: usize) -> usize {
        let line_cells = last - first;
        for (col, w) in widths.iter().enumerate() {
            let text = if col < line_cells {
                self.span_str(self.spans[first + col])
            } else {
                ""
            };
            out.push_str(text);
            if col + 1 < widths.len() {
                let pad = w.saturating_sub(text.chars().count()) + 2;
                for _ in 0..pad {
                    out.push(' ');
                }
            }
        }
        while out.ends_with(' ') || out.ends_with('\t') {
            out.pop();
        }
        out.push('\n');
        line_cells
    }

    /// Render to a fresh `String` (convenience wrapper over `render_into`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// Display adapter: a float with 3 decimals (the paper's bid-value
/// precision). Formats straight into the table arena — no intermediate
/// `String`.
#[derive(Debug, Clone, Copy)]
pub struct F3(pub f64);

impl fmt::Display for F3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

/// Format a float with 3 decimals (the paper's bid-value precision).
pub fn f3(x: f64) -> F3 {
    F3(x)
}

/// Display adapter: a share as a percentage with 2 decimals.
#[derive(Debug, Clone, Copy)]
pub struct Pct(pub f64);

impl fmt::Display for Pct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}%", 100.0 * self.0)
    }
}

/// Format a share as a percentage with 2 decimals.
pub fn pct(x: f64) -> Pct {
    Pct(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["Name", "Value"]);
        t.row().cell("alpha").cell(1);
        t.row().cell("a-much-longer-name").cell(22);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "Demo");
        assert!(lines[1].starts_with("Name"));
        // Both value cells start in the same column.
        let col = lines[3].find('1').unwrap();
        assert_eq!(lines[4].find("22").unwrap(), col);
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = TextTable::new("R", &["A"]);
        t.row().cell("x").cell("extra").cell("more");
        t.row().cell("y");
        let out = t.render();
        assert!(out.contains("extra"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(0.0301).to_string(), "0.030");
        assert_eq!(pct(0.0940).to_string(), "9.40%");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new("E", &["H1", "H2"]);
        let out = t.render();
        assert!(out.contains("H1"));
        assert_eq!(out.lines().count(), 3);
    }

    #[test]
    fn render_into_appends_and_counts_cells() {
        let mut t = TextTable::new("W", &["A", "B"]);
        t.row().cell(1).cell(2);
        t.row().cell(3).cell(4);
        let mut buf = String::from("prefix\n");
        let cells = t.render_into(&mut buf);
        assert!(buf.starts_with("prefix\nW\n"));
        // 2 header cells + 4 data cells.
        assert_eq!(cells, 6);
        // Byte-compatible with the fresh-String path.
        assert_eq!(buf["prefix\n".len()..], t.render());
    }

    #[test]
    fn implicit_row_start() {
        let mut t = TextTable::new("I", &["A"]);
        t.cell("lone");
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("lone"));
    }
}
