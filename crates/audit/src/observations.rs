//! The observable bundle every analysis consumes.
//!
//! `Observations` holds **only what a real auditor could record**: captures,
//! bids, creatives, sync redirects, audio transcripts, DSAR exports, policy
//! documents, and public marketplace metadata. Planted ground truth (which
//! endpoints a skill *would* contact, which advertisers hold segments, what
//! a policy *intended* to disclose) never enters this struct — the
//! integration tests enforce that analyses recover it from here alone.

use crate::persona::Persona;
use alexa_adtech::{StreamingService, VisitRecord};
use alexa_fault::CoverageReport;
use alexa_net::{Capture, OrgMap};
use alexa_platform::{DsarExport, DsarPhase, SkillCategory};
use alexa_policy::PolicyDoc;
use std::collections::BTreeMap;

/// Public marketplace metadata for one skill — everything visible on the
/// skill's store page (used e.g. to map capture labels back to names).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkillMeta {
    /// Marketplace id (capture label).
    pub id: String,
    /// Display name.
    pub name: String,
    /// Vendor organization name.
    pub vendor: String,
    /// Store category.
    pub category: SkillCategory,
    /// Review count.
    pub reviews: u32,
    /// Whether the store page advertises streaming content.
    pub streaming: bool,
    /// Whether the store page links a privacy policy (visible even when the
    /// link is dead).
    pub policy_link: bool,
}

/// The full observable record of one audit run.
#[derive(Debug, Clone, Default)]
pub struct Observations {
    /// Seed the run was executed with (for provenance).
    pub seed: u64,
    /// Number of pre-interaction crawl iterations.
    pub pre_iterations: usize,
    /// Number of post-interaction crawl iterations.
    pub post_iterations: usize,
    /// Router-tap captures (encrypted view) per Echo persona, one capture
    /// per skill session.
    pub router_captures: BTreeMap<String, Vec<Capture>>,
    /// AVS Echo captures (plaintext view), one capture per skill, from the
    /// dedicated AVS lab account.
    pub avs_captures: Vec<Capture>,
    /// Crawl records per persona name: all visits, all iterations.
    pub crawl: BTreeMap<String, Vec<VisitRecord>>,
    /// Audio transcripts per (persona name, streaming service).
    pub audio: BTreeMap<(String, StreamingService), Vec<String>>,
    /// DSAR exports per (persona name, request phase).
    pub dsar: BTreeMap<(String, DsarPhase), DsarExport>,
    /// Downloaded policy documents per skill id (`None` = no retrievable
    /// policy).
    pub policies: BTreeMap<String, Option<PolicyDoc>>,
    /// Public marketplace metadata for the 450 studied skills.
    pub catalog: Vec<SkillMeta>,
    /// Skills that failed to load during installation, per persona.
    pub failed_installs: BTreeMap<String, Vec<String>>,
    /// The auditor's domain→organization database (DuckDuckGo entities +
    /// Crunchbase + WHOIS in the paper; observable public information).
    pub orgs: OrgMap,
    /// Coverage accounting for the run: observed/expected per pipeline
    /// section, injected-fault and retry totals, degraded shards.
    pub coverage: CoverageReport,
}

impl Observations {
    /// Catalog metadata for a skill id.
    pub fn skill_meta(&self, id: &str) -> Option<&SkillMeta> {
        self.catalog.iter().find(|m| m.id == id)
    }

    /// All crawl visits for a persona within an iteration range.
    pub fn visits_in(
        &self,
        persona: Persona,
        iterations: std::ops::Range<usize>,
    ) -> Vec<&VisitRecord> {
        self.crawl
            .get(&persona.name())
            .map(|v| {
                v.iter()
                    .filter(|r| iterations.contains(&r.iteration))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Iteration range of the pre-interaction window.
    pub fn pre_window(&self) -> std::ops::Range<usize> {
        0..self.pre_iterations
    }

    /// Iteration range of the post-interaction window.
    pub fn post_window(&self) -> std::ops::Range<usize> {
        self.pre_iterations..self.pre_iterations + self.post_iterations
    }

    /// A stable content hash of the complete observable record.
    ///
    /// Two runs produce the same digest iff every observable — captures,
    /// bids, transcripts, DSAR exports, policies, catalog, org database —
    /// rendered identically. The determinism tests use this to enforce the
    /// engine's core invariant: for a fixed config, sequential and parallel
    /// execution are byte-identical.
    ///
    /// All fields except `orgs` are `Vec`s or `BTreeMap`s, whose `Debug`
    /// rendering is already canonical; `orgs` is backed by a `HashMap` and
    /// is hashed through its sorted-entries view instead.
    pub fn digest(&self) -> u64 {
        use std::fmt::Write as _;

        /// Streams formatted text straight into an FNV-1a accumulator, so
        /// the canonical rendering is never materialized.
        struct FnvWriter(u64);

        impl std::fmt::Write for FnvWriter {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                for b in s.bytes() {
                    self.0 ^= b as u64;
                    self.0 = self.0.wrapping_mul(0x100000001b3);
                }
                Ok(())
            }
        }

        let mut w = FnvWriter(0xcbf29ce484222325);
        // FnvWriter::write_str never fails; the Results are discardable.
        let _ = write!(
            w,
            "{}|{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            self.seed,
            self.pre_iterations,
            self.post_iterations,
            self.router_captures,
            self.avs_captures,
            self.crawl,
            self.audio,
            self.dsar,
            self.policies,
            self.catalog,
            self.failed_installs,
            self.orgs.entries_sorted(),
        );
        // Coverage joins the digest only for faulted runs: the `none`
        // profile must stay byte-identical to pre-fault-plane baselines,
        // while any active profile holds its coverage accounting to the
        // same jobs-independence contract as the observables.
        if self.coverage.profile != "none" {
            let _ = write!(w, "|{:?}", self.coverage);
        }
        w.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_partition_iterations() {
        let obs = Observations {
            pre_iterations: 6,
            post_iterations: 25,
            ..Observations::default()
        };
        assert_eq!(obs.pre_window(), 0..6);
        assert_eq!(obs.post_window(), 6..31);
    }

    #[test]
    fn skill_meta_lookup() {
        let obs = Observations {
            catalog: vec![SkillMeta {
                id: "car-garmin".into(),
                name: "Garmin".into(),
                vendor: "Garmin International".into(),
                category: SkillCategory::ConnectedCar,
                reviews: 2143,
                streaming: true,
                policy_link: false,
            }],
            ..Observations::default()
        };
        assert_eq!(obs.skill_meta("car-garmin").unwrap().name, "Garmin");
        assert!(obs.skill_meta("nope").is_none());
    }

    #[test]
    fn visits_in_filters_by_iteration() {
        let mut obs = Observations::default();
        let mk = |iteration| VisitRecord {
            iteration,
            ..VisitRecord::default()
        };
        obs.crawl
            .insert("Vanilla".into(), vec![mk(0), mk(3), mk(9)]);
        assert_eq!(obs.visits_in(Persona::Vanilla, 0..4).len(), 2);
        assert_eq!(obs.visits_in(Persona::Vanilla, 4..20).len(), 1);
        assert!(obs.visits_in(Persona::WebHealth, 0..20).is_empty());
    }
}
