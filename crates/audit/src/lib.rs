//! `alexa-audit` — the paper's contribution: an auditing framework that
//! measures data **collection**, **usage**, and **sharing** in a smart
//! speaker ecosystem from the outside.
//!
//! The framework's position is adversarial-observational: it controls a set
//! of [`Persona`]s (what they install, say, and browse) and observes only
//! what a real auditor could observe — network captures from two vantage
//! points, header-bidding bids, served creatives, cookie-sync redirects,
//! audio-ad transcripts, DSAR exports, and privacy-policy documents. All of
//! that is bundled in [`Observations`]; every analysis is a pure function
//! of it.
//!
//! Every analysis reads the shared [`AnalysisIndex`] — built **once** per
//! run from the observations — instead of rescanning the captures:
//!
//! ```no_run
//! use alexa_audit::{AnalysisIndex, AuditConfig, AuditRun};
//!
//! let observations = AuditRun::execute(AuditConfig::paper(7));
//! let index = AnalysisIndex::build(&observations);
//! let table5 = alexa_audit::analysis::bids::table5(&index);
//! println!("{}", table5.render());
//! ```
//!
//! One module per research question:
//!
//! * [`analysis::traffic`] — RQ1, who collects/propagates data
//!   (Tables 1–4, Figure 2);
//! * [`analysis::bids`], [`analysis::significance`], [`analysis::creatives`],
//!   [`analysis::audio`], [`analysis::partners`] — RQ2, is interaction data
//!   used for ad targeting (Tables 5–11, Figures 3, 5, 6, 7);
//! * [`analysis::profiling`] — RQ2, interest inference via DSAR (Table 12);
//! * [`analysis::policy`] — RQ3, policy compliance (Tables 13, 14, §7.2.3
//!   validation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod artifacts;
pub mod experiment;
pub mod index;
pub mod observations;
pub mod persona;
pub mod report;
pub mod table;
pub(crate) mod wire;
pub mod worker;

pub use experiment::{AuditConfig, AuditRun, DefenseMode};
pub use index::AnalysisIndex;
pub use observations::{Observations, SkillMeta};
pub use persona::Persona;
pub use table::TextTable;
