//! Child-process shard worker: the other end of the `process` backend's
//! pipe protocol (DESIGN.md §15).
//!
//! `repro --shard-worker` calls [`run_shard_worker`], which loops over
//! stdin: one wire-encoded [`ShardSpec`](alexa_exec::ShardSpec) per line,
//! one [`encode_reply`](alexa_exec::encode_reply) line on stdout per spec.
//! The spec's payload is the rendered audit configuration; the worker
//! memoizes the rebuilt world (marketplace, fault plane, web ecosystem,
//! crawler) keyed on that exact payload string, so serving many shards of
//! one run regenerates the shared inputs once.
//!
//! A reply's payload is `{"shard": <wire shard>, "alloc": <wire alloc
//! window>, "log": <wire shard log>, "agg": {name: {count, calls}}}`: the
//! parent decodes the shard into its typed form, re-installs the allocation
//! window on the decoded log, submits the log to its recorder, and merges
//! the aggregate deltas, making a process-backend report structurally
//! identical to an in-process one.
//!
//! Test hooks (integration tests only):
//!
//! * `REPRO_WORKER_CRASH=group/index` — exit 101 before replying to that
//!   shard, simulating a worker killed mid-shard;
//! * `REPRO_WORKER_STALL=group/index` (+ `REPRO_WORKER_STALL_MS`, default
//!   60000) — sleep before replying, simulating a hung worker for the
//!   parent's wall-clock timeout.

use crate::experiment::{run_avs_shard, run_persona_shard, AuditConfig, ShardAlloc};
use crate::persona::Persona;
use crate::wire;
use alexa_adtech::bidding::{standard_roster, SeasonModel};
use alexa_adtech::{Auction, Crawler, SyncGraph, WebEcosystem};
use alexa_exec::{encode_reply, ShardSpec};
use alexa_fault::FaultPlane;
use alexa_obs::{Json, Recorder};
use alexa_platform::{Marketplace, SkillCategory};
use std::io::{self, BufRead, Write};

/// The run-wide shared inputs, rebuilt from a spec's config payload and
/// memoized on the payload string.
struct World {
    key: String,
    config: AuditConfig,
    market: Marketplace,
    plane: FaultPlane,
    web: WebEcosystem,
    crawler: Crawler,
}

impl World {
    fn build(payload: &str) -> Option<World> {
        let config = wire::config_from_json(&Json::parse(payload).ok()?)?;
        let market = Marketplace::generate(config.seed);
        // Identical derivation to the parent's `execute_with`: the worker
        // must make exactly the fault decisions the in-process run makes.
        let plane = FaultPlane::new(config.seed ^ 0xfa417, config.fault.clone());
        let sync_graph = SyncGraph::generate(config.seed);
        let web = WebEcosystem::generate(config.seed, config.web_size);
        let auction = Auction {
            bidders: standard_roster(sync_graph.partners()),
            season: SeasonModel::new(config.pre_iterations),
        };
        let crawler = Crawler::new(auction, sync_graph);
        Some(World {
            key: payload.to_string(),
            config,
            market,
            plane,
            web,
            crawler,
        })
    }
}

/// Execute one spec against a rebuilt world; the `Ok` payload is the reply
/// document (shard + log).
fn run_spec(world: &World, spec: &ShardSpec, rec: &Recorder) -> Result<String, String> {
    let mut log = rec.shard(&spec.group, spec.index, &spec.label);
    let shard_json = match spec.group.as_str() {
        "avs" => {
            let cat = *SkillCategory::ALL
                .get(spec.index)
                .ok_or_else(|| format!("avs shard index {} out of range", spec.index))?;
            let shard = run_avs_shard(
                &world.config,
                &world.market,
                &world.plane,
                spec.index,
                cat,
                &mut log,
            );
            wire::avs_shard_to_json(&shard)
        }
        "persona" => {
            let personas = Persona::all();
            let persona = *personas
                .get(spec.index)
                .ok_or_else(|| format!("persona shard index {} out of range", spec.index))?;
            let sites = world.web.prebid_sites(world.config.crawl_sites);
            let shard = run_persona_shard(
                &world.config,
                &world.market,
                &world.crawler,
                &sites,
                &world.plane,
                persona,
                spec.index,
                &mut log,
            );
            wire::persona_shard_to_json(&shard)
        }
        other => return Err(format!("unknown shard group '{other}'")),
    };
    // Leaf libraries (the crawler) report name-keyed aggregates to the
    // process-wide recorder — which in a worker is this shard's recorder,
    // installed fresh per shard by the main loop. Ship the deltas so the
    // parent's metrics.json matches an in-process run byte for byte.
    let aggregates = rec
        .report()
        .aggregates
        .into_iter()
        .map(|(name, a)| {
            (
                name,
                Json::Obj(vec![
                    ("count".to_string(), Json::Int(a.count)),
                    ("calls".to_string(), Json::Int(a.calls)),
                ]),
            )
        })
        .collect();
    Ok(Json::Obj(vec![
        ("shard".to_string(), shard_json),
        (
            // Shard-level allocation window (DESIGN.md §16): span-level
            // deltas ride inside "log", the window rides beside it.
            "alloc".to_string(),
            wire::shard_alloc_to_json(&ShardAlloc::of(&log)),
        ),
        ("log".to_string(), log.to_wire_json()),
        ("agg".to_string(), Json::Obj(aggregates)),
    ])
    .render())
}

/// The worker main loop. Returns the process exit code: 0 on clean EOF
/// (parent closed the pipe), 1 on a broken pipe, 2 on a malformed spec line
/// (a protocol bug, not a shard failure — shard failures are replied as
/// errors and degraded by the parent).
pub fn run_shard_worker() -> i32 {
    let crash = std::env::var("REPRO_WORKER_CRASH").ok();
    let stall = std::env::var("REPRO_WORKER_STALL").ok();
    let stall_ms: u64 = std::env::var("REPRO_WORKER_STALL_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    let mut world: Option<World> = None;
    for line in stdin.lock().lines() {
        let Ok(line) = line else { return 1 };
        if line.trim().is_empty() {
            continue;
        }
        let Ok(spec) = ShardSpec::from_wire_line(&line) else {
            return 2;
        };
        let coord = format!("{}/{}", spec.group, spec.index);
        if crash.as_deref() == Some(coord.as_str()) {
            // Simulated mid-shard death: no reply, non-zero exit.
            std::process::exit(101);
        }
        if stall.as_deref() == Some(coord.as_str()) {
            std::thread::sleep(std::time::Duration::from_millis(stall_ms));
        }
        if !matches!(&world, Some(w) if w.key == spec.payload) {
            world = World::build(&spec.payload);
        }
        // A fresh recorder per shard, installed process-wide so leaf
        // libraries' global aggregates land here; per-shard scoping makes
        // each reply's `agg` block an exact delta, not a running total.
        let rec = std::sync::Arc::new(Recorder::new());
        alexa_obs::install_global(rec.clone());
        let result = match &world {
            Some(w) => run_spec(w, &spec, &rec),
            None => Err("shard payload did not decode to an audit config".to_string()),
        };
        let reply = encode_reply(spec.index, &result);
        if writeln!(stdout, "{reply}").is_err() || stdout.flush().is_err() {
            return 1;
        }
    }
    0
}
