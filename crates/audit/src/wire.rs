//! JSON wire codecs for the shard fan-out (DESIGN.md §15).
//!
//! When shards execute outside the parent process (`--backend process`) or
//! through the mock remote, their inputs and outputs cross a wire as the
//! run-bundle JSON dialect (`alexa_obs::Json`, the PR 5 schema). The codecs
//! here are **bit-exact**: every `f64` travels as its IEEE-754 bit pattern
//! in hex (the JSON `Float` render is lossy by design), so a decoded shard
//! is indistinguishable from one produced in-process — the foundation of
//! the cross-backend byte-identical-bundle guarantee.
//!
//! Everything is `pub(crate)`: the only consumers are the fan-out in
//! [`crate::experiment`] and the worker loop in [`crate::worker`].

use crate::experiment::{AuditConfig, AvsShard, DefenseMode, PersonaShard, ShardAlloc};
use alexa_adtech::{Bid, Creative, StreamingService, SyncObservation, VisitRecord};
use alexa_fault::{FaultChannel, FaultLedger, FaultProfile};
use alexa_net::{Capture, DataType, Direction, Domain, Packet, Payload, Record};
use alexa_obs::Json;
use alexa_platform::{DsarExport, DsarPhase, Interest};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Render an `f64` as its exact bit pattern.
fn f64_hex(v: f64) -> Json {
    Json::Str(format!("{:016x}", v.to_bits()))
}

/// Decode an exact-bit `f64`.
fn f64_from_hex(j: &Json) -> Option<f64> {
    let s = j.as_str()?;
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

// ---- Audit configuration ------------------------------------------------

fn defense_token(d: DefenseMode) -> &'static str {
    match d {
        DefenseMode::None => "none",
        DefenseMode::Firewall => "firewall",
        DefenseMode::TextOnly => "text-only",
    }
}

fn defense_from_token(s: &str) -> Option<DefenseMode> {
    match s {
        "none" => Some(DefenseMode::None),
        "firewall" => Some(DefenseMode::Firewall),
        "text-only" => Some(DefenseMode::TextOnly),
        _ => None,
    }
}

/// Serialize everything a worker needs to rebuild the run's world. The
/// engine knobs (`jobs`, backend selection) deliberately stay behind: a
/// worker always executes its shard sequentially in-process.
pub(crate) fn config_to_json(c: &AuditConfig) -> Json {
    obj(vec![
        ("seed", Json::Int(c.seed)),
        (
            "skills_per_category",
            Json::Int(c.skills_per_category as u64),
        ),
        ("crawl_sites", Json::Int(c.crawl_sites as u64)),
        ("web_size", Json::Int(c.web_size as u64)),
        ("pre_iterations", Json::Int(c.pre_iterations as u64)),
        ("post_iterations", Json::Int(c.post_iterations as u64)),
        ("audio_hours", f64_hex(c.audio_hours)),
        (
            "utterances_per_skill",
            Json::Int(c.utterances_per_skill as u64),
        ),
        ("defense", Json::Str(defense_token(c.defense).to_string())),
        ("fault", c.fault.to_wire_json()),
    ])
}

pub(crate) fn config_from_json(j: &Json) -> Option<AuditConfig> {
    let int = |k: &str| j.get(k).and_then(Json::as_u64);
    Some(AuditConfig {
        seed: int("seed")?,
        skills_per_category: int("skills_per_category")? as usize,
        crawl_sites: int("crawl_sites")? as usize,
        web_size: int("web_size")? as usize,
        pre_iterations: int("pre_iterations")? as usize,
        post_iterations: int("post_iterations")? as usize,
        audio_hours: f64_from_hex(j.get("audio_hours")?)?,
        utterances_per_skill: int("utterances_per_skill")? as usize,
        defense: defense_from_token(j.get("defense")?.as_str()?)?,
        fault: FaultProfile::from_wire_json(j.get("fault")?)?,
        jobs: Some(1),
        backend: alexa_exec::BackendChoice::Thread,
        worker_cmd: Vec::new(),
        worker_timeout_ms: 30_000,
    })
}

// ---- Network captures ----------------------------------------------------

fn data_type_token(t: DataType) -> &'static str {
    match t {
        DataType::VoiceRecording => "voice_recording",
        DataType::TextCommand => "text_command",
        DataType::CustomerId => "customer_id",
        DataType::SkillId => "skill_id",
        DataType::Language => "language",
        DataType::Timezone => "timezone",
        DataType::Preference => "preference",
        DataType::AudioPlayerEvent => "audio_player_event",
        DataType::DeviceMetric => "device_metric",
    }
}

fn data_type_from_token(s: &str) -> Option<DataType> {
    DataType::ALL.into_iter().find(|t| data_type_token(*t) == s)
}

fn payload_to_json(p: &Payload) -> Json {
    match p {
        Payload::Encrypted { len } => obj(vec![("enc", Json::Int(*len as u64))]),
        Payload::Plain(records) => {
            let recs = records
                .iter()
                .map(|r| {
                    obj(vec![
                        ("t", Json::Str(data_type_token(r.data_type).to_string())),
                        ("v", Json::Str(r.value.clone())),
                    ])
                })
                .collect();
            obj(vec![("plain", Json::Arr(recs))])
        }
    }
}

fn payload_from_json(j: &Json) -> Option<Payload> {
    if let Some(len) = j.get("enc").and_then(Json::as_u64) {
        return Some(Payload::Encrypted { len: len as usize });
    }
    let mut records = Vec::new();
    for r in j.get("plain")?.as_arr()? {
        records.push(Record {
            data_type: data_type_from_token(r.get("t")?.as_str()?)?,
            value: r.get("v")?.as_str()?.to_string(),
        });
    }
    Some(Payload::Plain(records))
}

fn packet_to_json(p: &Packet) -> Json {
    let dir = match p.direction {
        Direction::Outgoing => "out",
        Direction::Incoming => "in",
    };
    obj(vec![
        ("ts_ms", Json::Int(p.ts_ms)),
        ("dir", Json::Str(dir.to_string())),
        ("remote", Json::Str(p.remote.as_str().to_string())),
        ("ip", Json::Str(p.remote_ip.to_string())),
        ("payload", payload_to_json(&p.payload)),
    ])
}

fn packet_from_json(j: &Json) -> Option<Packet> {
    let direction = match j.get("dir")?.as_str()? {
        "out" => Direction::Outgoing,
        "in" => Direction::Incoming,
        _ => return None,
    };
    Some(Packet {
        ts_ms: j.get("ts_ms")?.as_u64()?,
        direction,
        remote: Domain::parse(j.get("remote")?.as_str()?).ok()?,
        remote_ip: j.get("ip")?.as_str()?.parse().ok()?,
        payload: payload_from_json(j.get("payload")?)?,
    })
}

fn capture_to_json(c: &Capture) -> Json {
    obj(vec![
        ("label", Json::Str(c.label.clone())),
        (
            "packets",
            Json::Arr(c.packets.iter().map(packet_to_json).collect()),
        ),
    ])
}

fn capture_from_json(j: &Json) -> Option<Capture> {
    let mut packets = Vec::new();
    for p in j.get("packets")?.as_arr()? {
        packets.push(packet_from_json(p)?);
    }
    Some(Capture {
        label: j.get("label")?.as_str()?.to_string(),
        packets,
    })
}

fn captures_to_json(cs: &[Capture]) -> Json {
    Json::Arr(cs.iter().map(capture_to_json).collect())
}

fn captures_from_json(j: &Json) -> Option<Vec<Capture>> {
    let mut out = Vec::new();
    for c in j.as_arr()? {
        out.push(capture_from_json(c)?);
    }
    Some(out)
}

// ---- DSAR exports ---------------------------------------------------------

fn phase_token(p: DsarPhase) -> &'static str {
    match p {
        DsarPhase::AfterInstall => "after_install",
        DsarPhase::AfterInteraction1 => "after_interaction1",
        DsarPhase::AfterInteraction2 => "after_interaction2",
    }
}

fn phase_from_token(s: &str) -> Option<DsarPhase> {
    match s {
        "after_install" => Some(DsarPhase::AfterInstall),
        "after_interaction1" => Some(DsarPhase::AfterInteraction1),
        "after_interaction2" => Some(DsarPhase::AfterInteraction2),
        _ => None,
    }
}

const INTERESTS: [Interest; 7] = [
    Interest::Electronics,
    Interest::DiyTools,
    Interest::HomeKitchen,
    Interest::BeautyPersonalCare,
    Interest::Fashion,
    Interest::VideoEntertainment,
    Interest::PetSupplies,
];

fn interest_from_label(s: &str) -> Option<Interest> {
    INTERESTS.into_iter().find(|i| i.label() == s)
}

fn strings_to_json(v: &[String]) -> Json {
    Json::Arr(v.iter().map(|s| Json::Str(s.clone())).collect())
}

fn strings_from_json(j: &Json) -> Option<Vec<String>> {
    let mut out = Vec::new();
    for s in j.as_arr()? {
        out.push(s.as_str()?.to_string());
    }
    Some(out)
}

fn dsar_to_json(e: &DsarExport) -> Json {
    let interests = match &e.advertising_interests {
        None => Json::Null,
        Some(list) => Json::Arr(
            list.iter()
                .map(|i| Json::Str(i.label().to_string()))
                .collect(),
        ),
    };
    obj(vec![
        ("account", Json::Str(e.account.clone())),
        ("interests", interests),
        ("history", strings_to_json(&e.interaction_history)),
    ])
}

fn dsar_from_json(j: &Json) -> Option<DsarExport> {
    let interests = match j.get("interests")? {
        Json::Null => None,
        Json::Arr(list) => {
            let mut out = Vec::new();
            for i in list {
                out.push(interest_from_label(i.as_str()?)?);
            }
            Some(out)
        }
        _ => return None,
    };
    Some(DsarExport {
        account: j.get("account")?.as_str()?.to_string(),
        advertising_interests: interests,
        interaction_history: strings_from_json(j.get("history")?)?,
    })
}

// ---- Crawl records --------------------------------------------------------

fn visit_to_json(v: &VisitRecord) -> Json {
    let bids = v
        .bids
        .iter()
        .map(|b| {
            obj(vec![
                ("bidder", Json::Str(b.bidder.to_string())),
                ("slot", Json::Str(b.slot_id.to_string())),
                ("cpm", f64_hex(b.cpm)),
            ])
        })
        .collect();
    let creatives = v
        .creatives
        .iter()
        .map(|c| {
            obj(vec![
                ("advertiser", Json::Str(c.advertiser.clone())),
                ("product", Json::Str(c.product.clone())),
            ])
        })
        .collect();
    let syncs = v
        .syncs
        .iter()
        .map(|s| {
            obj(vec![
                ("from", Json::Str(s.from_org.to_string())),
                ("to", Json::Str(s.to_org.to_string())),
                ("user", Json::Str(s.user_id.to_string())),
            ])
        })
        .collect();
    obj(vec![
        ("site", Json::Str(v.site.clone())),
        ("iteration", Json::Int(v.iteration as u64)),
        ("bids", Json::Arr(bids)),
        ("creatives", Json::Arr(creatives)),
        ("syncs", Json::Arr(syncs)),
    ])
}

fn visit_from_json(j: &Json) -> Option<VisitRecord> {
    let arc =
        |k: &str, o: &Json| -> Option<Arc<str>> { o.get(k).and_then(Json::as_str).map(Arc::from) };
    let mut bids = Vec::new();
    for b in j.get("bids")?.as_arr()? {
        bids.push(Bid {
            bidder: arc("bidder", b)?,
            slot_id: arc("slot", b)?,
            cpm: f64_from_hex(b.get("cpm")?)?,
        });
    }
    let mut creatives = Vec::new();
    for c in j.get("creatives")?.as_arr()? {
        creatives.push(Creative {
            advertiser: c.get("advertiser")?.as_str()?.to_string(),
            product: c.get("product")?.as_str()?.to_string(),
        });
    }
    let mut syncs = Vec::new();
    for s in j.get("syncs")?.as_arr()? {
        syncs.push(SyncObservation {
            from_org: arc("from", s)?,
            to_org: arc("to", s)?,
            user_id: arc("user", s)?,
        });
    }
    Some(VisitRecord {
        site: j.get("site")?.as_str()?.to_string(),
        iteration: j.get("iteration")?.as_u64()? as usize,
        bids,
        creatives,
        syncs,
    })
}

// ---- Fault accounting ------------------------------------------------------

fn service_from_label(s: &str) -> Option<StreamingService> {
    StreamingService::ALL.into_iter().find(|v| v.label() == s)
}

fn coverage_to_json(c: &alexa_fault::Coverage) -> Json {
    obj(vec![
        ("observed", Json::Int(c.observed)),
        ("expected", Json::Int(c.expected)),
    ])
}

fn coverage_from_json(j: &Json) -> Option<alexa_fault::Coverage> {
    Some(alexa_fault::Coverage::new(
        j.get("observed")?.as_u64()?,
        j.get("expected")?.as_u64()?,
    ))
}

fn ledger_to_json(l: &FaultLedger) -> Json {
    let injected = l
        .injected
        .iter()
        .map(|(label, n)| (label.to_string(), Json::Int(*n)))
        .collect();
    obj(vec![
        ("injected", Json::Obj(injected)),
        ("retries", Json::Int(l.retries)),
        ("backoff_ms", Json::Int(l.backoff_ms)),
        ("losses", Json::Int(l.losses)),
        ("degraded", Json::Bool(l.degraded)),
    ])
}

fn ledger_from_json(j: &Json) -> Option<FaultLedger> {
    let mut injected: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (label, n) in j.get("injected")?.as_obj()? {
        // Round-trip through the channel registry to recover the 'static
        // label the ledger stores.
        let channel = FaultChannel::from_label(label)?;
        injected.insert(channel.label(), n.as_u64()?);
    }
    Some(FaultLedger {
        injected,
        retries: j.get("retries")?.as_u64()?,
        backoff_ms: j.get("backoff_ms")?.as_u64()?,
        losses: j.get("losses")?.as_u64()?,
        degraded: j.get("degraded")?.as_bool()?,
    })
}

// ---- Shard payloads ---------------------------------------------------------

pub(crate) fn persona_shard_to_json(s: &PersonaShard) -> Json {
    let router = match &s.router_captures {
        None => Json::Null,
        Some(cs) => captures_to_json(cs),
    };
    let dsar = s
        .dsar
        .iter()
        .map(|(phase, export)| {
            obj(vec![
                ("phase", Json::Str(phase_token(*phase).to_string())),
                ("export", dsar_to_json(export)),
            ])
        })
        .collect();
    let audio = s
        .audio
        .iter()
        .map(|(service, transcripts)| {
            obj(vec![
                ("service", Json::Str(service.label().to_string())),
                ("transcripts", strings_to_json(transcripts)),
            ])
        })
        .collect();
    obj(vec![
        ("router_captures", router),
        ("failed_installs", strings_to_json(&s.failed_installs)),
        ("dsar", Json::Arr(dsar)),
        (
            "crawl",
            Json::Arr(s.crawl.iter().map(visit_to_json).collect()),
        ),
        ("audio", Json::Arr(audio)),
        ("ledger", ledger_to_json(&s.ledger)),
        ("installs", coverage_to_json(&s.installs)),
        ("interactions", coverage_to_json(&s.interactions)),
        ("visits", coverage_to_json(&s.visits)),
    ])
}

pub(crate) fn persona_shard_from_json(j: &Json) -> Option<PersonaShard> {
    let router_captures = match j.get("router_captures")? {
        Json::Null => None,
        other => Some(captures_from_json(other)?),
    };
    let mut dsar = Vec::new();
    for d in j.get("dsar")?.as_arr()? {
        dsar.push((
            phase_from_token(d.get("phase")?.as_str()?)?,
            dsar_from_json(d.get("export")?)?,
        ));
    }
    let mut crawl = Vec::new();
    for v in j.get("crawl")?.as_arr()? {
        crawl.push(visit_from_json(v)?);
    }
    let mut audio = Vec::new();
    for a in j.get("audio")?.as_arr()? {
        audio.push((
            service_from_label(a.get("service")?.as_str()?)?,
            strings_from_json(a.get("transcripts")?)?,
        ));
    }
    Some(PersonaShard {
        router_captures,
        failed_installs: strings_from_json(j.get("failed_installs")?)?,
        dsar,
        crawl,
        audio,
        ledger: ledger_from_json(j.get("ledger")?)?,
        installs: coverage_from_json(j.get("installs")?)?,
        interactions: coverage_from_json(j.get("interactions")?)?,
        visits: coverage_from_json(j.get("visits")?)?,
    })
}

/// Serialize a shard's allocation window. The size histogram travels
/// sparsely — one `[bucket_lo, count]` pair per non-empty bucket — because
/// a 65-bucket log2 histogram is almost entirely zeros.
pub(crate) fn shard_alloc_to_json(a: &ShardAlloc) -> Json {
    let sizes = a
        .sizes
        .sparse()
        .into_iter()
        .map(|(lo, _hi, count)| Json::Arr(vec![Json::Int(lo), Json::Int(count)]))
        .collect();
    obj(vec![
        ("count", Json::Int(a.count)),
        ("bytes", Json::Int(a.bytes)),
        ("peak_bytes", Json::Int(a.peak_bytes)),
        ("sizes", Json::Arr(sizes)),
    ])
}

pub(crate) fn shard_alloc_from_json(j: &Json) -> Option<ShardAlloc> {
    let mut sizes = alexa_obs::Histogram::new();
    for pair in j.get("sizes")?.as_arr()? {
        let pair = pair.as_arr()?;
        if pair.len() != 2 {
            return None;
        }
        // A bucket's lower bound is itself a member of the bucket, so
        // recording it `count` times rebuilds the exact bucket array.
        sizes.record_n(pair[0].as_u64()?, pair[1].as_u64()?);
    }
    Some(ShardAlloc {
        count: j.get("count")?.as_u64()?,
        bytes: j.get("bytes")?.as_u64()?,
        peak_bytes: j.get("peak_bytes")?.as_u64()?,
        sizes,
    })
}

pub(crate) fn avs_shard_to_json(s: &AvsShard) -> Json {
    obj(vec![
        ("captures", captures_to_json(&s.captures)),
        ("ledger", ledger_to_json(&s.ledger)),
        ("skills", coverage_to_json(&s.skills)),
    ])
}

pub(crate) fn avs_shard_from_json(j: &Json) -> Option<AvsShard> {
    Some(AvsShard {
        captures: captures_from_json(j.get("captures")?)?,
        ledger: ledger_from_json(j.get("ledger")?)?,
        skills: coverage_from_json(j.get("skills")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_capture() -> Capture {
        Capture {
            label: "skill-42".into(),
            packets: vec![
                Packet::outgoing(
                    17,
                    Domain::parse("device-metrics-us-2.amazon.com").unwrap(),
                    "10.1.2.3".parse().unwrap(),
                    Payload::Encrypted { len: 512 },
                ),
                Packet::incoming(
                    18,
                    Domain::parse("avs.amazon.com").unwrap(),
                    "10.1.2.4".parse().unwrap(),
                    Payload::Plain(vec![
                        Record::new(DataType::VoiceRecording, "alexa, open garmin"),
                        Record::new(DataType::CustomerId, "A1B2\nC3"),
                    ]),
                ),
            ],
        }
    }

    fn sample_ledger() -> FaultLedger {
        let mut l = FaultLedger::new();
        l.inject(FaultChannel::InstallFailure, 3);
        l.inject(FaultChannel::BidLoss, 9);
        l.retries = 4;
        l.backoff_ms = 350;
        l.losses = 1;
        l.degraded = true;
        l
    }

    #[test]
    fn persona_shard_round_trips_bit_exactly() {
        let shard = PersonaShard {
            router_captures: Some(vec![sample_capture()]),
            failed_installs: vec!["skill-7".into()],
            dsar: vec![(
                DsarPhase::AfterInteraction2,
                DsarExport {
                    account: "acct-cc".into(),
                    advertising_interests: Some(vec![Interest::Fashion, Interest::PetSupplies]),
                    interaction_history: vec!["Alexa, open garmin".into()],
                },
            )],
            crawl: vec![VisitRecord {
                site: "news.example".into(),
                iteration: 5,
                bids: vec![Bid {
                    bidder: Arc::from("adx.example"),
                    slot_id: Arc::from("news.example#3"),
                    cpm: 0.123_456_789_012_345_67,
                }],
                creatives: vec![Creative {
                    advertiser: "Dyson".into(),
                    product: "Dyson vacuum cleaner".into(),
                }],
                syncs: vec![SyncObservation {
                    from_org: Arc::from("a.example"),
                    to_org: Arc::from("b.example"),
                    user_id: Arc::from("uid-9"),
                }],
            }],
            audio: vec![(StreamingService::Pandora, vec!["ad script".into()])],
            ledger: sample_ledger(),
            installs: alexa_fault::Coverage::new(9, 10),
            interactions: alexa_fault::Coverage::new(17, 20),
            visits: alexa_fault::Coverage::new(48, 48),
        };
        // Round-trip through the rendered string (exactly what crosses the
        // worker pipe), not just the Json tree.
        let rendered = persona_shard_to_json(&shard).render();
        let decoded = persona_shard_from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(decoded.router_captures, shard.router_captures);
        assert_eq!(decoded.failed_installs, shard.failed_installs);
        assert_eq!(decoded.dsar, shard.dsar);
        assert_eq!(decoded.audio, shard.audio);
        assert_eq!(decoded.ledger, shard.ledger);
        assert_eq!(decoded.installs, shard.installs);
        assert_eq!(decoded.interactions, shard.interactions);
        assert_eq!(decoded.visits, shard.visits);
        assert_eq!(decoded.crawl.len(), 1);
        let (a, b) = (&decoded.crawl[0], &shard.crawl[0]);
        assert_eq!(a.site, b.site);
        assert_eq!(a.creatives, b.creatives);
        assert_eq!(a.syncs, b.syncs);
        assert_eq!(a.bids[0].bidder, b.bids[0].bidder);
        // The lossy part of JSON floats must NOT be lossy here.
        assert_eq!(a.bids[0].cpm.to_bits(), b.bids[0].cpm.to_bits());
        // Debug-render equality is what the digest actually hashes.
        assert_eq!(format!("{:?}", a.bids), format!("{:?}", b.bids));
    }

    #[test]
    fn avs_shard_round_trips() {
        let shard = AvsShard {
            captures: vec![sample_capture()],
            ledger: sample_ledger(),
            skills: alexa_fault::Coverage::new(8, 10),
        };
        let rendered = avs_shard_to_json(&shard).render();
        let decoded = avs_shard_from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(decoded.captures, shard.captures);
        assert_eq!(decoded.ledger, shard.ledger);
        assert_eq!(decoded.skills, shard.skills);
    }

    #[test]
    fn shard_alloc_round_trips_including_sparse_histogram() {
        let mut sizes = alexa_obs::Histogram::new();
        sizes.record_n(0, 3); // bucket 0: exactly zero-sized requests
        sizes.record_n(24, 17);
        sizes.record_n(4096, 2);
        sizes.record_n(u64::MAX, 1); // top bucket round-trips via its lower bound
        let alloc = ShardAlloc {
            count: 23,
            bytes: 987_654,
            peak_bytes: 120_000,
            sizes,
        };
        let rendered = shard_alloc_to_json(&alloc).render();
        let decoded = shard_alloc_from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(decoded.count, alloc.count);
        assert_eq!(decoded.bytes, alloc.bytes);
        assert_eq!(decoded.peak_bytes, alloc.peak_bytes);
        assert_eq!(decoded.sizes, alloc.sizes);
    }

    #[test]
    fn config_round_trips_for_worker_rebuild() {
        let config = AuditConfig::small(2222)
            .with_defense(DefenseMode::Firewall)
            .with_faults(FaultProfile::flaky());
        let rendered = config_to_json(&config).render();
        let decoded = config_from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(decoded.seed, config.seed);
        assert_eq!(decoded.skills_per_category, config.skills_per_category);
        assert_eq!(decoded.crawl_sites, config.crawl_sites);
        assert_eq!(decoded.web_size, config.web_size);
        assert_eq!(decoded.pre_iterations, config.pre_iterations);
        assert_eq!(decoded.post_iterations, config.post_iterations);
        assert_eq!(decoded.audio_hours.to_bits(), config.audio_hours.to_bits());
        assert_eq!(decoded.utterances_per_skill, config.utterances_per_skill);
        assert_eq!(decoded.defense, config.defense);
        assert_eq!(decoded.fault.name(), config.fault.name());
        // Engine knobs intentionally reset to worker-side defaults.
        assert_eq!(decoded.jobs, Some(1));
    }

    #[test]
    fn malformed_documents_decode_to_none() {
        assert!(persona_shard_from_json(&Json::Null).is_none());
        assert!(avs_shard_from_json(&Json::Null).is_none());
        assert!(config_from_json(&Json::Null).is_none());
        assert!(shard_alloc_from_json(&Json::Null).is_none());
        assert!(f64_from_hex(&Json::Str("xyz".into())).is_none());
        assert!(data_type_from_token("mystery").is_none());
        assert!(phase_from_token("mystery").is_none());
        assert!(defense_from_token("mystery").is_none());
    }
}
