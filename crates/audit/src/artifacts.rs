//! Artifact-name dispatch: stream any named report artifact from the shared
//! [`AnalysisIndex`] into a caller-owned buffer.
//!
//! This is the one table mapping the CLI/report artifact vocabulary
//! (`table1` ... `liars`) to the analysis functions, shared by the full
//! report and the `repro` binary. The `defenses` artifact is *not* here: it
//! needs its own defended audit runs, which only the binary orchestrates.

use crate::analysis::{audio, bids, creatives, partners, policy, profiling, significance, traffic};
use crate::index::AnalysisIndex;
use std::fmt::Write as _;

/// Stream one named artifact into `out`.
///
/// Returns the artifact's render work units, or `None` for an unknown name
/// (including `defenses` — see the module docs).
// analyzer:allow(AS01) -- taint is table7/table11's timing instrumentation; durations are volatile aggregates, never part of the committed bytes
pub fn render_into(ix: &AnalysisIndex, artifact: &str, out: &mut String) -> Option<usize> {
    Some(match artifact {
        "table1" => traffic::table1(ix).render_into(out),
        "table2" => traffic::table2(ix).render_into(out),
        "table3" => traffic::table3(ix).render_into(out),
        "table4" => traffic::table4(ix).render_into(out),
        "figure2" => traffic::figure2(ix).render_into(out),
        "table5" => bids::table5(ix).render_into(out),
        "table6" => bids::table6(ix).render_into(out),
        "figure3" => bids::figure3(ix).render_into(out),
        "table7" => significance::table7(ix).render_into(out),
        "table8" => creatives::table8(ix).render_into(out),
        "table9" => audio::table9(ix).render_into(out),
        "figure5" => audio::figure5(ix).render_into(out),
        "sync" => partners::sync_analysis(ix).render_into(out),
        "table10" => partners::table10(ix).render_into(out),
        "figure6" => partners::figure6(ix).render_into(out),
        "table11" => significance::table11(ix).render_into(out),
        "figure7" => bids::figure7(ix).render_into(out),
        "table12" => profiling::table12(ix).render_into(out),
        "stats71" => policy::policy_stats(ix).render_into(out),
        "table13" => policy::table13(ix, false).render_into(out),
        "table13p" => {
            let t = policy::table13(ix, true);
            let work = t.render_into(out);
            let _ = writeln!(
                out,
                "(platform policy included — all flows disclosed: {})",
                t.all_disclosed()
            );
            work + 1
        }
        "table14" => policy::table14(ix).render_into(out),
        "validate" => policy::validation(ix).render_into(out),
        "liars" => {
            let flows = policy::incorrect_flows(ix);
            out.push_str("Policies that DENY flows their traffic shows (PoliCheck 'incorrect'):\n");
            let mut work = 1;
            for (skill, dt) in &flows {
                let _ = writeln!(out, "  {skill}: denies collecting {dt}");
                work += 1;
            }
            if flows.is_empty() {
                out.push_str("  (none)\n");
                work += 1;
            }
            work
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::test_support::ix;

    const NAMES: &[&str] = &[
        "table1", "table2", "table3", "table4", "figure2", "table5", "table6", "figure3", "table7",
        "table8", "table9", "figure5", "sync", "table10", "figure6", "table11", "figure7",
        "table12", "stats71", "table13", "table13p", "table14", "validate", "liars",
    ];

    #[test]
    fn every_artifact_renders_nonempty_with_positive_work() {
        for name in NAMES {
            let mut out = String::new();
            let work = render_into(ix(), name, &mut out).expect(name);
            assert!(!out.is_empty(), "{name}: empty render");
            assert!(work > 0, "{name}: zero work units");
        }
    }

    #[test]
    fn unknown_names_are_none() {
        let mut out = String::new();
        assert!(render_into(ix(), "defenses", &mut out).is_none());
        assert!(render_into(ix(), "nope", &mut out).is_none());
        assert!(out.is_empty());
    }

    #[test]
    fn renders_append_instead_of_clobbering() {
        let mut out = String::from("prefix\n");
        render_into(ix(), "sync", &mut out).expect("sync");
        assert!(out.starts_with("prefix\n"));
        assert!(out.len() > "prefix\n".len());
    }
}
