//! RQ1 — network-traffic analysis: who collects and propagates user data.
//!
//! Reproduces Table 1 (domains contacted by skills, grouped by organization
//! class), Table 2 (advertising & tracking vs functional traffic share),
//! Table 3 (third-party domain counts per persona), Table 4 (top skills by
//! contacted A&T services), and Figure 2 (the persona → domain → purpose →
//! organization flow distribution).
//!
//! Everything is computed from the **encrypted router captures** plus the
//! auditor's public databases (org map, filter lists) — exactly the paper's
//! §4 inputs. The tables read the shared [`AnalysisIndex`]: endpoint
//! classification and per-skill packet merging happen once per run, not
//! once per artifact.

use crate::index::{AnalysisIndex, Sym};
use crate::observations::Observations;
use crate::table::{pct, TextTable};
use alexa_net::{Domain, OrgClass, TrafficPurpose};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Per-skill traffic view derived from captures.
#[derive(Debug, Clone)]
pub struct SkillTraffic {
    /// Skill id (capture label).
    pub skill_id: String,
    /// Persona whose device produced the captures.
    pub persona: String,
    /// Distinct endpoints contacted.
    pub endpoints: BTreeSet<Domain>,
    /// Total packets observed.
    pub packets: usize,
}

/// Flatten router captures into per-skill traffic records.
///
/// This is the naive single-artifact scan the [`AnalysisIndex`] replaces;
/// it stays as the reference implementation the index-equivalence tests
/// compare against.
pub fn skill_traffic(obs: &Observations) -> Vec<SkillTraffic> {
    let mut out = Vec::new();
    for (persona, captures) in &obs.router_captures {
        let mut merged: BTreeMap<String, SkillTraffic> = BTreeMap::new();
        for cap in captures {
            let entry = merged
                .entry(cap.label.clone())
                .or_insert_with(|| SkillTraffic {
                    skill_id: cap.label.clone(),
                    persona: persona.clone(),
                    endpoints: BTreeSet::new(),
                    packets: 0,
                });
            entry.packets += cap.packets.len();
            entry
                .endpoints
                .extend(cap.packets.iter().map(|p| p.remote.clone()));
        }
        // Capture sessions with zero packets (failed installs) carry no
        // endpoint evidence; the paper excludes the 4 failed skills from
        // the 446 active ones.
        out.extend(merged.into_values().filter(|t| t.packets > 0));
    }
    out
}

/// One Table 1 row: a domain group and how many skills contacted it.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Organization class (Amazon / skill vendor / third party).
    pub class: OrgClass,
    /// Display name: `host` or `*(n).registrable` for subdomain groups.
    pub display: String,
    /// Number of skills contacting the group.
    pub skills: usize,
    /// Whether the group is advertising/tracking (grey rows in the paper).
    pub ad_tracking: bool,
}

/// Table 1 plus its headline counts.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Domain-group rows, ordered by class then descending skill count.
    pub rows: Vec<Table1Row>,
    /// Skills contacting ≥1 Amazon endpoint.
    pub skills_amazon: usize,
    /// Skills contacting their vendor's own endpoints.
    pub skills_vendor: usize,
    /// Skills contacting third-party endpoints.
    pub skills_third_party: usize,
    /// Skills that failed to load (no traffic at all).
    pub skills_failed: usize,
    /// Total skills audited.
    pub skills_total: usize,
}

/// Per (class, registrable, A&T) group: the skills contacting the group and
/// the distinct hosts forming it.
type EndpointGroups<'a> = BTreeMap<(OrgClass, &'a str, bool), (BTreeSet<Sym>, BTreeSet<u32>)>;

/// Compute Table 1.
pub fn table1(ix: &AnalysisIndex) -> Table1 {
    let mut groups: EndpointGroups = BTreeMap::new();
    let mut amazon_skills: BTreeSet<Sym> = BTreeSet::new();
    let mut vendor_skills: BTreeSet<Sym> = BTreeSet::new();
    let mut third_skills: BTreeSet<Sym> = BTreeSet::new();

    for f in &ix.flows {
        for hc in ix.hosts_of(f) {
            let h = &ix.hosts[hc.host as usize];
            let class = ix.org_class(h, f.vendor);
            match class {
                OrgClass::Amazon => amazon_skills.insert(f.skill),
                OrgClass::SkillVendor => vendor_skills.insert(f.skill),
                OrgClass::ThirdParty => third_skills.insert(f.skill),
            };
            let entry = groups
                .entry((class, ix.str_of(h.registrable), h.ad_tracking))
                .or_default();
            entry.0.insert(f.skill);
            entry.1.insert(hc.host);
        }
    }

    let mut rows: Vec<Table1Row> = groups
        .into_iter()
        .map(|((class, reg, at), (skills, subs))| {
            let display = match (subs.len(), subs.iter().next()) {
                (1, Some(&only)) => ix.str_of(ix.hosts[only as usize].host).to_string(),
                (n, _) => format!("*({n}).{reg}"),
            };
            Table1Row {
                class,
                display,
                skills: skills.len(),
                ad_tracking: at,
            }
        })
        .collect();
    rows.sort_by(|a, b| a.class.cmp(&b.class).then(b.skills.cmp(&a.skills)));

    // Failed skills: installed by a persona but produced no traffic.
    let skills_failed: usize = ix.obs.failed_installs.values().map(Vec::len).sum();
    let audited: BTreeSet<&str> = ix.obs.catalog.iter().map(|m| m.id.as_str()).collect();

    Table1 {
        rows,
        skills_amazon: amazon_skills.len(),
        skills_vendor: vendor_skills.len(),
        skills_third_party: third_skills.len(),
        skills_failed,
        skills_total: audited.len(),
    }
}

impl Table1 {
    /// Stream the paper's layout into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut t = TextTable::new(
            "Table 1: Amazon, skill vendor, and third-party domains contacted by skills",
            &["Org.", "Domains", "Skills", "A&T"],
        );
        for r in &self.rows {
            t.row()
                .cell(r.class)
                .cell(&r.display)
                .cell(r.skills)
                .cell(if r.ad_tracking { "*" } else { "" });
        }
        let work = t.render_into(out);
        out.push('\n');
        let _ = writeln!(
            out,
            "Skills contacting: Amazon {} | vendor {} | third party {} | failed {} (of {})",
            self.skills_amazon,
            self.skills_vendor,
            self.skills_third_party,
            self.skills_failed,
            self.skills_total,
        );
        work + 1
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// Table 2: traffic share by organization class and purpose.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// (class, functional share, A&T share) — shares of all packets.
    pub rows: Vec<(OrgClass, f64, f64)>,
    /// Total A&T share.
    pub total_ad_tracking: f64,
}

/// Compute Table 2 from packet counts.
pub fn table2(ix: &AnalysisIndex) -> Table2 {
    let mut counts: BTreeMap<(OrgClass, TrafficPurpose), usize> = BTreeMap::new();
    let mut total = 0usize;
    for f in &ix.flows {
        for hc in ix.hosts_of(f) {
            let h = &ix.hosts[hc.host as usize];
            *counts
                .entry((ix.org_class(h, f.vendor), ix.purpose(h)))
                .or_insert(0) += hc.packets as usize;
            total += hc.packets as usize;
        }
    }
    let share = |class, purpose| -> f64 {
        if total == 0 {
            0.0
        } else {
            *counts.get(&(class, purpose)).unwrap_or(&0) as f64 / total as f64
        }
    };
    let rows: Vec<(OrgClass, f64, f64)> = [
        OrgClass::Amazon,
        OrgClass::SkillVendor,
        OrgClass::ThirdParty,
    ]
    .into_iter()
    .map(|c| {
        (
            c,
            share(c, TrafficPurpose::Functional),
            share(c, TrafficPurpose::AdvertisingTracking),
        )
    })
    .collect();
    let total_ad_tracking = rows.iter().map(|r| r.2).sum();
    Table2 {
        rows,
        total_ad_tracking,
    }
}

impl Table2 {
    /// Stream the paper's layout into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut t = TextTable::new(
            "Table 2: Distribution of advertising/tracking and functional traffic by organization",
            &[
                "Organization",
                "Functional",
                "Advertising & Tracking",
                "Total",
            ],
        );
        for (class, func, at) in &self.rows {
            t.row()
                .cell(class)
                .cell(pct(*func))
                .cell(pct(*at))
                .cell(pct(func + at));
        }
        t.row()
            .cell("Total")
            .cell(pct(1.0 - self.total_ad_tracking))
            .cell(pct(self.total_ad_tracking))
            .cell(pct(1.0));
        t.render_into(out)
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// Table 3: per-persona third-party domain counts by purpose.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// (persona, A&T domain count, functional domain count), only personas
    /// with any third-party contact, sorted by A&T count descending.
    pub rows: Vec<(String, usize, usize)>,
}

/// Compute Table 3.
pub fn table3(ix: &AnalysisIndex) -> Table3 {
    let mut rows: Vec<(String, usize, usize)> = ix
        .persona_flows
        .iter()
        .filter_map(|(persona, range)| {
            let mut at: BTreeSet<u32> = BTreeSet::new();
            let mut func: BTreeSet<u32> = BTreeSet::new();
            for f in ix.flows_in(range) {
                for hc in ix.hosts_of(f) {
                    let h = &ix.hosts[hc.host as usize];
                    if ix.org_class(h, f.vendor) != OrgClass::ThirdParty {
                        continue;
                    }
                    if h.ad_tracking {
                        at.insert(hc.host);
                    } else {
                        func.insert(hc.host);
                    }
                }
            }
            if at.is_empty() && func.is_empty() {
                None
            } else {
                Some((ix.str_of(*persona).to_string(), at.len(), func.len()))
            }
        })
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    Table3 { rows }
}

impl Table3 {
    /// Stream the paper's layout into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut t = TextTable::new(
            "Table 3: Third-party advertising/tracking and functional domains per persona",
            &["Persona", "Advertising & Tracking", "Functional"],
        );
        for (p, at, f) in &self.rows {
            t.row().cell(p).cell(at).cell(f);
        }
        t.render_into(out)
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// Table 4: top skills by contacted A&T services.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// (skill name, A&T endpoints contacted), top-5 by count.
    pub rows: Vec<(String, Vec<String>)>,
}

/// Compute Table 4. Skills are ranked by the number of distinct A&T
/// *services* (registrable domains) they contact, as the paper groups
/// subdomains of one service into a single entry.
pub fn table4(ix: &AnalysisIndex) -> Table4 {
    // Per skill id: A&T hosts, their registrable services, display name.
    let mut per_skill: BTreeMap<&str, (BTreeSet<u32>, BTreeSet<Sym>, Sym)> = BTreeMap::new();
    for f in &ix.flows {
        for hc in ix.hosts_of(f) {
            let h = &ix.hosts[hc.host as usize];
            if h.ad_tracking && h.org != Some(ix.amazon) {
                let entry = per_skill
                    .entry(ix.str_of(f.skill))
                    .or_insert_with(|| (BTreeSet::new(), BTreeSet::new(), f.name));
                entry.0.insert(hc.host);
                entry.1.insert(h.registrable);
            }
        }
    }
    let mut rows: Vec<(String, usize, Vec<String>)> = per_skill
        .into_values()
        .map(|(doms, services, name)| {
            (
                ix.str_of(name).to_string(),
                services.len(),
                doms.iter()
                    .map(|&h| ix.str_of(ix.hosts[h as usize].host).to_string())
                    .collect(),
            )
        })
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.dedup_by(|a, b| a.0 == b.0); // same skill observed under several personas
    rows.truncate(5);
    Table4 {
        rows: rows.into_iter().map(|(n, _, d)| (n, d)).collect(),
    }
}

impl Table4 {
    /// Stream the paper's layout into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut t = TextTable::new(
            "Table 4: Top-5 skills contacting third-party advertising & tracking services",
            &["Skill name", "Advertising & Tracking"],
        );
        for (name, doms) in &self.rows {
            t.row().cell(name).cell(Joined(doms));
        }
        t.render_into(out)
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// Display adapter: strings joined with `", "` straight into the arena.
struct Joined<'a>(&'a [String]);

impl std::fmt::Display for Joined<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(s)?;
        }
        Ok(())
    }
}

/// Figure 2: persona → registrable domain → purpose → organization flows.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// (persona, registrable domain, purpose, organization, packet count).
    pub flows: Vec<(String, String, TrafficPurpose, String, usize)>,
}

/// Compute Figure 2's flow series.
pub fn figure2(ix: &AnalysisIndex) -> Figure2 {
    let mut counts: BTreeMap<(&str, &str, TrafficPurpose, &str), usize> = BTreeMap::new();
    for f in &ix.flows {
        let persona = ix.str_of(f.persona);
        for hc in ix.hosts_of(f) {
            let h = &ix.hosts[hc.host as usize];
            *counts
                .entry((
                    persona,
                    ix.str_of(h.registrable),
                    ix.purpose(h),
                    ix.str_of(h.org_or_reg),
                ))
                .or_insert(0) += hc.packets as usize;
        }
    }
    let flows = counts
        .into_iter()
        .map(|((p, d, pu, o), n)| (p.to_string(), d.to_string(), pu, o.to_string(), n))
        .collect();
    Figure2 { flows }
}

impl Figure2 {
    /// Stream the flow series (sankey input data) into `out`; returns
    /// render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut t = TextTable::new(
            "Figure 2: Network traffic distribution by persona, domain, purpose, organization",
            &["Persona", "Domain", "Purpose", "Organization", "Packets"],
        );
        for (p, d, pu, o, n) in &self.flows {
            t.row().cell(p).cell(d).cell(pu).cell(o).cell(n);
        }
        t.render_into(out)
    }

    /// Render the flow series (sankey input data).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::test_support::{ix, obs};

    #[test]
    fn every_active_skill_contacts_amazon() {
        let t1 = table1(ix());
        // All skills that produced traffic contacted Amazon (§4.1: Amazon
        // mediates everything).
        let traffic = skill_traffic(obs());
        let skills_with_traffic: std::collections::BTreeSet<&str> =
            traffic.iter().map(|t| t.skill_id.as_str()).collect();
        assert_eq!(t1.skills_amazon, skills_with_traffic.len());
        assert!(t1.skills_amazon > 0);
    }

    #[test]
    fn vendor_domains_are_rare() {
        let t1 = table1(ix());
        // Only Garmin / YouVersion-class skills contact vendor domains.
        assert!(t1.skills_vendor <= 3, "vendor skills: {}", t1.skills_vendor);
    }

    #[test]
    fn table1_has_amazon_subdomain_group() {
        let t1 = table1(ix());
        assert!(
            t1.rows
                .iter()
                .any(|r| r.class == OrgClass::Amazon && r.display.contains("amazon.com")),
            "rows: {:?}",
            t1.rows.iter().map(|r| &r.display).collect::<Vec<_>>()
        );
    }

    #[test]
    fn table2_shares_sum_to_one() {
        let t2 = table2(ix());
        let sum: f64 = t2.rows.iter().map(|r| r.1 + r.2).sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        // Amazon dominates traffic (paper: 96.84%).
        let amazon = t2.rows.iter().find(|r| r.0 == OrgClass::Amazon).unwrap();
        assert!(
            amazon.1 + amazon.2 > 0.85,
            "amazon share {}",
            amazon.1 + amazon.2
        );
    }

    #[test]
    fn table3_excludes_personas_without_third_parties() {
        let t3 = table3(ix());
        for (p, _, _) in &t3.rows {
            assert_ne!(p, "Vanilla");
            assert_ne!(p, "Smart Home");
            assert_ne!(p, "Wine & Beverages");
            assert_ne!(p, "Navigation & Trip Planners");
        }
        assert!(!t3.rows.is_empty());
    }

    #[test]
    fn table4_garmin_leads() {
        // Garmin contacts 4 A&T services — the paper's Table 4 leader.
        let t4 = table4(ix());
        assert!(!t4.rows.is_empty());
        assert_eq!(t4.rows[0].0, "Garmin");
        assert_eq!(t4.rows[0].1.len(), 4);
        assert!(t4.rows.len() <= 5);
    }

    #[test]
    fn figure2_flows_nonempty_and_render() {
        let f2 = figure2(ix());
        assert!(!f2.flows.is_empty());
        let rendered = f2.render();
        assert!(rendered.contains("amazon.com"));
    }

    #[test]
    fn index_flows_match_naive_rescan() {
        // The index's flow table must agree with the naive per-artifact
        // scan it replaced: same (persona, skill) groups, same packet
        // totals, same endpoint sets.
        let naive = skill_traffic(obs());
        let ixr = ix();
        assert_eq!(naive.len(), ixr.flows.len());
        let mut naive_sorted: Vec<&SkillTraffic> = naive.iter().collect();
        naive_sorted.sort_by_key(|t| (t.persona.clone(), t.skill_id.clone()));
        for (t, f) in naive_sorted.iter().zip(&ixr.flows) {
            assert_eq!(t.persona, ixr.str_of(f.persona));
            assert_eq!(t.skill_id, ixr.str_of(f.skill));
            assert_eq!(t.packets, f.packets as usize);
            let ix_hosts: Vec<&str> = ixr
                .hosts_of(f)
                .iter()
                .map(|hc| ixr.str_of(ixr.hosts[hc.host as usize].host))
                .collect();
            let naive_hosts: Vec<&str> = t.endpoints.iter().map(|d| d.as_str()).collect();
            assert_eq!(ix_hosts, naive_hosts);
        }
    }
}
