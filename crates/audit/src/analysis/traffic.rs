//! RQ1 — network-traffic analysis: who collects and propagates user data.
//!
//! Reproduces Table 1 (domains contacted by skills, grouped by organization
//! class), Table 2 (advertising & tracking vs functional traffic share),
//! Table 3 (third-party domain counts per persona), Table 4 (top skills by
//! contacted A&T services), and Figure 2 (the persona → domain → purpose →
//! organization flow distribution).
//!
//! Everything is computed from the **encrypted router captures** plus the
//! auditor's public databases (org map, filter lists) — exactly the paper's
//! §4 inputs.

use crate::observations::Observations;
use crate::table::{pct, TextTable};
use alexa_net::{Domain, FilterList, OrgClass, TrafficPurpose};
use std::collections::{BTreeMap, BTreeSet};

/// Per-skill traffic view derived from captures.
#[derive(Debug, Clone)]
pub struct SkillTraffic {
    /// Skill id (capture label).
    pub skill_id: String,
    /// Persona whose device produced the captures.
    pub persona: String,
    /// Distinct endpoints contacted.
    pub endpoints: BTreeSet<Domain>,
    /// Total packets observed.
    pub packets: usize,
}

/// Flatten router captures into per-skill traffic records.
pub fn skill_traffic(obs: &Observations) -> Vec<SkillTraffic> {
    let mut out = Vec::new();
    for (persona, captures) in &obs.router_captures {
        let mut merged: BTreeMap<String, SkillTraffic> = BTreeMap::new();
        for cap in captures {
            let entry = merged
                .entry(cap.label.clone())
                .or_insert_with(|| SkillTraffic {
                    skill_id: cap.label.clone(),
                    persona: persona.clone(),
                    endpoints: BTreeSet::new(),
                    packets: 0,
                });
            entry.packets += cap.packets.len();
            entry
                .endpoints
                .extend(cap.packets.iter().map(|p| p.remote.clone()));
        }
        // Capture sessions with zero packets (failed installs) carry no
        // endpoint evidence; the paper excludes the 4 failed skills from
        // the 446 active ones.
        out.extend(merged.into_values().filter(|t| t.packets > 0));
    }
    out
}

/// Classify an endpoint relative to a skill's vendor.
fn classify(obs: &Observations, domain: &Domain, vendor: &str) -> OrgClass {
    obs.orgs.classify(domain, vendor)
}

/// One Table 1 row: a domain group and how many skills contacted it.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Organization class (Amazon / skill vendor / third party).
    pub class: OrgClass,
    /// Display name: `host` or `*(n).registrable` for subdomain groups.
    pub display: String,
    /// Number of skills contacting the group.
    pub skills: usize,
    /// Whether the group is advertising/tracking (grey rows in the paper).
    pub ad_tracking: bool,
}

/// Table 1 plus its headline counts.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Domain-group rows, ordered by class then descending skill count.
    pub rows: Vec<Table1Row>,
    /// Skills contacting ≥1 Amazon endpoint.
    pub skills_amazon: usize,
    /// Skills contacting their vendor's own endpoints.
    pub skills_vendor: usize,
    /// Skills contacting third-party endpoints.
    pub skills_third_party: usize,
    /// Skills that failed to load (no traffic at all).
    pub skills_failed: usize,
    /// Total skills audited.
    pub skills_total: usize,
}

/// Compute Table 1.
pub fn table1(obs: &Observations) -> Table1 {
    let fl = FilterList::new();
    let traffic = skill_traffic(obs);

    // Per (class, group display) → set of skills.
    let mut groups: BTreeMap<(OrgClass, String, bool), BTreeSet<String>> = BTreeMap::new();
    // Track subdomain multiplicity per (class, registrable).
    let mut subdomains: BTreeMap<(OrgClass, String, bool), BTreeSet<String>> = BTreeMap::new();

    let mut amazon_skills = BTreeSet::new();
    let mut vendor_skills = BTreeSet::new();
    let mut third_skills = BTreeSet::new();
    let mut seen_skills = BTreeSet::new();

    for t in &traffic {
        seen_skills.insert(t.skill_id.clone());
        let vendor = obs
            .skill_meta(&t.skill_id)
            .map(|m| m.vendor.clone())
            .unwrap_or_default();
        for d in &t.endpoints {
            let class = classify(obs, d, &vendor);
            match class {
                OrgClass::Amazon => {
                    amazon_skills.insert(t.skill_id.clone());
                }
                OrgClass::SkillVendor => {
                    vendor_skills.insert(t.skill_id.clone());
                }
                OrgClass::ThirdParty => {
                    third_skills.insert(t.skill_id.clone());
                }
            }
            let reg = d
                .registrable()
                .map(|r| r.as_str().to_string())
                .unwrap_or_else(|| d.as_str().to_string());
            let at = fl.is_ad_tracking(d);
            let key = (class, reg, at);
            subdomains
                .entry(key.clone())
                .or_default()
                .insert(d.as_str().to_string());
            groups.entry(key).or_default().insert(t.skill_id.clone());
        }
    }

    let mut rows: Vec<Table1Row> = groups
        .into_iter()
        .map(|((class, reg, at), skills)| {
            let subs = subdomains.get(&(class, reg.clone(), at)).unwrap();
            let display = if subs.len() == 1 {
                subs.iter().next().unwrap().clone()
            } else {
                format!("*({}).{reg}", subs.len())
            };
            Table1Row {
                class,
                display,
                skills: skills.len(),
                ad_tracking: at,
            }
        })
        .collect();
    rows.sort_by(|a, b| a.class.cmp(&b.class).then(b.skills.cmp(&a.skills)));

    // Failed skills: installed by a persona but produced no traffic.
    let skills_failed: usize = obs.failed_installs.values().map(Vec::len).sum();
    let audited: BTreeSet<&str> = obs.catalog.iter().map(|m| m.id.as_str()).collect();

    Table1 {
        rows,
        skills_amazon: amazon_skills.len(),
        skills_vendor: vendor_skills.len(),
        skills_third_party: third_skills.len(),
        skills_failed,
        skills_total: audited.len(),
    }
}

impl Table1 {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Table 1: Amazon, skill vendor, and third-party domains contacted by skills",
            &["Org.", "Domains", "Skills", "A&T"],
        );
        for r in &self.rows {
            t.row(vec![
                r.class.to_string(),
                r.display.clone(),
                r.skills.to_string(),
                if r.ad_tracking {
                    "*".to_string()
                } else {
                    String::new()
                },
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "\nSkills contacting: Amazon {} | vendor {} | third party {} | failed {} (of {})\n",
            self.skills_amazon,
            self.skills_vendor,
            self.skills_third_party,
            self.skills_failed,
            self.skills_total,
        ));
        out
    }
}

/// Table 2: traffic share by organization class and purpose.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// (class, functional share, A&T share) — shares of all packets.
    pub rows: Vec<(OrgClass, f64, f64)>,
    /// Total A&T share.
    pub total_ad_tracking: f64,
}

/// Compute Table 2 from packet counts.
pub fn table2(obs: &Observations) -> Table2 {
    let fl = FilterList::new();
    let mut counts: BTreeMap<(OrgClass, TrafficPurpose), usize> = BTreeMap::new();
    let mut total = 0usize;
    for captures in obs.router_captures.values() {
        for cap in captures {
            let vendor = obs
                .skill_meta(&cap.label)
                .map(|m| m.vendor.clone())
                .unwrap_or_default();
            for p in &cap.packets {
                let class = classify(obs, &p.remote, &vendor);
                let purpose = fl.classify(&p.remote);
                *counts.entry((class, purpose)).or_insert(0) += 1;
                total += 1;
            }
        }
    }
    let share = |class, purpose| -> f64 {
        if total == 0 {
            0.0
        } else {
            *counts.get(&(class, purpose)).unwrap_or(&0) as f64 / total as f64
        }
    };
    let rows: Vec<(OrgClass, f64, f64)> = [
        OrgClass::Amazon,
        OrgClass::SkillVendor,
        OrgClass::ThirdParty,
    ]
    .into_iter()
    .map(|c| {
        (
            c,
            share(c, TrafficPurpose::Functional),
            share(c, TrafficPurpose::AdvertisingTracking),
        )
    })
    .collect();
    let total_ad_tracking = rows.iter().map(|r| r.2).sum();
    Table2 {
        rows,
        total_ad_tracking,
    }
}

impl Table2 {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Table 2: Distribution of advertising/tracking and functional traffic by organization",
            &[
                "Organization",
                "Functional",
                "Advertising & Tracking",
                "Total",
            ],
        );
        for (class, func, at) in &self.rows {
            t.row(vec![
                class.to_string(),
                pct(*func),
                pct(*at),
                pct(func + at),
            ]);
        }
        t.row(vec![
            "Total".to_string(),
            pct(1.0 - self.total_ad_tracking),
            pct(self.total_ad_tracking),
            pct(1.0),
        ]);
        t.render()
    }
}

/// Table 3: per-persona third-party domain counts by purpose.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// (persona, A&T domain count, functional domain count), only personas
    /// with any third-party contact, sorted by A&T count descending.
    pub rows: Vec<(String, usize, usize)>,
}

/// Compute Table 3.
pub fn table3(obs: &Observations) -> Table3 {
    let fl = FilterList::new();
    let mut per_persona: BTreeMap<String, (BTreeSet<String>, BTreeSet<String>)> = BTreeMap::new();
    for t in skill_traffic(obs) {
        let vendor = obs
            .skill_meta(&t.skill_id)
            .map(|m| m.vendor.clone())
            .unwrap_or_default();
        for d in &t.endpoints {
            if classify(obs, d, &vendor) != OrgClass::ThirdParty {
                continue;
            }
            let entry = per_persona.entry(t.persona.clone()).or_default();
            match fl.classify(d) {
                TrafficPurpose::AdvertisingTracking => entry.0.insert(d.as_str().to_string()),
                TrafficPurpose::Functional => entry.1.insert(d.as_str().to_string()),
            };
        }
    }
    let mut rows: Vec<(String, usize, usize)> = per_persona
        .into_iter()
        .filter(|(_, (at, f))| !at.is_empty() || !f.is_empty())
        .map(|(p, (at, f))| (p, at.len(), f.len()))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    Table3 { rows }
}

impl Table3 {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Table 3: Third-party advertising/tracking and functional domains per persona",
            &["Persona", "Advertising & Tracking", "Functional"],
        );
        for (p, at, f) in &self.rows {
            t.row(vec![p.clone(), at.to_string(), f.to_string()]);
        }
        t.render()
    }
}

/// Table 4: top skills by contacted A&T services.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// (skill name, A&T endpoints contacted), top-5 by count.
    pub rows: Vec<(String, Vec<String>)>,
}

/// Compute Table 4. Skills are ranked by the number of distinct A&T
/// *services* (registrable domains) they contact, as the paper groups
/// subdomains of one service into a single entry.
pub fn table4(obs: &Observations) -> Table4 {
    let fl = FilterList::new();
    let mut per_skill: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut services: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for t in skill_traffic(obs) {
        for d in &t.endpoints {
            if fl.is_ad_tracking(d) && obs.orgs.org_of(d) != Some(alexa_net::orgmap::AMAZON) {
                per_skill
                    .entry(t.skill_id.clone())
                    .or_default()
                    .insert(d.as_str().to_string());
                let reg = d
                    .registrable()
                    .map(|r| r.as_str().to_string())
                    .unwrap_or_else(|| d.as_str().to_string());
                services.entry(t.skill_id.clone()).or_default().insert(reg);
            }
        }
    }
    let mut rows: Vec<(String, usize, Vec<String>)> = per_skill
        .into_iter()
        .map(|(id, doms)| {
            let n_services = services.get(&id).map(BTreeSet::len).unwrap_or(0);
            let name = obs.skill_meta(&id).map(|m| m.name.clone()).unwrap_or(id);
            (name, n_services, doms.into_iter().collect())
        })
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.dedup_by(|a, b| a.0 == b.0); // same skill observed under several personas
    rows.truncate(5);
    Table4 {
        rows: rows.into_iter().map(|(n, _, d)| (n, d)).collect(),
    }
}

impl Table4 {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Table 4: Top-5 skills contacting third-party advertising & tracking services",
            &["Skill name", "Advertising & Tracking"],
        );
        for (name, doms) in &self.rows {
            t.row(vec![name.clone(), doms.join(", ")]);
        }
        t.render()
    }
}

/// Figure 2: persona → registrable domain → purpose → organization flows.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// (persona, registrable domain, purpose, organization, packet count).
    pub flows: Vec<(String, String, TrafficPurpose, String, usize)>,
}

/// Compute Figure 2's flow series.
pub fn figure2(obs: &Observations) -> Figure2 {
    let fl = FilterList::new();
    let mut counts: BTreeMap<(String, String, TrafficPurpose, String), usize> = BTreeMap::new();
    for (persona, captures) in &obs.router_captures {
        for cap in captures {
            for p in &cap.packets {
                let reg = p
                    .remote
                    .registrable()
                    .map(|r| r.as_str().to_string())
                    .unwrap_or_else(|| p.remote.as_str().to_string());
                let org = obs
                    .orgs
                    .org_of(&p.remote)
                    .map(str::to_string)
                    .unwrap_or_else(|| reg.clone());
                let purpose = fl.classify(&p.remote);
                *counts
                    .entry((persona.clone(), reg, purpose, org))
                    .or_insert(0) += 1;
            }
        }
    }
    let flows = counts
        .into_iter()
        .map(|((p, d, pu, o), n)| (p, d, pu, o, n))
        .collect();
    Figure2 { flows }
}

impl Figure2 {
    /// Render the flow series (sankey input data).
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Figure 2: Network traffic distribution by persona, domain, purpose, organization",
            &["Persona", "Domain", "Purpose", "Organization", "Packets"],
        );
        for (p, d, pu, o, n) in &self.flows {
            t.row(vec![
                p.clone(),
                d.clone(),
                pu.to_string(),
                o.clone(),
                n.to_string(),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::test_support::obs;

    #[test]
    fn every_active_skill_contacts_amazon() {
        let t1 = table1(obs());
        // All skills that produced traffic contacted Amazon (§4.1: Amazon
        // mediates everything).
        let traffic = skill_traffic(obs());
        let skills_with_traffic: std::collections::BTreeSet<&str> =
            traffic.iter().map(|t| t.skill_id.as_str()).collect();
        assert_eq!(t1.skills_amazon, skills_with_traffic.len());
        assert!(t1.skills_amazon > 0);
    }

    #[test]
    fn vendor_domains_are_rare() {
        let t1 = table1(obs());
        // Only Garmin / YouVersion-class skills contact vendor domains.
        assert!(t1.skills_vendor <= 3, "vendor skills: {}", t1.skills_vendor);
    }

    #[test]
    fn table1_has_amazon_subdomain_group() {
        let t1 = table1(obs());
        assert!(
            t1.rows
                .iter()
                .any(|r| r.class == OrgClass::Amazon && r.display.contains("amazon.com")),
            "rows: {:?}",
            t1.rows.iter().map(|r| &r.display).collect::<Vec<_>>()
        );
    }

    #[test]
    fn table2_shares_sum_to_one() {
        let t2 = table2(obs());
        let sum: f64 = t2.rows.iter().map(|r| r.1 + r.2).sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        // Amazon dominates traffic (paper: 96.84%).
        let amazon = t2.rows.iter().find(|r| r.0 == OrgClass::Amazon).unwrap();
        assert!(
            amazon.1 + amazon.2 > 0.85,
            "amazon share {}",
            amazon.1 + amazon.2
        );
    }

    #[test]
    fn table3_excludes_personas_without_third_parties() {
        let t3 = table3(obs());
        for (p, _, _) in &t3.rows {
            assert_ne!(p, "Vanilla");
            assert_ne!(p, "Smart Home");
            assert_ne!(p, "Wine & Beverages");
            assert_ne!(p, "Navigation & Trip Planners");
        }
        assert!(!t3.rows.is_empty());
    }

    #[test]
    fn table4_garmin_leads() {
        // Garmin contacts 4 A&T services — the paper's Table 4 leader.
        let t4 = table4(obs());
        assert!(!t4.rows.is_empty());
        assert_eq!(t4.rows[0].0, "Garmin");
        assert_eq!(t4.rows[0].1.len(), 4);
        assert!(t4.rows.len() <= 5);
    }

    #[test]
    fn figure2_flows_nonempty_and_render() {
        let f2 = figure2(obs());
        assert!(!f2.flows.is_empty());
        let rendered = f2.render();
        assert!(rendered.contains("amazon.com"));
    }
}
