//! RQ3 — privacy-policy consistency analysis (§7, Tables 13 and 14).
//!
//! Runs the adapted PoliCheck over the observed flows:
//!
//! * **Table 13** (data-type analysis): data types extracted from the AVS
//!   Echo's plaintext captures, checked against each skill's policy text;
//! * **Table 14** (endpoint analysis): organizations extracted from the
//!   Echo's encrypted captures, checked against the policy text through the
//!   entity ontology;
//! * **§7.1 statistics**: how many skills link / provide / platform-mention
//!   policies;
//! * **§7.2.2 platform-policy experiment**: re-run Table 13 with Amazon's
//!   own policy consulted;
//! * **§7.2.3 validation**: micro/macro P/R/F1 of PoliCheck against the
//!   planted ground truth (the only analysis that touches ground truth,
//!   mirroring the paper's manual labeling).
//!
//! Both extraction passes (data types from the AVS captures, endpoint
//! organizations from the router captures) are shared through the
//! [`AnalysisIndex`] — the legacy implementation cloned every router
//! capture of every persona per artifact to feed the extractor.

use crate::index::AnalysisIndex;
use crate::table::TextTable;
use alexa_net::DataType;
use alexa_policy::{DisclosureClass, EntityOntology, PoliCheck};
use alexa_stats::PrfScores;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// §7.1 policy-availability statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyStats {
    /// Skills whose store page links a privacy policy.
    pub with_link: usize,
    /// Skills whose policy could actually be downloaded.
    pub retrievable: usize,
    /// Retrieved policies that mention Amazon or Alexa at all.
    pub mention_platform: usize,
    /// Retrieved policies that link Amazon's own policy.
    pub link_platform_policy: usize,
    /// Total skills studied.
    pub total: usize,
}

/// Compute §7.1's availability statistics.
pub fn policy_stats(ix: &AnalysisIndex) -> PolicyStats {
    let obs = ix.obs;
    let with_link = obs.catalog.iter().filter(|m| m.policy_link).count();
    let docs: Vec<&alexa_policy::PolicyDoc> = obs.policies.values().flatten().collect();
    PolicyStats {
        with_link,
        retrievable: docs.len(),
        mention_platform: docs.iter().filter(|d| d.mentions_platform()).count(),
        link_platform_policy: docs.iter().filter(|d| d.links_platform_policy()).count(),
        total: obs.catalog.len(),
    }
}

impl PolicyStats {
    /// Stream the §7.1 summary into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let _ = writeln!(
            out,
            "Policy availability (§7.1): {} of {} skills link a policy; {} retrievable; \
             {} mention Amazon/Alexa; {} link Amazon's policy.",
            self.with_link,
            self.total,
            self.retrievable,
            self.mention_platform,
            self.link_platform_policy,
        );
        1
    }

    /// Render the §7.1 summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// Table 13: disclosure classes per data type.
#[derive(Debug, Clone)]
pub struct Table13 {
    /// rows[data type] = (clear, vague, omitted, no policy) skill counts.
    pub rows: BTreeMap<DataType, (usize, usize, usize, usize)>,
    /// rows[data type] = skills whose policy *denies* the observed flow
    /// (PoliCheck's "incorrect" class; kept out of the paper-format rows).
    pub incorrect: BTreeMap<DataType, usize>,
}

/// Compute Table 13 from the index's AVS data-type map.
///
/// `include_platform_policy` reruns the analysis with Amazon's policy
/// consulted (§7.2.2).
pub fn table13(ix: &AnalysisIndex, include_platform_policy: bool) -> Table13 {
    let checker = if include_platform_policy {
        PoliCheck::with_platform_policy()
    } else {
        PoliCheck::new()
    };
    let mut rows: BTreeMap<DataType, (usize, usize, usize, usize)> = BTreeMap::new();
    let mut incorrect: BTreeMap<DataType, usize> = BTreeMap::new();
    for (skill_id, types) in &ix.types_per_skill {
        let doc = ix.obs.policies.get(skill_id).and_then(Option::as_ref);
        for &dt in types {
            if dt == DataType::DeviceMetric {
                continue; // platform telemetry; Table 13 tracks skill data
            }
            let class = checker.classify_data_type(doc, dt);
            let row = rows.entry(dt).or_insert((0, 0, 0, 0));
            match class {
                DisclosureClass::Clear => row.0 += 1,
                DisclosureClass::Vague => row.1 += 1,
                // The paper's Table 13 uses four classes; denials are
                // tracked separately and folded into "omitted" for the
                // paper-format rendering.
                DisclosureClass::Incorrect => {
                    row.2 += 1;
                    *incorrect.entry(dt).or_insert(0) += 1;
                }
                DisclosureClass::Omitted => row.2 += 1,
                DisclosureClass::NoPolicy => row.3 += 1,
            }
        }
    }
    Table13 { rows, incorrect }
}

/// Flows whose policies explicitly deny them: `(skill name, data type)`.
///
/// Not part of the paper's tables, but exactly what the original PoliCheck's
/// "incorrect" class exists for — the strongest form of policy
/// inconsistency the audit can demonstrate.
pub fn incorrect_flows(ix: &AnalysisIndex) -> Vec<(String, DataType)> {
    let checker = PoliCheck::new();
    let mut out: Vec<(&str, DataType)> = Vec::new();
    for (skill_id, types) in &ix.types_per_skill {
        let doc = ix.obs.policies.get(skill_id).and_then(Option::as_ref);
        for &dt in types {
            if checker.classify_data_type(doc, dt) == DisclosureClass::Incorrect {
                let name = ix
                    .skill_meta(skill_id)
                    .map(|m| m.name.as_str())
                    .unwrap_or(skill_id);
                out.push((name, dt));
            }
        }
    }
    out.sort();
    out.into_iter().map(|(n, dt)| (n.to_string(), dt)).collect()
}

impl Table13 {
    /// Counts for a data type: (clear, vague, omitted, no policy).
    pub fn get(&self, dt: DataType) -> (usize, usize, usize, usize) {
        self.rows.get(&dt).copied().unwrap_or((0, 0, 0, 0))
    }

    /// Whether every flow is clearly or vaguely disclosed (the §7.2.2
    /// platform-policy outcome).
    pub fn all_disclosed(&self) -> bool {
        self.rows
            .values()
            .all(|&(_, _, omitted, nopol)| omitted == 0 && nopol == 0)
    }

    /// Stream the paper's layout into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut t = TextTable::new(
            "Table 13: Data type disclosure analysis (skills per class)",
            &["Category", "Data type", "Clr.", "Vag.", "Omi.", "No Pol."],
        );
        for dt in DataType::ALL {
            if dt == DataType::DeviceMetric {
                continue;
            }
            let (c, v, o, n) = self.get(dt);
            if c + v + o + n == 0 {
                continue;
            }
            t.row()
                .cell(dt.category())
                .cell(dt.label())
                .cell(c)
                .cell(v)
                .cell(o)
                .cell(n);
        }
        t.render_into(out)
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// Table 14: endpoint organizations, their ontology categories, and how the
/// skills contacting them disclose it.
#[derive(Debug, Clone)]
pub struct Table14 {
    /// rows[org] = (ontology category labels, skill name → disclosure).
    pub rows: BTreeMap<String, (Vec<String>, BTreeMap<String, DisclosureClass>)>,
}

/// Compute Table 14 from the index's flow table (one merged pass over the
/// router captures of all personas).
pub fn table14(ix: &AnalysisIndex) -> Table14 {
    let checker = PoliCheck::new();
    let ontology = EntityOntology::new();

    // Per skill, the set of contacted endpoint organizations (the paper's
    // WHOIS fallback is pre-resolved in `HostInfo::org_or_reg`).
    let mut orgs_per_skill: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for f in &ix.flows {
        let entry = orgs_per_skill.entry(ix.str_of(f.skill)).or_default();
        for hc in ix.hosts_of(f) {
            entry.insert(ix.str_of(ix.hosts[hc.host as usize].org_or_reg));
        }
    }

    let mut per_org: BTreeMap<&str, BTreeMap<&str, DisclosureClass>> = BTreeMap::new();
    for (skill_id, orgs) in &orgs_per_skill {
        let doc = ix.obs.policies.get(*skill_id).and_then(Option::as_ref);
        let name = ix
            .skill_meta(skill_id)
            .map(|m| m.name.as_str())
            .unwrap_or(skill_id);
        for org in orgs {
            let class = checker.classify_endpoint(doc, org);
            per_org.entry(org).or_default().insert(name, class);
        }
    }
    let rows = per_org
        .into_iter()
        .map(|(org, per_skill)| {
            let cats = ontology
                .categories_of(org)
                .into_iter()
                .map(|c| c.label().to_string())
                .collect();
            let per_skill = per_skill
                .into_iter()
                .map(|(name, class)| (name.to_string(), class))
                .collect();
            (org.to_string(), (cats, per_skill))
        })
        .collect();
    Table14 { rows }
}

impl Table14 {
    /// Number of skills contacting non-Amazon endpoint organizations.
    pub fn non_amazon_skills(&self) -> usize {
        let mut skills = BTreeSet::new();
        for (org, (_, per_skill)) in &self.rows {
            if org != alexa_net::orgmap::AMAZON {
                skills.extend(per_skill.keys().cloned());
            }
        }
        skills.len()
    }

    /// Disclosure class of one (org, skill) pair.
    pub fn class_of(&self, org: &str, skill_name: &str) -> Option<DisclosureClass> {
        self.rows
            .get(org)
            .and_then(|(_, m)| m.get(skill_name))
            .copied()
    }

    /// Stream the paper's layout into `out` (counts per class instead of
    /// colors); returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut t = TextTable::new(
            "Table 14: Endpoint organizations observed in Amazon Echo traffic",
            &[
                "Endpoint Organization",
                "Categories",
                "Clear",
                "Vague",
                "Omitted",
                "No policy",
            ],
        );
        for (org, (cats, per_skill)) in &self.rows {
            let count =
                |class: DisclosureClass| per_skill.values().filter(|&&c| c == class).count();
            t.row()
                .cell(org)
                .cell(Joined(cats))
                .cell(count(DisclosureClass::Clear))
                .cell(count(DisclosureClass::Vague))
                .cell(count(DisclosureClass::Omitted))
                .cell(count(DisclosureClass::NoPolicy));
        }
        t.render_into(out)
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// Display adapter for a ", "-joined category list (avoids a `join`
/// allocation per rendered row).
struct Joined<'a>(&'a [String]);

impl std::fmt::Display for Joined<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(s)?;
        }
        Ok(())
    }
}

/// §7.2.3 validation scores.
#[derive(Debug, Clone)]
pub struct Validation {
    /// Micro-averaged precision/recall/F1.
    pub micro: PrfScores,
    /// Macro-averaged precision/recall/F1.
    pub macro_avg: PrfScores,
    /// Number of labeled flows compared.
    pub flows: usize,
}

/// Validate PoliCheck against planted ground truth on a 100-skill sample,
/// mirroring the paper's manual validation. This (and only this) analysis
/// regenerates the marketplace from the run's seed to obtain labels.
pub fn validation(ix: &AnalysisIndex) -> Validation {
    let market = alexa_platform::Marketplace::generate(ix.obs.seed);
    let sample: Vec<&alexa_platform::Skill> = market
        .all()
        .iter()
        .filter(|s| s.policy.has_document())
        .take(100)
        .collect();
    let matrix = alexa_policy::validate_against_ground_truth(&sample);
    Validation {
        micro: matrix.micro_scores(),
        macro_avg: matrix.macro_scores(),
        flows: matrix.total(),
    }
}

impl Validation {
    /// Stream the validation summary into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let _ = writeln!(
            out,
            "PoliCheck validation (§7.2.3, {} labeled flows): micro P/R/F1 = \
             {:.2}% / {:.2}% / {:.2}%; macro P/R/F1 = {:.2}% / {:.2}% / {:.2}%.",
            self.flows,
            100.0 * self.micro.precision,
            100.0 * self.micro.recall,
            100.0 * self.micro.f1,
            100.0 * self.macro_avg.precision,
            100.0 * self.macro_avg.recall,
            100.0 * self.macro_avg.f1,
        );
        1
    }

    /// Render the validation summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::test_support::{ix, obs};
    use alexa_policy::FlowExtractor;

    #[test]
    fn stats_shape_matches_paper_proportions() {
        let s = policy_stats(ix());
        assert_eq!(s.total, 450);
        assert_eq!(s.with_link, 214);
        assert_eq!(s.retrievable, 188);
        assert_eq!(s.mention_platform, 59);
        assert_eq!(s.link_platform_policy, 10);
    }

    #[test]
    fn index_data_types_match_naive_extraction() {
        assert_eq!(
            ix().types_per_skill,
            FlowExtractor::new().data_types(&obs().avs_captures)
        );
    }

    #[test]
    fn index_endpoint_orgs_match_naive_extraction() {
        // Table 14's org-per-skill view from the flow table must agree with
        // the extractor run over a flattened clone of every router capture
        // (the legacy input), modulo skills with no traffic at all.
        let i = ix();
        let o = obs();
        let all: Vec<alexa_net::Capture> = o
            .router_captures
            .values()
            .flat_map(|caps| caps.iter().cloned())
            .collect();
        let naive = FlowExtractor::new().endpoint_orgs(&all, &o.orgs);
        let mut from_index: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for f in &i.flows {
            let entry = from_index.entry(i.str_of(f.skill)).or_default();
            for hc in i.hosts_of(f) {
                entry.insert(i.str_of(i.hosts[hc.host as usize].org_or_reg));
            }
        }
        for (skill, orgs) in &naive {
            let got: BTreeSet<&str> = from_index.remove(skill.as_str()).unwrap_or_default();
            let want: BTreeSet<&str> = orgs.iter().map(String::as_str).collect();
            assert_eq!(got, want, "{skill}");
        }
        assert!(from_index.is_empty(), "extra skills: {from_index:?}");
    }

    #[test]
    fn table13_voice_recordings_everywhere() {
        let t13 = table13(ix(), false);
        let (c, v, o, n) = t13.get(DataType::VoiceRecording);
        // Every audited AVS skill sends voice; most disclose nothing.
        assert!(c + v + o + n > 0);
        assert!(o + n > c + v, "omission should dominate: {c}/{v}/{o}/{n}");
    }

    #[test]
    fn platform_policy_makes_everything_disclosed() {
        let t13 = table13(ix(), true);
        assert!(t13.all_disclosed(), "{:?}", t13.rows);
    }

    #[test]
    fn table14_amazon_contacted_by_everyone() {
        let t14 = table14(ix());
        let amazon = t14.rows.get(alexa_net::orgmap::AMAZON).expect("amazon row");
        assert!(amazon.0.contains(&"platform provider".to_string()));
        assert!(!amazon.1.is_empty());
    }

    #[test]
    fn garmin_clearly_discloses_itself() {
        let t14 = table14(ix());
        assert_eq!(
            t14.class_of("Garmin International", "Garmin"),
            Some(DisclosureClass::Clear)
        );
    }

    #[test]
    fn validation_in_paper_regime() {
        let v = validation(ix());
        assert!(
            v.micro.f1 > 0.8 && v.micro.f1 < 1.0,
            "micro F1 {}",
            v.micro.f1
        );
        assert!(v.flows > 100);
    }

    #[test]
    fn lying_policies_are_exposed() {
        // The marketplace plants up to six policies that deny collecting
        // voice recordings while the traffic shows them. The audit must
        // recover them from observables alone.
        let flows = incorrect_flows(ix());
        assert!(!flows.is_empty(), "no incorrect flows recovered");
        for (skill, dt) in &flows {
            assert_eq!(
                *dt,
                DataType::VoiceRecording,
                "{skill}: unexpected denied type {dt:?}"
            );
        }
        // Consistency with Table 13's separate incorrect tally.
        let t13 = table13(ix(), false);
        let tallied: usize = t13.incorrect.values().sum();
        assert_eq!(tallied, flows.len());
    }

    #[test]
    fn renders() {
        assert!(policy_stats(ix()).render().contains("retrievable"));
        assert!(table13(ix(), false).render().contains("voice recording"));
        assert!(table14(ix()).render().contains("Endpoint Organization"));
        assert!(validation(ix()).render().contains("micro"));
    }
}
