//! Analyses: one module per research question, each a pure function of the
//! shared [`crate::index::AnalysisIndex`] producing a typed table/figure
//! struct with a streaming text renderer (`render_into`).

pub mod audio;
pub mod bids;
pub mod creatives;
pub mod defense;
pub mod partners;
pub mod policy;
pub mod profiling;
pub mod significance;
pub mod traffic;

#[cfg(test)]
pub(crate) mod test_support {
    use crate::index::AnalysisIndex;
    use crate::{AuditConfig, AuditRun, Observations};
    use std::sync::OnceLock;

    /// A shared small audit run for analysis unit tests (computed once).
    pub fn obs() -> &'static Observations {
        static OBS: OnceLock<Observations> = OnceLock::new();
        OBS.get_or_init(|| AuditRun::execute(AuditConfig::small(2222)))
    }

    /// The shared analysis index over [`obs`] (built once).
    pub fn ix() -> &'static AnalysisIndex<'static> {
        static IX: OnceLock<AnalysisIndex<'static>> = OnceLock::new();
        IX.get_or_init(|| AnalysisIndex::build(obs()))
    }
}
