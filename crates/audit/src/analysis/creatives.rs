//! RQ2 — display-creative analysis (Table 8, §5.3).
//!
//! The paper manually labels creatives and calls an ad *personalized* when
//! (i) the advertiser is a skill vendor or Amazon itself, (ii) the ad is
//! exclusive to one persona, and (iii) the product matches the persona's
//! skill industry. This module automates the same rules over the recorded
//! creatives: it splits persona-exclusive Amazon ads from broadly-served
//! vendor ads, and counts appearances and distinct iterations like the
//! paper reports ("the dehumidifier ad appeared 7 times across 5
//! iterations").

use crate::observations::Observations;
use crate::persona::Persona;
use crate::table::TextTable;
use std::collections::{BTreeMap, BTreeSet};

/// One persona-exclusive ad from Amazon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExclusiveAd {
    /// Persona the ad is exclusive to.
    pub persona: String,
    /// Advertised product.
    pub product: String,
    /// Total appearances.
    pub appearances: usize,
    /// Distinct crawl iterations it appeared in.
    pub iterations: usize,
}

/// Table 8: personalized (persona-exclusive) ads from Amazon, plus the
/// broadly-served skill-vendor ads the paper found *not* to be exclusive.
#[derive(Debug, Clone)]
pub struct Table8 {
    /// Amazon ads exclusive to one persona.
    pub amazon_exclusive: Vec<ExclusiveAd>,
    /// (advertiser, count of personas seeing it) for skill-vendor campaigns.
    pub vendor_reach: Vec<(String, usize)>,
    /// Total creatives observed across all personas.
    pub total_creatives: usize,
}

/// Vendors of installed skills whose display campaigns §5.3 tracks.
const SKILL_VENDOR_ADVERTISERS: &[&str] =
    &["Microsoft", "SimpliSafe", "Samsung", "LG", "Ford", "Jeep"];

/// Compute Table 8 from the post-interaction crawl creatives.
pub fn table8(obs: &Observations) -> Table8 {
    // (advertiser, product) → persona → (appearances, iterations)
    type PerPersona = BTreeMap<String, (usize, BTreeSet<usize>)>;
    let mut seen: BTreeMap<(String, String), PerPersona> = BTreeMap::new();
    let mut total = 0usize;
    for persona in Persona::echo_personas() {
        for visit in obs.visits_in(persona, obs.post_window()) {
            for c in &visit.creatives {
                total += 1;
                let entry = seen
                    .entry((c.advertiser.clone(), c.product.clone()))
                    .or_default()
                    .entry(persona.name())
                    .or_insert((0, BTreeSet::new()));
                entry.0 += 1;
                entry.1.insert(visit.iteration);
            }
        }
    }

    let mut amazon_exclusive = Vec::new();
    let mut vendor_personas: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for ((advertiser, product), per_persona) in &seen {
        if advertiser == "Amazon" && per_persona.len() == 1 {
            let (persona, (appearances, iters)) = per_persona.iter().next().unwrap();
            amazon_exclusive.push(ExclusiveAd {
                persona: persona.clone(),
                product: product.clone(),
                appearances: *appearances,
                iterations: iters.len(),
            });
        }
        if SKILL_VENDOR_ADVERTISERS.contains(&advertiser.as_str()) {
            vendor_personas
                .entry(advertiser.clone())
                .or_default()
                .extend(per_persona.keys().cloned());
        }
    }
    amazon_exclusive.sort_by(|a, b| a.persona.cmp(&b.persona).then(a.product.cmp(&b.product)));
    let vendor_reach = vendor_personas
        .into_iter()
        .map(|(v, ps)| (v, ps.len()))
        .collect();
    Table8 {
        amazon_exclusive,
        vendor_reach,
        total_creatives: total,
    }
}

impl Table8 {
    /// Products exclusive to a given persona.
    pub fn products_for(&self, persona: &str) -> Vec<&str> {
        self.amazon_exclusive
            .iter()
            .filter(|a| a.persona == persona)
            .map(|a| a.product.as_str())
            .collect()
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Table 8: Personalized (persona-exclusive) ads from Amazon",
            &["Persona", "Advertised product", "Appearances", "Iterations"],
        );
        for a in &self.amazon_exclusive {
            t.row(vec![
                a.persona.clone(),
                a.product.clone(),
                a.appearances.to_string(),
                a.iterations.to_string(),
            ]);
        }
        let mut out = t.render();
        out.push_str("\nSkill-vendor campaigns (personas reached — none exclusive):\n");
        for (v, n) in &self.vendor_reach {
            out.push_str(&format!("  {v}: {n} personas\n"));
        }
        out.push_str(&format!(
            "Total creatives observed: {}\n",
            self.total_creatives
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::test_support::obs;

    #[test]
    fn amazon_exclusives_match_planted_personas() {
        let t8 = table8(obs());
        // The planted inventory keys the dehumidifier to Health & Fitness
        // and Eero/Kindle to Religion & Spirituality.
        for ad in &t8.amazon_exclusive {
            match ad.product.as_str() {
                "Dehumidifier" | "Essential oils" => assert_eq!(ad.persona, "Health & Fitness"),
                "Eero WiFi router" | "Kindle" | "Swarovski bracelet" => {
                    assert_eq!(ad.persona, "Religion & Spirituality")
                }
                "Dyson vacuum cleaner" | "Vacuum cleaner accessories" => {
                    assert_eq!(ad.persona, "Smart Home")
                }
                "PC files copying/switching software" => {
                    assert_eq!(ad.persona, "Pets & Animals")
                }
                other => panic!("unexpected exclusive Amazon ad: {other}"),
            }
        }
        assert!(!t8.amazon_exclusive.is_empty());
    }

    #[test]
    fn vanilla_gets_no_exclusive_amazon_ads() {
        let t8 = table8(obs());
        assert!(t8.products_for("Vanilla").is_empty());
    }

    #[test]
    fn vendor_ads_are_broad_not_exclusive() {
        let t8 = table8(obs());
        // Microsoft's heavy campaign reaches many personas.
        let microsoft = t8.vendor_reach.iter().find(|(v, _)| v == "Microsoft");
        if let Some((_, n)) = microsoft {
            assert!(*n >= 3, "Microsoft reached only {n} personas");
        }
    }

    #[test]
    fn appearances_at_least_iterations() {
        let t8 = table8(obs());
        for a in &t8.amazon_exclusive {
            assert!(a.appearances >= a.iterations);
        }
    }

    #[test]
    fn renders() {
        assert!(table8(obs()).render().contains("Total creatives"));
    }
}
