//! RQ2 — display-creative analysis (Table 8, §5.3).
//!
//! The paper manually labels creatives and calls an ad *personalized* when
//! (i) the advertiser is a skill vendor or Amazon itself, (ii) the ad is
//! exclusive to one persona, and (iii) the product matches the persona's
//! skill industry. This module automates the same rules over the recorded
//! creatives: it splits persona-exclusive Amazon ads from broadly-served
//! vendor ads, and counts appearances and distinct iterations like the
//! paper reports ("the dehumidifier ad appeared 7 times across 5
//! iterations").

use crate::index::AnalysisIndex;
use crate::persona::Persona;
use crate::table::TextTable;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// One persona-exclusive ad from Amazon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExclusiveAd {
    /// Persona the ad is exclusive to.
    pub persona: String,
    /// Advertised product.
    pub product: String,
    /// Total appearances.
    pub appearances: usize,
    /// Distinct crawl iterations it appeared in.
    pub iterations: usize,
}

/// Table 8: personalized (persona-exclusive) ads from Amazon, plus the
/// broadly-served skill-vendor ads the paper found *not* to be exclusive.
#[derive(Debug, Clone)]
pub struct Table8 {
    /// Amazon ads exclusive to one persona.
    pub amazon_exclusive: Vec<ExclusiveAd>,
    /// (advertiser, count of personas seeing it) for skill-vendor campaigns.
    pub vendor_reach: Vec<(String, usize)>,
    /// Total creatives observed across all personas.
    pub total_creatives: usize,
}

/// Vendors of installed skills whose display campaigns §5.3 tracks.
const SKILL_VENDOR_ADVERTISERS: &[&str] =
    &["Microsoft", "SimpliSafe", "Samsung", "LG", "Ford", "Jeep"];

/// Compute Table 8 from the post-interaction crawl creatives.
pub fn table8(ix: &AnalysisIndex) -> Table8 {
    let obs = ix.obs;
    // (advertiser, product) → persona → (appearances, iterations); all keys
    // borrowed from the observations — no per-creative allocation.
    type PerPersona<'a> = BTreeMap<&'a str, (usize, BTreeSet<usize>)>;
    let mut seen: BTreeMap<(&str, &str), PerPersona> = BTreeMap::new();
    let mut total = 0usize;
    let personas: Vec<(Persona, String)> = Persona::echo_personas()
        .into_iter()
        .map(|p| (p, p.name()))
        .collect();
    for (persona, name) in &personas {
        for visit in obs.visits_in(*persona, obs.post_window()) {
            for c in &visit.creatives {
                total += 1;
                let entry = seen
                    .entry((c.advertiser.as_str(), c.product.as_str()))
                    .or_default()
                    .entry(name.as_str())
                    .or_insert((0, BTreeSet::new()));
                entry.0 += 1;
                entry.1.insert(visit.iteration);
            }
        }
    }

    let mut amazon_exclusive: Vec<ExclusiveAd> = seen
        .iter()
        .filter_map(|((advertiser, product), per_persona)| {
            if *advertiser != "Amazon" || per_persona.len() != 1 {
                return None;
            }
            let (persona, (appearances, iters)) = per_persona.iter().next()?;
            Some(ExclusiveAd {
                persona: (*persona).to_string(),
                product: (*product).to_string(),
                appearances: *appearances,
                iterations: iters.len(),
            })
        })
        .collect();
    let mut vendor_personas: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for ((advertiser, _), per_persona) in &seen {
        if SKILL_VENDOR_ADVERTISERS.contains(advertiser) {
            vendor_personas
                .entry(advertiser)
                .or_default()
                .extend(per_persona.keys().copied());
        }
    }
    amazon_exclusive.sort_by(|a, b| a.persona.cmp(&b.persona).then(a.product.cmp(&b.product)));
    let vendor_reach = vendor_personas
        .into_iter()
        .map(|(v, ps)| (v.to_string(), ps.len()))
        .collect();
    Table8 {
        amazon_exclusive,
        vendor_reach,
        total_creatives: total,
    }
}

impl Table8 {
    /// Products exclusive to a given persona.
    pub fn products_for(&self, persona: &str) -> Vec<&str> {
        self.amazon_exclusive
            .iter()
            .filter(|a| a.persona == persona)
            .map(|a| a.product.as_str())
            .collect()
    }

    /// Stream the paper's layout into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut t = TextTable::new(
            "Table 8: Personalized (persona-exclusive) ads from Amazon",
            &["Persona", "Advertised product", "Appearances", "Iterations"],
        );
        for a in &self.amazon_exclusive {
            t.row()
                .cell(&a.persona)
                .cell(&a.product)
                .cell(a.appearances)
                .cell(a.iterations);
        }
        let mut work = t.render_into(out);
        out.push_str("\nSkill-vendor campaigns (personas reached — none exclusive):\n");
        work += 1;
        for (v, n) in &self.vendor_reach {
            let _ = writeln!(out, "  {v}: {n} personas");
            work += 1;
        }
        let _ = writeln!(out, "Total creatives observed: {}", self.total_creatives);
        work + 1
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::test_support::ix;

    #[test]
    fn amazon_exclusives_match_planted_personas() {
        let t8 = table8(ix());
        // The planted inventory keys the dehumidifier to Health & Fitness
        // and Eero/Kindle to Religion & Spirituality.
        for ad in &t8.amazon_exclusive {
            match ad.product.as_str() {
                "Dehumidifier" | "Essential oils" => assert_eq!(ad.persona, "Health & Fitness"),
                "Eero WiFi router" | "Kindle" | "Swarovski bracelet" => {
                    assert_eq!(ad.persona, "Religion & Spirituality")
                }
                "Dyson vacuum cleaner" | "Vacuum cleaner accessories" => {
                    assert_eq!(ad.persona, "Smart Home")
                }
                "PC files copying/switching software" => {
                    assert_eq!(ad.persona, "Pets & Animals")
                }
                other => panic!("unexpected exclusive Amazon ad: {other}"),
            }
        }
        assert!(!t8.amazon_exclusive.is_empty());
    }

    #[test]
    fn vanilla_gets_no_exclusive_amazon_ads() {
        let t8 = table8(ix());
        assert!(t8.products_for("Vanilla").is_empty());
    }

    #[test]
    fn vendor_ads_are_broad_not_exclusive() {
        let t8 = table8(ix());
        // Microsoft's heavy campaign reaches many personas.
        let microsoft = t8.vendor_reach.iter().find(|(v, _)| v == "Microsoft");
        if let Some((_, n)) = microsoft {
            assert!(*n >= 3, "Microsoft reached only {n} personas");
        }
    }

    #[test]
    fn appearances_at_least_iterations() {
        let t8 = table8(ix());
        for a in &t8.amazon_exclusive {
            assert!(a.appearances >= a.iterations);
        }
    }

    #[test]
    fn renders() {
        assert!(table8(ix()).render().contains("Total creatives"));
    }
}
