//! RQ2 — header-bidding bid-value analysis.
//!
//! Reproduces Table 5 (median/mean CPM per persona with interaction),
//! Table 6 (means without vs with interaction, the holiday-season control),
//! Figure 3 (CPM box plots without/with interaction) and Figure 7 (CPM
//! across vanilla / Echo interest / web interest personas).
//!
//! Methodology mirrors §3.3's controls: bids are only compared on **common
//! ad slots** — slots that returned bids for *every* compared persona in
//! the window — because bid values vary per slot and not every slot loads
//! for every persona.

use crate::observations::Observations;
use crate::persona::Persona;
use crate::table::{f3, TextTable};
use alexa_stats::{bootstrap_median_ci, five_number_summary, mean, median, BootstrapCi, Summary};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Slot ids that returned at least one bid for every given persona within
/// the iteration window.
pub fn common_slots(
    obs: &Observations,
    personas: &[Persona],
    window: Range<usize>,
) -> BTreeSet<String> {
    let mut common: Option<BTreeSet<String>> = None;
    for p in personas {
        let slots: BTreeSet<String> = obs
            .visits_in(*p, window.clone())
            .iter()
            .flat_map(|v| v.bids.iter().map(|b| b.slot_id.clone()))
            .collect();
        common = Some(match common {
            None => slots,
            Some(acc) => acc.intersection(&slots).cloned().collect(),
        });
    }
    common.unwrap_or_default()
}

/// All individual CPM values a persona received on the given slots within
/// the window.
pub fn pooled_bids(
    obs: &Observations,
    persona: Persona,
    window: Range<usize>,
    slots: &BTreeSet<String>,
) -> Vec<f64> {
    obs.visits_in(persona, window)
        .iter()
        .flat_map(|v| v.bids.iter())
        .filter(|b| slots.contains(&b.slot_id))
        .map(|b| b.cpm)
        .collect()
}

/// Per-slot mean CPM (ordered by slot id) — the slot-level sample used for
/// the significance tests, where between-slot heterogeneity provides the
/// natural variance.
pub fn slot_means(
    obs: &Observations,
    persona: Persona,
    window: Range<usize>,
    slots: &BTreeSet<String>,
) -> Vec<f64> {
    let mut per_slot: BTreeMap<&String, Vec<f64>> = slots.iter().map(|s| (s, Vec::new())).collect();
    for v in obs.visits_in(persona, window) {
        for b in &v.bids {
            if let Some(e) = per_slot.get_mut(&b.slot_id) {
                e.push(b.cpm);
            }
        }
    }
    per_slot.values().filter_map(|v| mean(v)).collect()
}

/// Table 5: median and mean CPM for interest and vanilla personas with
/// interaction (post window, common slots).
#[derive(Debug, Clone)]
pub struct Table5 {
    /// (persona, median CPM, mean CPM) rows, interest personas then vanilla.
    pub rows: Vec<(String, f64, f64)>,
    /// Number of common ad slots the comparison ran on.
    pub common_slots: usize,
}

/// Compute Table 5.
pub fn table5(obs: &Observations) -> Table5 {
    let personas = Persona::echo_personas();
    let slots = common_slots(obs, &personas, obs.post_window());
    let rows = personas
        .iter()
        .map(|&p| {
            let bids = pooled_bids(obs, p, obs.post_window(), &slots);
            (
                p.name(),
                median(&bids).unwrap_or(0.0),
                mean(&bids).unwrap_or(0.0),
            )
        })
        .collect();
    Table5 {
        rows,
        common_slots: slots.len(),
    }
}

impl Table5 {
    /// Median/mean for a persona by name.
    pub fn get(&self, persona: &str) -> Option<(f64, f64)> {
        self.rows
            .iter()
            .find(|r| r.0 == persona)
            .map(|r| (r.1, r.2))
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Table 5: Median and mean bid values (CPM) for interest and vanilla personas",
            &["Persona", "Median", "Mean"],
        );
        for (p, med, avg) in &self.rows {
            t.row(vec![p.clone(), f3(*med), f3(*avg)]);
        }
        let mut out = t.render();
        out.push_str(&format!("(common ad slots: {})\n", self.common_slots));
        out
    }
}

/// Bootstrap 95% confidence intervals for Table 5's per-persona median CPM
/// (seeded percentile bootstrap, 1000 resamples) — the robustness companion
/// the paper's point estimates lack.
pub fn table5_median_cis(obs: &Observations) -> Vec<(String, BootstrapCi)> {
    let personas = Persona::echo_personas();
    let slots = common_slots(obs, &personas, obs.post_window());
    personas
        .iter()
        .filter_map(|&p| {
            let mut sample = pooled_bids(obs, p, obs.post_window(), &slots);
            // Deterministic thinning keeps the bootstrap tractable on large
            // bid corpora without biasing the median.
            if sample.len() > 4000 {
                let stride = sample.len() / 4000 + 1;
                sample = sample.into_iter().step_by(stride).collect();
            }
            bootstrap_median_ci(&sample, 500, 0.95, obs.seed ^ 0xc1)
                .ok()
                .map(|ci| (p.name(), ci))
        })
        .collect()
}

/// Render the Table 5 medians with their bootstrap intervals.
pub fn render_table5_cis(cis: &[(String, BootstrapCi)]) -> String {
    let mut t = TextTable::new(
        "Table 5 medians with bootstrap 95% CIs",
        &["Persona", "Median", "CI low", "CI high"],
    );
    for (p, ci) in cis {
        t.row(vec![p.clone(), f3(ci.estimate), f3(ci.lo), f3(ci.hi)]);
    }
    t.render()
}

/// Table 6: mean CPM in the crawls closest to the interaction boundary —
/// last three pre-interaction vs first three post-interaction iterations —
/// ruling out the holiday season as the explanation for elevated bids.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// (persona, mean without interaction, mean with interaction).
    pub rows: Vec<(String, f64, f64)>,
}

/// Compute Table 6.
pub fn table6(obs: &Observations) -> Table6 {
    let personas = Persona::echo_personas();
    let pre_tail = obs.pre_iterations.saturating_sub(3)..obs.pre_iterations;
    let post_head =
        obs.pre_iterations..(obs.pre_iterations + 3).min(obs.pre_iterations + obs.post_iterations);
    let slots_pre = common_slots(obs, &personas, pre_tail.clone());
    let slots_post = common_slots(obs, &personas, post_head.clone());
    let rows = personas
        .iter()
        .map(|&p| {
            let pre = pooled_bids(obs, p, pre_tail.clone(), &slots_pre);
            let post = pooled_bids(obs, p, post_head.clone(), &slots_post);
            (
                p.name(),
                mean(&pre).unwrap_or(0.0),
                mean(&post).unwrap_or(0.0),
            )
        })
        .collect();
    Table6 { rows }
}

impl Table6 {
    /// Means for a persona by name: (no interaction, interaction).
    pub fn get(&self, persona: &str) -> Option<(f64, f64)> {
        self.rows
            .iter()
            .find(|r| r.0 == persona)
            .map(|r| (r.1, r.2))
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Table 6: Mean bid values without and with interaction (holiday-adjacent crawls)",
            &["Persona", "No Interaction", "Interaction"],
        );
        for (p, pre, post) in &self.rows {
            t.row(vec![p.clone(), f3(*pre), f3(*post)]);
        }
        t.render()
    }
}

/// Figure 3: per-persona CPM distributions without (a) and with (b)
/// interaction, as box-plot five-number summaries.
#[derive(Debug, Clone)]
pub struct Figure3 {
    /// Panel (a): pre-interaction summaries per persona.
    pub without_interaction: Vec<(String, Summary)>,
    /// Panel (b): post-interaction summaries per persona.
    pub with_interaction: Vec<(String, Summary)>,
}

/// Compute Figure 3's series.
pub fn figure3(obs: &Observations) -> Figure3 {
    let personas = Persona::echo_personas();
    let mut fig = Figure3 {
        without_interaction: Vec::new(),
        with_interaction: Vec::new(),
    };
    for (window, out) in [
        (obs.pre_window(), &mut fig.without_interaction),
        (obs.post_window(), &mut fig.with_interaction),
    ] {
        let slots = common_slots(obs, &personas, window.clone());
        for &p in &personas {
            let bids = pooled_bids(obs, p, window.clone(), &slots);
            if let Some(s) = five_number_summary(&bids) {
                out.push((p.name(), s));
            }
        }
    }
    fig
}

impl Figure3 {
    /// Render both panels.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (title, series) in [
            (
                "Figure 3a: Bidding behavior without user interaction",
                &self.without_interaction,
            ),
            (
                "Figure 3b: Bidding behavior with user interaction",
                &self.with_interaction,
            ),
        ] {
            let mut t = TextTable::new(
                title,
                &["Persona", "Min", "Q1", "Median", "Q3", "Max", "Mean"],
            );
            for (p, s) in series {
                t.row(vec![
                    p.clone(),
                    f3(s.min),
                    f3(s.q1),
                    f3(s.median),
                    f3(s.q3),
                    f3(s.max),
                    f3(s.mean),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }
}

/// Figure 7: CPM across vanilla, Echo interest and web interest personas on
/// common slots (post window).
#[derive(Debug, Clone)]
pub struct Figure7 {
    /// Per-persona five-number summaries, vanilla first, then Echo interest,
    /// then the web personas.
    pub series: Vec<(String, Summary)>,
}

/// Compute Figure 7's series.
pub fn figure7(obs: &Observations) -> Figure7 {
    let personas = Persona::all();
    let slots = common_slots(obs, &personas, obs.post_window());
    let mut ordered = vec![Persona::Vanilla];
    ordered.extend(
        Persona::echo_personas()
            .into_iter()
            .filter(|p| *p != Persona::Vanilla),
    );
    ordered.extend(Persona::web_personas());
    let series = ordered
        .into_iter()
        .filter_map(|p| {
            let bids = pooled_bids(obs, p, obs.post_window(), &slots);
            five_number_summary(&bids).map(|s| (p.name(), s))
        })
        .collect();
    Figure7 { series }
}

impl Figure7 {
    /// Render the figure series.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Figure 7: CPM across vanilla, Echo interest, and web interest personas",
            &["Persona", "Min", "Q1", "Median", "Q3", "Max", "Mean"],
        );
        for (p, s) in &self.series {
            t.row(vec![
                p.clone(),
                f3(s.min),
                f3(s.q1),
                f3(s.median),
                f3(s.q3),
                f3(s.max),
                f3(s.mean),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::test_support::obs;

    #[test]
    fn common_slots_nonempty() {
        let o = obs();
        let slots = common_slots(o, &Persona::echo_personas(), o.post_window());
        assert!(!slots.is_empty());
    }

    #[test]
    fn interest_personas_outbid_vanilla_with_interaction() {
        let t5 = table5(obs());
        let (van_med, _) = t5.get("Vanilla").unwrap();
        let mut higher = 0;
        for cat in alexa_platform::SkillCategory::ALL {
            let (med, _) = t5.get(cat.label()).unwrap();
            if med > van_med {
                higher += 1;
            }
        }
        assert!(
            higher >= 8,
            "only {higher}/9 interest personas above vanilla"
        );
    }

    #[test]
    fn no_discernible_difference_before_interaction() {
        let f3 = figure3(obs());
        let medians: Vec<f64> = f3
            .without_interaction
            .iter()
            .map(|(_, s)| s.median)
            .collect();
        let vanilla = f3
            .without_interaction
            .iter()
            .find(|(p, _)| p == "Vanilla")
            .map(|(_, s)| s.median)
            .unwrap();
        // Pre-interaction, every persona's median is within 2× of vanilla.
        for m in &medians {
            assert!(
                *m < vanilla * 2.0 && *m > vanilla / 2.0,
                "median {m} vs vanilla {vanilla}"
            );
        }
    }

    #[test]
    fn post_interaction_difference_is_visible() {
        let fig = figure3(obs());
        let get = |series: &[(String, Summary)], name: &str| {
            series
                .iter()
                .find(|(p, _)| p == name)
                .map(|(_, s)| s.median)
                .unwrap()
        };
        let vanilla = get(&fig.with_interaction, "Vanilla");
        let pets = get(&fig.with_interaction, "Pets & Animals");
        assert!(pets > vanilla * 2.0, "pets {pets} vanilla {vanilla}");
    }

    #[test]
    fn holiday_control_shape() {
        // Table 6: without interaction (peak season) the vanilla persona's
        // mean is comparable to interest personas; with interaction the
        // interest personas keep elevated bids while vanilla falls.
        let t6 = table6(obs());
        let (van_pre, van_post) = t6.get("Vanilla").unwrap();
        assert!(van_pre > van_post, "vanilla pre {van_pre} post {van_post}");
        let (pets_pre, pets_post) = t6.get("Pets & Animals").unwrap();
        assert!(
            pets_post > van_post,
            "pets post {pets_post} vanilla post {van_post}"
        );
        let _ = pets_pre;
    }

    #[test]
    fn echo_and_web_personas_look_alike() {
        let f7 = figure7(obs());
        let get = |name: &str| {
            f7.series
                .iter()
                .find(|(p, _)| p == name)
                .map(|(_, s)| s.median)
                .unwrap()
        };
        let web = get("Web Health");
        let echo = get("Dating");
        let ratio = echo / web;
        assert!((0.4..2.5).contains(&ratio), "echo/web median ratio {ratio}");
    }

    #[test]
    fn renders_contain_all_personas() {
        let t5 = table5(obs());
        let s = t5.render();
        assert!(s.contains("Vanilla"));
        assert!(s.contains("Fashion & Style"));
    }

    #[test]
    fn bootstrap_cis_separate_strong_personas_from_vanilla() {
        let cis = table5_median_cis(obs());
        assert_eq!(cis.len(), 10);
        let get = |name: &str| {
            cis.iter()
                .find(|(p, _)| p == name)
                .map(|(_, c)| *c)
                .unwrap()
        };
        let vanilla = get("Vanilla");
        let pets = get("Pets & Animals");
        // The strongest persona's median CI sits entirely above vanilla's.
        assert!(pets.lo > vanilla.hi, "pets {pets:?} vs vanilla {vanilla:?}");
        // Intervals bracket their estimates.
        for (p, ci) in &cis {
            assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi, "{p}");
        }
        let rendered = render_table5_cis(&cis);
        assert!(rendered.contains("CI low"));
    }
}
