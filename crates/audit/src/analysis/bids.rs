//! RQ2 — header-bidding bid-value analysis.
//!
//! Reproduces Table 5 (median/mean CPM per persona with interaction),
//! Table 6 (means without vs with interaction, the holiday-season control),
//! Figure 3 (CPM box plots without/with interaction) and Figure 7 (CPM
//! across vanilla / Echo interest / web interest personas).
//!
//! Methodology mirrors §3.3's controls: bids are only compared on **common
//! ad slots** — slots that returned bids for *every* compared persona in
//! the window — because bid values vary per slot and not every slot loads
//! for every persona. Slot sets are represented as dense masks over the
//! [`AnalysisIndex`]'s interned slot table; all pooling preserves the
//! original observation order (the seeded bootstrap resamples by index).

use crate::index::AnalysisIndex;
use crate::persona::Persona;
use crate::table::{f3, TextTable};
use alexa_stats::{bootstrap_median_ci, five_number_summary, mean, median, BootstrapCi, Summary};
use std::fmt::Write as _;
use std::ops::Range;

/// Mask (over [`AnalysisIndex::slots`]) of the slot ids that returned at
/// least one bid for every given persona within the iteration window.
pub fn common_slots(ix: &AnalysisIndex, personas: &[Persona], window: Range<usize>) -> Vec<bool> {
    ix.common_slots(personas, &window)
}

/// All individual CPM values a persona received on the masked slots within
/// the window, in observation order.
pub fn pooled_bids(
    ix: &AnalysisIndex,
    persona: Persona,
    window: Range<usize>,
    slots: &[bool],
) -> Vec<f64> {
    ix.pooled_bids(persona, &window, slots)
}

/// Per-slot mean CPM (ordered by slot id) — the slot-level sample used for
/// the significance tests, where between-slot heterogeneity provides the
/// natural variance.
pub fn slot_means(
    ix: &AnalysisIndex,
    persona: Persona,
    window: Range<usize>,
    slots: &[bool],
) -> Vec<f64> {
    ix.slot_means(persona, &window, slots)
}

/// Table 5: median and mean CPM for interest and vanilla personas with
/// interaction (post window, common slots).
#[derive(Debug, Clone)]
pub struct Table5 {
    /// (persona, median CPM, mean CPM) rows, interest personas then vanilla.
    pub rows: Vec<(String, f64, f64)>,
    /// Number of common ad slots the comparison ran on.
    pub common_slots: usize,
}

/// Compute Table 5.
pub fn table5(ix: &AnalysisIndex) -> Table5 {
    let personas = Persona::echo_personas();
    let slots = ix.common_slots(&personas, &ix.obs.post_window());
    let rows = personas
        .iter()
        .map(|&p| {
            let bids = ix.pooled_bids(p, &ix.obs.post_window(), &slots);
            (
                p.name(),
                median(&bids).unwrap_or(0.0),
                mean(&bids).unwrap_or(0.0),
            )
        })
        .collect();
    Table5 {
        rows,
        common_slots: ix.slot_count(&slots),
    }
}

impl Table5 {
    /// Median/mean for a persona by name.
    pub fn get(&self, persona: &str) -> Option<(f64, f64)> {
        self.rows
            .iter()
            .find(|r| r.0 == persona)
            .map(|r| (r.1, r.2))
    }

    /// Stream the paper's layout into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut t = TextTable::new(
            "Table 5: Median and mean bid values (CPM) for interest and vanilla personas",
            &["Persona", "Median", "Mean"],
        );
        for (p, med, avg) in &self.rows {
            t.row().cell(p).cell(f3(*med)).cell(f3(*avg));
        }
        let work = t.render_into(out);
        let _ = writeln!(out, "(common ad slots: {})", self.common_slots);
        work + 1
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// Bootstrap 95% confidence intervals for Table 5's per-persona median CPM
/// (seeded percentile bootstrap, 1000 resamples) — the robustness companion
/// the paper's point estimates lack.
// analyzer:allow(AS01) -- the bootstrap fans out via exec's order-preserving par_map; results merge in input order, so committed bytes are schedule-independent
pub fn table5_median_cis(ix: &AnalysisIndex) -> Vec<(String, BootstrapCi)> {
    let personas = Persona::echo_personas();
    let slots = ix.common_slots(&personas, &ix.obs.post_window());
    personas
        .iter()
        .filter_map(|&p| {
            let mut sample = ix.pooled_bids(p, &ix.obs.post_window(), &slots);
            // Deterministic thinning keeps the bootstrap tractable on large
            // bid corpora without biasing the median.
            if sample.len() > 4000 {
                let stride = sample.len() / 4000 + 1;
                sample = sample.into_iter().step_by(stride).collect();
            }
            bootstrap_median_ci(&sample, 500, 0.95, ix.obs.seed ^ 0xc1)
                .ok()
                .map(|ci| (p.name(), ci))
        })
        .collect()
}

/// Stream the Table 5 medians with their bootstrap intervals into `out`;
/// returns render work units.
pub fn render_table5_cis_into(cis: &[(String, BootstrapCi)], out: &mut String) -> usize {
    let mut t = TextTable::new(
        "Table 5 medians with bootstrap 95% CIs",
        &["Persona", "Median", "CI low", "CI high"],
    );
    for (p, ci) in cis {
        t.row()
            .cell(p)
            .cell(f3(ci.estimate))
            .cell(f3(ci.lo))
            .cell(f3(ci.hi));
    }
    t.render_into(out)
}

/// Render the Table 5 medians with their bootstrap intervals.
pub fn render_table5_cis(cis: &[(String, BootstrapCi)]) -> String {
    let mut out = String::new();
    render_table5_cis_into(cis, &mut out);
    out
}

/// Table 6: mean CPM in the crawls closest to the interaction boundary —
/// last three pre-interaction vs first three post-interaction iterations —
/// ruling out the holiday season as the explanation for elevated bids.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// (persona, mean without interaction, mean with interaction).
    pub rows: Vec<(String, f64, f64)>,
}

/// Compute Table 6.
pub fn table6(ix: &AnalysisIndex) -> Table6 {
    let obs = ix.obs;
    let personas = Persona::echo_personas();
    let pre_tail = obs.pre_iterations.saturating_sub(3)..obs.pre_iterations;
    let post_head =
        obs.pre_iterations..(obs.pre_iterations + 3).min(obs.pre_iterations + obs.post_iterations);
    let slots_pre = ix.common_slots(&personas, &pre_tail);
    let slots_post = ix.common_slots(&personas, &post_head);
    let rows = personas
        .iter()
        .map(|&p| {
            let pre = ix.pooled_bids(p, &pre_tail, &slots_pre);
            let post = ix.pooled_bids(p, &post_head, &slots_post);
            (
                p.name(),
                mean(&pre).unwrap_or(0.0),
                mean(&post).unwrap_or(0.0),
            )
        })
        .collect();
    Table6 { rows }
}

impl Table6 {
    /// Means for a persona by name: (no interaction, interaction).
    pub fn get(&self, persona: &str) -> Option<(f64, f64)> {
        self.rows
            .iter()
            .find(|r| r.0 == persona)
            .map(|r| (r.1, r.2))
    }

    /// Stream the paper's layout into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut t = TextTable::new(
            "Table 6: Mean bid values without and with interaction (holiday-adjacent crawls)",
            &["Persona", "No Interaction", "Interaction"],
        );
        for (p, pre, post) in &self.rows {
            t.row().cell(p).cell(f3(*pre)).cell(f3(*post));
        }
        t.render_into(out)
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// Figure 3: per-persona CPM distributions without (a) and with (b)
/// interaction, as box-plot five-number summaries.
#[derive(Debug, Clone)]
pub struct Figure3 {
    /// Panel (a): pre-interaction summaries per persona.
    pub without_interaction: Vec<(String, Summary)>,
    /// Panel (b): post-interaction summaries per persona.
    pub with_interaction: Vec<(String, Summary)>,
}

/// Compute Figure 3's series.
pub fn figure3(ix: &AnalysisIndex) -> Figure3 {
    let personas = Persona::echo_personas();
    let mut fig = Figure3 {
        without_interaction: Vec::new(),
        with_interaction: Vec::new(),
    };
    for (window, out) in [
        (ix.obs.pre_window(), &mut fig.without_interaction),
        (ix.obs.post_window(), &mut fig.with_interaction),
    ] {
        let slots = ix.common_slots(&personas, &window);
        for &p in &personas {
            let bids = ix.pooled_bids(p, &window, &slots);
            if let Some(s) = five_number_summary(&bids) {
                out.push((p.name(), s));
            }
        }
    }
    fig
}

/// Append one five-number-summary row per series entry.
fn summary_rows(t: &mut TextTable, series: &[(String, Summary)]) {
    for (p, s) in series {
        t.row()
            .cell(p)
            .cell(f3(s.min))
            .cell(f3(s.q1))
            .cell(f3(s.median))
            .cell(f3(s.q3))
            .cell(f3(s.max))
            .cell(f3(s.mean));
    }
}

impl Figure3 {
    /// Stream both panels into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut work = 0;
        for (title, series) in [
            (
                "Figure 3a: Bidding behavior without user interaction",
                &self.without_interaction,
            ),
            (
                "Figure 3b: Bidding behavior with user interaction",
                &self.with_interaction,
            ),
        ] {
            let mut t = TextTable::new(
                title,
                &["Persona", "Min", "Q1", "Median", "Q3", "Max", "Mean"],
            );
            summary_rows(&mut t, series);
            work += t.render_into(out);
            out.push('\n');
        }
        work
    }

    /// Render both panels.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// Figure 7: CPM across vanilla, Echo interest and web interest personas on
/// common slots (post window).
#[derive(Debug, Clone)]
pub struct Figure7 {
    /// Per-persona five-number summaries, vanilla first, then Echo interest,
    /// then the web personas.
    pub series: Vec<(String, Summary)>,
}

/// Compute Figure 7's series.
pub fn figure7(ix: &AnalysisIndex) -> Figure7 {
    let personas = Persona::all();
    let slots = ix.common_slots(&personas, &ix.obs.post_window());
    let mut ordered = vec![Persona::Vanilla];
    ordered.extend(
        Persona::echo_personas()
            .into_iter()
            .filter(|p| *p != Persona::Vanilla),
    );
    ordered.extend(Persona::web_personas());
    let series = ordered
        .into_iter()
        .filter_map(|p| {
            let bids = ix.pooled_bids(p, &ix.obs.post_window(), &slots);
            five_number_summary(&bids).map(|s| (p.name(), s))
        })
        .collect();
    Figure7 { series }
}

impl Figure7 {
    /// Stream the figure series into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut t = TextTable::new(
            "Figure 7: CPM across vanilla, Echo interest, and web interest personas",
            &["Persona", "Min", "Q1", "Median", "Q3", "Max", "Mean"],
        );
        summary_rows(&mut t, &self.series);
        t.render_into(out)
    }

    /// Render the figure series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::test_support::{ix, obs};

    #[test]
    fn common_slots_nonempty() {
        let i = ix();
        let slots = i.common_slots(&Persona::echo_personas(), &i.obs.post_window());
        assert!(i.slot_count(&slots) > 0);
    }

    #[test]
    fn common_slots_match_naive_intersection() {
        // The dense mask must agree with the naive per-persona string-set
        // intersection over the raw crawl.
        let i = ix();
        let o = obs();
        let personas = Persona::echo_personas();
        let window = o.post_window();
        let mut naive: Option<std::collections::BTreeSet<String>> = None;
        for p in &personas {
            let slots: std::collections::BTreeSet<String> = o
                .visits_in(*p, window.clone())
                .iter()
                .flat_map(|v| v.bids.iter().map(|b| b.slot_id.to_string()))
                .collect();
            naive = Some(match naive {
                None => slots,
                Some(acc) => acc.intersection(&slots).cloned().collect(),
            });
        }
        let naive = naive.unwrap_or_default();
        let mask = i.common_slots(&personas, &window);
        let from_mask: std::collections::BTreeSet<String> = mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(s, _)| i.str_of(i.slots[s]).to_string())
            .collect();
        assert_eq!(naive, from_mask);
    }

    #[test]
    fn pooled_bids_match_naive_scan() {
        let i = ix();
        let o = obs();
        let personas = Persona::echo_personas();
        let window = o.post_window();
        let mask = i.common_slots(&personas, &window);
        let in_mask: std::collections::BTreeSet<&str> = mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(s, _)| i.str_of(i.slots[s]))
            .collect();
        for &p in &personas {
            let naive: Vec<f64> = o
                .visits_in(p, window.clone())
                .iter()
                .flat_map(|v| v.bids.iter())
                .filter(|b| in_mask.contains(&*b.slot_id))
                .map(|b| b.cpm)
                .collect();
            // Bit-exact (order included): the bootstrap resamples by index.
            assert_eq!(naive, i.pooled_bids(p, &window, &mask), "{p}");
        }
    }

    #[test]
    fn interest_personas_outbid_vanilla_with_interaction() {
        let t5 = table5(ix());
        let (van_med, _) = t5.get("Vanilla").unwrap();
        let mut higher = 0;
        for cat in alexa_platform::SkillCategory::ALL {
            let (med, _) = t5.get(cat.label()).unwrap();
            if med > van_med {
                higher += 1;
            }
        }
        assert!(
            higher >= 8,
            "only {higher}/9 interest personas above vanilla"
        );
    }

    #[test]
    fn no_discernible_difference_before_interaction() {
        let f3 = figure3(ix());
        let medians: Vec<f64> = f3
            .without_interaction
            .iter()
            .map(|(_, s)| s.median)
            .collect();
        let vanilla = f3
            .without_interaction
            .iter()
            .find(|(p, _)| p == "Vanilla")
            .map(|(_, s)| s.median)
            .unwrap();
        // Pre-interaction, every persona's median is within 2× of vanilla.
        for m in &medians {
            assert!(
                *m < vanilla * 2.0 && *m > vanilla / 2.0,
                "median {m} vs vanilla {vanilla}"
            );
        }
    }

    #[test]
    fn post_interaction_difference_is_visible() {
        let fig = figure3(ix());
        let get = |series: &[(String, Summary)], name: &str| {
            series
                .iter()
                .find(|(p, _)| p == name)
                .map(|(_, s)| s.median)
                .unwrap()
        };
        let vanilla = get(&fig.with_interaction, "Vanilla");
        let pets = get(&fig.with_interaction, "Pets & Animals");
        assert!(pets > vanilla * 2.0, "pets {pets} vanilla {vanilla}");
    }

    #[test]
    fn holiday_control_shape() {
        // Table 6: without interaction (peak season) the vanilla persona's
        // mean is comparable to interest personas; with interaction the
        // interest personas keep elevated bids while vanilla falls.
        let t6 = table6(ix());
        let (van_pre, van_post) = t6.get("Vanilla").unwrap();
        assert!(van_pre > van_post, "vanilla pre {van_pre} post {van_post}");
        let (pets_pre, pets_post) = t6.get("Pets & Animals").unwrap();
        assert!(
            pets_post > van_post,
            "pets post {pets_post} vanilla post {van_post}"
        );
        let _ = pets_pre;
    }

    #[test]
    fn echo_and_web_personas_look_alike() {
        let f7 = figure7(ix());
        let get = |name: &str| {
            f7.series
                .iter()
                .find(|(p, _)| p == name)
                .map(|(_, s)| s.median)
                .unwrap()
        };
        let web = get("Web Health");
        let echo = get("Dating");
        let ratio = echo / web;
        assert!((0.4..2.5).contains(&ratio), "echo/web median ratio {ratio}");
    }

    #[test]
    fn renders_contain_all_personas() {
        let t5 = table5(ix());
        let s = t5.render();
        assert!(s.contains("Vanilla"));
        assert!(s.contains("Fashion & Style"));
    }

    #[test]
    fn bootstrap_cis_separate_strong_personas_from_vanilla() {
        let cis = table5_median_cis(ix());
        assert_eq!(cis.len(), 10);
        let get = |name: &str| {
            cis.iter()
                .find(|(p, _)| p == name)
                .map(|(_, c)| *c)
                .unwrap()
        };
        let vanilla = get("Vanilla");
        let pets = get("Pets & Animals");
        // The strongest persona's median CI sits entirely above vanilla's.
        assert!(pets.lo > vanilla.hi, "pets {pets:?} vs vanilla {vanilla:?}");
        // Intervals bracket their estimates.
        for (p, ci) in &cis {
            assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi, "{p}");
        }
        let rendered = render_table5_cis(&cis);
        assert!(rendered.contains("CI low"));
    }
}
