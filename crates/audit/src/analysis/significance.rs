//! RQ2 — statistical significance of bid differences (Tables 7 and 11).
//!
//! Table 7 runs a one-sided Mann–Whitney U test per interest persona (H1:
//! the persona's bids are stochastically greater than vanilla's), reporting
//! p and the rank-biserial effect size. Table 11 runs two-sided tests
//! between every Echo interest persona and every web interest persona (H1:
//! they differ) — the paper's finding is that they mostly do *not*.
//!
//! The sample is the per-slot mean CPM over common slots (see
//! [`crate::analysis::bids::slot_means`]): slot-to-slot heterogeneity is the
//! natural variance against which the targeting uplift is tested.

use crate::analysis::bids::{common_slots, slot_means};
use crate::index::AnalysisIndex;
use crate::persona::Persona;
use crate::table::{f3, TextTable};
use alexa_platform::SkillCategory;
use alexa_stats::{
    benjamini_hochberg, holm_bonferroni, mann_whitney_u, Alternative, EffectMagnitude, MwuMethod,
};
use std::fmt::Write as _;

/// Minimum per-group sample size below which a significance test refuses to
/// run. Under heavy injected faults the common-slot sample can collapse; a
/// U test on a handful of slots would report noise as evidence, so the
/// tables record the refusal instead.
pub const MIN_SAMPLES: usize = 5;

/// Multiple-testing correction to apply over a table's p-value family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Correction {
    /// Family-wise error control (step-down).
    HolmBonferroni,
    /// False-discovery-rate control (step-up).
    BenjaminiHochberg,
}

/// Table 7: interest personas vs vanilla.
#[derive(Debug, Clone)]
pub struct Table7 {
    /// (persona, p-value, effect size, magnitude band).
    pub rows: Vec<(String, f64, f64, EffectMagnitude)>,
    /// Personas whose test refused to run: (persona, smaller group size).
    pub skipped: Vec<(String, usize)>,
    /// Significance threshold used (paper: 0.05).
    pub alpha: f64,
}

/// Compute Table 7.
// analyzer:allow(AS01) -- mann_whitney_u's wall time feeds volatile duration aggregates only; obsdiff excludes durations from committed bytes
pub fn table7(ix: &AnalysisIndex) -> Table7 {
    let personas = Persona::echo_personas();
    let window = ix.obs.post_window();
    let slots = common_slots(ix, &personas, window.clone());
    let vanilla = slot_means(ix, Persona::Vanilla, window.clone(), &slots);
    let mut rows = Vec::new();
    let mut skipped = Vec::new();
    for &cat in SkillCategory::ALL.iter() {
        let treated = slot_means(ix, Persona::Interest(cat), window.clone(), &slots);
        let n = treated.len().min(vanilla.len());
        if n < MIN_SAMPLES {
            skipped.push((cat.label().to_string(), n));
            continue;
        }
        // MIN_SAMPLES guards the happy path; a refused test still lands in
        // the skipped rows instead of unwinding the whole table.
        let Ok(r) = mann_whitney_u(
            &treated,
            &vanilla,
            Alternative::Greater,
            MwuMethod::Asymptotic,
        ) else {
            skipped.push((cat.label().to_string(), n));
            continue;
        };
        rows.push((
            cat.label().to_string(),
            r.p_value,
            r.effect_size,
            EffectMagnitude::classify(r.effect_size),
        ));
    }
    Table7 {
        rows,
        skipped,
        alpha: 0.05,
    }
}

impl Table7 {
    /// Personas with p below the threshold.
    pub fn significant(&self) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|r| r.1 < self.alpha)
            .map(|r| r.0.as_str())
            .collect()
    }

    /// Row lookup by persona name: (p, effect size).
    pub fn get(&self, persona: &str) -> Option<(f64, f64)> {
        self.rows
            .iter()
            .find(|r| r.0 == persona)
            .map(|r| (r.1, r.2))
    }

    /// Personas still significant after correcting over the nine
    /// simultaneous tests (the paper reports raw p-values; the strong-six
    /// finding should survive correction).
    pub fn significant_corrected(&self, correction: Correction) -> Vec<&str> {
        let raw: Vec<f64> = self.rows.iter().map(|r| r.1).collect();
        let adjusted = match correction {
            Correction::HolmBonferroni => holm_bonferroni(&raw),
            Correction::BenjaminiHochberg => benjamini_hochberg(&raw),
        };
        self.rows
            .iter()
            .zip(adjusted)
            .filter(|(_, p)| *p < self.alpha)
            .map(|(r, _)| r.0.as_str())
            .collect()
    }

    /// Stream the paper's layout into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut t = TextTable::new(
            "Table 7: Statistical significance between vanilla (control) and interest personas",
            &["Persona", "p-value", "Effect size", "Magnitude"],
        );
        for (p, pv, es, mag) in &self.rows {
            t.row().cell(p).cell(f3(*pv)).cell(f3(*es)).cell(mag);
        }
        let mut work = t.render_into(out);
        for (persona, n) in &self.skipped {
            let _ = writeln!(
                out,
                "  {persona}: test refused — insufficient samples (n={n} < {MIN_SAMPLES})"
            );
            work += 1;
        }
        work
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// Table 11: Echo interest personas vs web interest personas (two-sided).
#[derive(Debug, Clone)]
pub struct Table11 {
    /// Rows: (echo persona, p vs Web Health, p vs Web Science,
    /// p vs Web Computers).
    pub rows: Vec<(String, f64, f64, f64)>,
    /// Personas whose tests refused to run: (persona, smallest group size).
    pub skipped: Vec<(String, usize)>,
    /// Significance threshold used.
    pub alpha: f64,
}

/// Compute Table 11.
// analyzer:allow(AS01) -- mann_whitney_u's wall time feeds volatile duration aggregates only; obsdiff excludes durations from committed bytes
pub fn table11(ix: &AnalysisIndex) -> Table11 {
    let everyone = Persona::all();
    let window = ix.obs.post_window();
    let slots = common_slots(ix, &everyone, window.clone());
    let web: Vec<Vec<f64>> = Persona::web_personas()
        .iter()
        .map(|&p| slot_means(ix, p, window.clone(), &slots))
        .collect();
    let web_min = web.iter().map(Vec::len).min().unwrap_or(0);
    let mut rows = Vec::new();
    let mut skipped = Vec::new();
    for &cat in SkillCategory::ALL.iter() {
        let echo = slot_means(ix, Persona::Interest(cat), window.clone(), &slots);
        let n = echo.len().min(web_min);
        if n < MIN_SAMPLES {
            skipped.push((cat.label().to_string(), n));
            continue;
        }
        let ps: Vec<f64> = web
            .iter()
            .filter_map(|w| {
                mann_whitney_u(&echo, w, Alternative::TwoSided, MwuMethod::Asymptotic)
                    .ok()
                    .map(|r| r.p_value)
            })
            .collect();
        let [h, s, c] = ps[..] else {
            // One of the three tests refused (empty web sample past the
            // MIN_SAMPLES guard) — record the persona as skipped.
            skipped.push((cat.label().to_string(), n));
            continue;
        };
        rows.push((cat.label().to_string(), h, s, c));
    }
    Table11 {
        rows,
        skipped,
        alpha: 0.05,
    }
}

impl Table11 {
    /// Number of (echo, web) pairs whose distributions differ significantly.
    pub fn significant_pairs(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|r| [r.1, r.2, r.3])
            .filter(|p| *p < self.alpha)
            .count()
    }

    /// Significant pairs after a family-wise/FDR correction over all 27
    /// simultaneous tests — the paper reports raw p-values; this is the
    /// robustness check.
    pub fn significant_pairs_corrected(&self, correction: Correction) -> usize {
        let raw: Vec<f64> = self.rows.iter().flat_map(|r| [r.1, r.2, r.3]).collect();
        let adjusted = match correction {
            Correction::HolmBonferroni => holm_bonferroni(&raw),
            Correction::BenjaminiHochberg => benjamini_hochberg(&raw),
        };
        adjusted.iter().filter(|p| **p < self.alpha).count()
    }

    /// Stream the paper's layout into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut t = TextTable::new(
            "Table 11: Echo interest vs web interest personas (two-sided Mann-Whitney U)",
            &["Persona", "Health", "Science", "Computers"],
        );
        for (p, h, s, c) in &self.rows {
            t.row().cell(p).cell(f3(*h)).cell(f3(*s)).cell(f3(*c));
        }
        let mut work = t.render_into(out);
        for (persona, n) in &self.skipped {
            let _ = writeln!(
                out,
                "  {persona}: tests refused — insufficient samples (n={n} < {MIN_SAMPLES})"
            );
            work += 1;
        }
        work
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::test_support::ix;
    use crate::observations::Observations;

    #[test]
    fn table7_has_nine_rows_with_valid_stats() {
        let t7 = table7(ix());
        assert_eq!(t7.rows.len(), 9);
        for (p, pv, es, _) in &t7.rows {
            assert!((0.0..=1.0).contains(pv), "{p}: p {pv}");
            assert!((-1.0..=1.0).contains(es), "{p}: r {es}");
        }
    }

    #[test]
    fn strong_categories_are_significant() {
        // Even at the reduced test scale, the strongest uplift categories
        // must separate from vanilla.
        let t7 = table7(ix());
        let sig = t7.significant();
        assert!(sig.contains(&"Pets & Animals"), "significant: {sig:?}");
    }

    #[test]
    fn effect_sizes_positive_for_interest_personas() {
        let t7 = table7(ix());
        let positive = t7.rows.iter().filter(|r| r.2 > 0.0).count();
        assert!(positive >= 8, "{positive}/9 positive effects");
    }

    #[test]
    fn echo_vs_web_mostly_indistinguishable() {
        let t11 = table11(ix());
        assert_eq!(t11.rows.len(), 9);
        // The paper finds 1 of 27 pairs significant; allow a small count.
        assert!(
            t11.significant_pairs() <= 8,
            "pairs: {}",
            t11.significant_pairs()
        );
    }

    #[test]
    fn corrections_only_shrink_the_significant_set() {
        let t7 = table7(ix());
        let raw = t7.significant().len();
        let holm = t7.significant_corrected(Correction::HolmBonferroni).len();
        let bh = t7
            .significant_corrected(Correction::BenjaminiHochberg)
            .len();
        assert!(holm <= bh, "holm {holm} > bh {bh}");
        assert!(bh <= raw, "bh {bh} > raw {raw}");

        let t11 = table11(ix());
        assert!(
            t11.significant_pairs_corrected(Correction::HolmBonferroni) <= t11.significant_pairs()
        );
    }

    #[test]
    fn strong_findings_survive_correction() {
        // The core Table 7 result must not be a multiple-testing artifact.
        let t7 = table7(ix());
        let surviving = t7.significant_corrected(Correction::HolmBonferroni);
        assert!(
            surviving.contains(&"Pets & Animals"),
            "strongest persona lost to correction: {surviving:?}"
        );
    }

    #[test]
    fn renders() {
        assert!(table7(ix()).render().contains("p-value"));
        assert!(table11(ix()).render().contains("Computers"));
    }

    #[test]
    fn tests_refuse_below_minimum_samples() {
        // An empty observation set has no common slots at all; every test
        // must refuse (and say so) instead of running on noise or panicking.
        let empty = Observations::default();
        let empty_ix = AnalysisIndex::build(&empty);
        let t7 = table7(&empty_ix);
        assert!(t7.rows.is_empty());
        assert_eq!(t7.skipped.len(), 9);
        assert!(t7.significant().is_empty());
        assert!(t7.render().contains("insufficient samples"));
        let t11 = table11(&empty_ix);
        assert!(t11.rows.is_empty());
        assert_eq!(t11.significant_pairs(), 0);
        assert!(t11.render().contains("insufficient samples"));
    }
}
