//! RQ2 — audio-ad analysis (Table 9 and Figure 5, §5.4).
//!
//! From the recorded transcripts (the only observable), the extractor
//! recovers the advertised brands per (persona, service). Table 9 reports
//! the fraction of each service's ads that went to each persona; Figure 5
//! reports the per-brand distribution, restricted — like the paper — to
//! brands heard at least twice (repetition signals advertiser interest).
//!
//! The extraction pass runs once per run inside [`AnalysisIndex::build`];
//! both artifacts here read the cached `(persona, service) → brands` map.

use crate::index::AnalysisIndex;
use crate::observations::Observations;
use crate::table::{pct, TextTable};
use alexa_adtech::{AudioAdExtractor, StreamingService};
use std::collections::BTreeMap;

/// The three audio personas in experiment order.
pub const AUDIO_PERSONAS: [&str; 3] = ["Connected Car", "Fashion & Style", "Vanilla"];

/// Extracted ads per (persona, service) — the naive per-call extraction,
/// kept as the reference the index cache is tested against.
pub fn extracted_ads(obs: &Observations) -> BTreeMap<(String, StreamingService), Vec<String>> {
    let extractor = AudioAdExtractor::new();
    obs.audio
        .iter()
        .map(|((persona, service), transcripts)| {
            ((persona.clone(), *service), extractor.extract(transcripts))
        })
        .collect()
}

/// Table 9: fraction of each service's ads per persona.
#[derive(Debug, Clone)]
pub struct Table9 {
    /// fractions[persona][service] = share of that service's ads.
    pub fractions: BTreeMap<String, BTreeMap<StreamingService, f64>>,
    /// Total number of extracted ads (the paper's n = 289).
    pub total_ads: usize,
}

/// Compute Table 9 from the index's cached audio-ad extraction.
pub fn table9(ix: &AnalysisIndex) -> Table9 {
    let ads = &ix.audio_ads;
    let mut per_service_total: BTreeMap<StreamingService, usize> = BTreeMap::new();
    for ((_, service), list) in ads {
        *per_service_total.entry(*service).or_insert(0) += list.len();
    }
    let total_ads = per_service_total.values().sum();
    let mut shares: BTreeMap<&str, BTreeMap<StreamingService, f64>> = BTreeMap::new();
    for ((persona, service), list) in ads {
        let denom = *per_service_total.get(service).unwrap_or(&0);
        let share = if denom == 0 {
            0.0
        } else {
            list.len() as f64 / denom as f64
        };
        shares
            .entry(persona.as_str())
            .or_default()
            .insert(*service, share);
    }
    let fractions = shares
        .into_iter()
        .map(|(persona, per)| (persona.to_string(), per))
        .collect();
    Table9 {
        fractions,
        total_ads,
    }
}

impl Table9 {
    /// Share of a service's ads a persona received.
    pub fn share(&self, persona: &str, service: StreamingService) -> f64 {
        self.fractions
            .get(persona)
            .and_then(|m| m.get(&service))
            .copied()
            .unwrap_or(0.0)
    }

    /// Stream the paper's layout into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut t = TextTable::new(
            &format!(
                "Table 9: Fraction of audio ads (n={}) per service per persona",
                self.total_ads
            ),
            &["Persona", "Amazon", "Spotify", "Pandora"],
        );
        for persona in AUDIO_PERSONAS {
            t.row()
                .cell(persona)
                .cell(pct(self.share(persona, StreamingService::AmazonMusic)))
                .cell(pct(self.share(persona, StreamingService::Spotify)))
                .cell(pct(self.share(persona, StreamingService::Pandora)));
        }
        t.render_into(out)
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// Figure 5: brand distribution per service and persona (brands heard ≥ 2
/// times, like the paper's repetition filter).
#[derive(Debug, Clone)]
pub struct Figure5 {
    /// counts[service][brand][persona] = times heard.
    pub counts: BTreeMap<StreamingService, BTreeMap<String, BTreeMap<String, usize>>>,
}

/// Compute Figure 5's series from the index's cached extraction.
pub fn figure5(ix: &AnalysisIndex) -> Figure5 {
    let mut counts: BTreeMap<StreamingService, BTreeMap<&str, BTreeMap<&str, usize>>> =
        BTreeMap::new();
    for ((persona, service), list) in &ix.audio_ads {
        for brand in list {
            *counts
                .entry(*service)
                .or_default()
                .entry(brand.as_str())
                .or_default()
                .entry(persona.as_str())
                .or_insert(0) += 1;
        }
    }
    // Repetition filter: drop brands with fewer than 2 total plays.
    for brands in counts.values_mut() {
        brands.retain(|_, per_persona| per_persona.values().sum::<usize>() >= 2);
    }
    let counts = counts
        .into_iter()
        .map(|(service, brands)| {
            let owned = brands
                .into_iter()
                .map(|(brand, per)| {
                    let per = per
                        .into_iter()
                        .map(|(persona, n)| (persona.to_string(), n))
                        .collect();
                    (brand.to_string(), per)
                })
                .collect();
            (service, owned)
        })
        .collect();
    Figure5 { counts }
}

impl Figure5 {
    /// Brands exclusive to one persona on a service.
    pub fn exclusive_brands(&self, service: StreamingService, persona: &str) -> Vec<&str> {
        self.counts
            .get(&service)
            .map(|brands| {
                brands
                    .iter()
                    .filter(|(_, per)| per.len() == 1 && per.contains_key(persona))
                    .map(|(b, _)| b.as_str())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Stream the per-service brand tables into `out`; returns render work
    /// units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut work = 0;
        for (service, brands) in &self.counts {
            let mut t = TextTable::new(
                &format!("Figure 5: Audio ads on {service}"),
                &["Brand", "Connected Car", "Fashion & Style", "Vanilla"],
            );
            for (brand, per) in brands {
                t.row()
                    .cell(brand)
                    .cell(per.get("Connected Car").copied().unwrap_or(0))
                    .cell(per.get("Fashion & Style").copied().unwrap_or(0))
                    .cell(per.get("Vanilla").copied().unwrap_or(0));
            }
            work += t.render_into(out);
            out.push('\n');
        }
        work
    }

    /// Render the per-service brand tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::test_support::{ix, obs};

    #[test]
    fn cached_extraction_matches_naive_rescan() {
        assert_eq!(ix().audio_ads, extracted_ads(obs()));
    }

    #[test]
    fn table9_fractions_sum_to_one_per_service() {
        let t9 = table9(ix());
        for service in StreamingService::ALL {
            let sum: f64 = AUDIO_PERSONAS.iter().map(|p| t9.share(p, service)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{service}: {sum}");
        }
    }

    #[test]
    fn spotify_starves_connected_car() {
        let t9 = table9(ix());
        let cc = t9.share("Connected Car", StreamingService::Spotify);
        let fs = t9.share("Fashion & Style", StreamingService::Spotify);
        assert!(cc < fs / 2.0, "cc {cc} fs {fs}");
    }

    #[test]
    fn fashion_has_exclusive_brands_on_pandora() {
        // Swiffer Wet Jet is planted Fashion-exclusive; at 1-hour test
        // sessions it may fall below the repetition filter, so check the
        // exclusivity property over whatever survives.
        let f5 = figure5(ix());
        for (service, brands) in &f5.counts {
            for (brand, per) in brands {
                if brand == "Swiffer Wet Jet" || brand == "Ashley" || brand == "Ross" {
                    assert_eq!(
                        per.keys().collect::<Vec<_>>(),
                        vec!["Fashion & Style"],
                        "{service} {brand}"
                    );
                }
                if brand == "Febreeze Car" {
                    assert_eq!(per.keys().collect::<Vec<_>>(), vec!["Connected Car"]);
                }
            }
        }
    }

    #[test]
    fn repetition_filter_applies() {
        let f5 = figure5(ix());
        for brands in f5.counts.values() {
            for per in brands.values() {
                assert!(per.values().sum::<usize>() >= 2);
            }
        }
    }

    #[test]
    fn renders() {
        assert!(table9(ix()).render().contains("Pandora"));
        let _ = figure5(ix()).render();
    }
}
