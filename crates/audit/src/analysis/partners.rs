//! RQ2 — cookie syncing and partner-bid analysis (§5.5, Table 10, Figure 6).
//!
//! From the crawl traffic's sync redirects, the analysis recovers which
//! advertisers sync their cookies with Amazon (the paper: **41**, one-way)
//! and how far partners propagate identifiers downstream (**247** further
//! third parties). It then splits the common-slot bids into partner vs
//! non-partner bidders (Table 10) and summarizes the partner-bid
//! distributions (Figure 6).
//!
//! The sync graph is recovered once per run by the [`AnalysisIndex`], which
//! also pre-resolves each bid's partner flag — the bid splits here are pure
//! scans of the dense bid table.

use crate::index::AnalysisIndex;
use crate::observations::Observations;
use crate::persona::Persona;
use crate::table::{f3, TextTable};
use alexa_stats::{five_number_summary, mean, median, Summary};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Amazon's advertising endpoint observed in sync redirects.
pub const AMAZON_AD_ENDPOINT: &str = "amazon-adsystem.com";

/// Recovered cookie-sync structure.
#[derive(Debug, Clone)]
pub struct SyncAnalysis {
    /// Advertisers observed pushing their cookie to Amazon.
    pub amazon_partners: BTreeSet<String>,
    /// Whether Amazon was ever observed pushing its own identifier out.
    pub amazon_syncs_out: bool,
    /// Third parties that received identifiers from Amazon's partners.
    pub downstream_parties: BTreeSet<String>,
}

/// The sync graph recovered from the crawl traffic of all personas
/// (computed once, by [`AnalysisIndex::build`]).
pub fn sync_analysis<'a>(ix: &'a AnalysisIndex) -> &'a SyncAnalysis {
    &ix.sync
}

impl SyncAnalysis {
    /// Stream the headline sync findings into `out`; returns render work
    /// units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let _ = writeln!(
            out,
            "Cookie syncing (§5.5): {} advertisers sync their cookies with Amazon \
             (Amazon syncs out: {}); partners sync onward with {} further third parties.",
            self.amazon_partners.len(),
            if self.amazon_syncs_out { "YES" } else { "no" },
            self.downstream_parties.len(),
        );
        1
    }

    /// Render the headline sync findings.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// Table 10: median/mean bids from Amazon's partners vs non-partners.
#[derive(Debug, Clone)]
pub struct Table10 {
    /// (persona, partner median, partner mean, non-partner median,
    /// non-partner mean).
    pub rows: Vec<(String, f64, f64, f64, f64)>,
}

/// Compute Table 10 on the post window's common slots.
pub fn table10(ix: &AnalysisIndex) -> Table10 {
    let personas = Persona::echo_personas();
    let window = ix.obs.post_window();
    let slots = ix.common_slots(&personas, &window);
    let rows = personas
        .iter()
        .map(|&p| {
            let mut partner_bids = Vec::new();
            let mut other_bids = Vec::new();
            if let Some(pb) = ix.bids_of(p) {
                for b in &pb.bids {
                    if !window.contains(&(b.iteration as usize)) || !slots[b.slot as usize] {
                        continue;
                    }
                    if b.partner {
                        partner_bids.push(b.cpm);
                    } else {
                        other_bids.push(b.cpm);
                    }
                }
            }
            (
                p.name(),
                median(&partner_bids).unwrap_or(0.0),
                mean(&partner_bids).unwrap_or(0.0),
                median(&other_bids).unwrap_or(0.0),
                mean(&other_bids).unwrap_or(0.0),
            )
        })
        .collect();
    Table10 { rows }
}

impl Table10 {
    /// Lookup by persona: (partner median, partner mean, non-partner median,
    /// non-partner mean).
    pub fn get(&self, persona: &str) -> Option<(f64, f64, f64, f64)> {
        self.rows
            .iter()
            .find(|r| r.0 == persona)
            .map(|r| (r.1, r.2, r.3, r.4))
    }

    /// Stream the paper's layout into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut t = TextTable::new(
            "Table 10: Bid values from Amazon's partner vs non-partner advertisers",
            &[
                "Persona",
                "Partner median",
                "Partner mean",
                "Non-p. median",
                "Non-p. mean",
            ],
        );
        for (p, pm, pa, nm, na) in &self.rows {
            t.row()
                .cell(p)
                .cell(f3(*pm))
                .cell(f3(*pa))
                .cell(f3(*nm))
                .cell(f3(*na));
        }
        t.render_into(out)
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// Figure 6: partner-bid distributions per persona.
#[derive(Debug, Clone)]
pub struct Figure6 {
    /// Per-persona five-number summaries of partner bids.
    pub series: Vec<(String, Summary)>,
}

/// Compute Figure 6.
pub fn figure6(ix: &AnalysisIndex) -> Figure6 {
    let personas = Persona::echo_personas();
    let window = ix.obs.post_window();
    let slots = ix.common_slots(&personas, &window);
    let mut series = Vec::new();
    for &p in &personas {
        let bids: Vec<f64> = ix
            .bids_of(p)
            .map(|pb| {
                pb.bids
                    .iter()
                    .filter(|b| {
                        window.contains(&(b.iteration as usize))
                            && slots[b.slot as usize]
                            && b.partner
                    })
                    .map(|b| b.cpm)
                    .collect()
            })
            .unwrap_or_default();
        if let Some(s) = five_number_summary(&bids) {
            series.push((p.name(), s));
        }
    }
    Figure6 { series }
}

impl Figure6 {
    /// Stream the figure series into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut t = TextTable::new(
            "Figure 6: Partner bid values across personas on common ad slots",
            &["Persona", "Min", "Q1", "Median", "Q3", "Max", "Mean"],
        );
        for (p, s) in &self.series {
            t.row()
                .cell(p)
                .cell(f3(s.min))
                .cell(f3(s.q1))
                .cell(f3(s.median))
                .cell(f3(s.q3))
                .cell(f3(s.max))
                .cell(f3(s.mean));
        }
        t.render_into(out)
    }

    /// Render the figure series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// Per-persona count of sync partners observed — the paper notes syncing
/// happens across *all* Echo personas.
pub fn partners_per_persona(obs: &Observations) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for (persona, visits) in &obs.crawl {
        let partners: BTreeSet<&str> = visits
            .iter()
            .flat_map(|v| v.syncs.iter())
            .filter(|s| &*s.to_org == AMAZON_AD_ENDPOINT)
            .map(|s| &*s.from_org)
            .collect();
        out.insert(persona.clone(), partners.len());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::test_support::{ix, obs};

    #[test]
    fn recovers_41_partners() {
        let sa = sync_analysis(ix());
        assert_eq!(sa.amazon_partners.len(), 41);
    }

    #[test]
    fn amazon_never_syncs_out() {
        let sa = sync_analysis(ix());
        assert!(!sa.amazon_syncs_out);
    }

    #[test]
    fn downstream_propagation_recovered() {
        let sa = sync_analysis(ix());
        // 247 planted; the small test run sees most of them.
        assert!(
            sa.downstream_parties.len() > 200,
            "{}",
            sa.downstream_parties.len()
        );
        assert!(sa.downstream_parties.len() <= 247);
    }

    #[test]
    fn partner_flags_match_naive_lookup() {
        // Every dense bid row's pre-resolved partner flag must agree with a
        // naive partner-set lookup over the raw crawl.
        let i = ix();
        let o = obs();
        for (persona, visits) in &o.crawl {
            let pb = i
                .persona_bids
                .iter()
                .find(|pb| i.str_of(pb.persona) == persona)
                .unwrap();
            let naive: Vec<bool> = visits
                .iter()
                .flat_map(|v| v.bids.iter())
                .map(|b| i.sync.amazon_partners.contains(&*b.bidder))
                .collect();
            let dense: Vec<bool> = pb.bids.iter().map(|b| b.partner).collect();
            assert_eq!(naive, dense, "{persona}");
        }
    }

    #[test]
    fn partners_bid_higher_on_interest_personas() {
        let t10 = table10(ix());
        let mut wins = 0;
        for cat in alexa_platform::SkillCategory::ALL {
            if let Some((pm, _, nm, _)) = t10.get(cat.label()) {
                if pm > nm {
                    wins += 1;
                }
            }
        }
        // Paper: partners' medians beat non-partners for most personas.
        assert!(
            wins >= 5,
            "partner median higher for only {wins}/9 personas"
        );
    }

    #[test]
    fn syncing_happens_for_every_echo_persona() {
        let per = partners_per_persona(obs());
        for p in Persona::echo_personas() {
            assert!(per.get(&p.name()).copied().unwrap_or(0) > 30, "{p}");
        }
    }

    #[test]
    fn renders() {
        assert!(sync_analysis(ix()).render().contains("sync"));
        assert!(table10(ix()).render().contains("Partner median"));
        assert!(!figure6(ix()).series.is_empty());
    }
}
