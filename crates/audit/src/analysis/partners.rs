//! RQ2 — cookie syncing and partner-bid analysis (§5.5, Table 10, Figure 6).
//!
//! From the crawl traffic's sync redirects, the analysis recovers which
//! advertisers sync their cookies with Amazon (the paper: **41**, one-way)
//! and how far partners propagate identifiers downstream (**247** further
//! third parties). It then splits the common-slot bids into partner vs
//! non-partner bidders (Table 10) and summarizes the partner-bid
//! distributions (Figure 6).

use crate::analysis::bids::common_slots;
use crate::observations::Observations;
use crate::persona::Persona;
use crate::table::{f3, TextTable};
use alexa_stats::{five_number_summary, mean, median, Summary};
use std::collections::{BTreeMap, BTreeSet};

/// Amazon's advertising endpoint observed in sync redirects.
pub const AMAZON_AD_ENDPOINT: &str = "amazon-adsystem.com";

/// Recovered cookie-sync structure.
#[derive(Debug, Clone)]
pub struct SyncAnalysis {
    /// Advertisers observed pushing their cookie to Amazon.
    pub amazon_partners: BTreeSet<String>,
    /// Whether Amazon was ever observed pushing its own identifier out.
    pub amazon_syncs_out: bool,
    /// Third parties that received identifiers from Amazon's partners.
    pub downstream_parties: BTreeSet<String>,
}

/// Recover the sync graph from the crawl traffic of all personas.
pub fn sync_analysis(obs: &Observations) -> SyncAnalysis {
    let mut partners = BTreeSet::new();
    let mut downstream = BTreeSet::new();
    let mut amazon_out = false;
    for visits in obs.crawl.values() {
        for v in visits {
            for s in &v.syncs {
                if s.from_org == AMAZON_AD_ENDPOINT {
                    amazon_out = true;
                }
                if s.to_org == AMAZON_AD_ENDPOINT {
                    partners.insert(s.from_org.clone());
                }
            }
        }
    }
    for visits in obs.crawl.values() {
        for v in visits {
            for s in &v.syncs {
                if partners.contains(&s.from_org) && s.to_org != AMAZON_AD_ENDPOINT {
                    downstream.insert(s.to_org.clone());
                }
            }
        }
    }
    SyncAnalysis {
        amazon_partners: partners,
        amazon_syncs_out: amazon_out,
        downstream_parties: downstream,
    }
}

impl SyncAnalysis {
    /// Render the headline sync findings.
    pub fn render(&self) -> String {
        format!(
            "Cookie syncing (§5.5): {} advertisers sync their cookies with Amazon \
             (Amazon syncs out: {}); partners sync onward with {} further third parties.\n",
            self.amazon_partners.len(),
            if self.amazon_syncs_out { "YES" } else { "no" },
            self.downstream_parties.len(),
        )
    }
}

/// Table 10: median/mean bids from Amazon's partners vs non-partners.
#[derive(Debug, Clone)]
pub struct Table10 {
    /// (persona, partner median, partner mean, non-partner median,
    /// non-partner mean).
    pub rows: Vec<(String, f64, f64, f64, f64)>,
}

/// Compute Table 10 on the post window's common slots.
pub fn table10(obs: &Observations) -> Table10 {
    let partners = sync_analysis(obs).amazon_partners;
    let personas = Persona::echo_personas();
    let slots = common_slots(obs, &personas, obs.post_window());
    let rows = personas
        .iter()
        .map(|&p| {
            let mut partner_bids = Vec::new();
            let mut other_bids = Vec::new();
            for v in obs.visits_in(p, obs.post_window()) {
                for b in &v.bids {
                    if !slots.contains(&b.slot_id) {
                        continue;
                    }
                    if partners.contains(&b.bidder) {
                        partner_bids.push(b.cpm);
                    } else {
                        other_bids.push(b.cpm);
                    }
                }
            }
            (
                p.name(),
                median(&partner_bids).unwrap_or(0.0),
                mean(&partner_bids).unwrap_or(0.0),
                median(&other_bids).unwrap_or(0.0),
                mean(&other_bids).unwrap_or(0.0),
            )
        })
        .collect();
    Table10 { rows }
}

impl Table10 {
    /// Lookup by persona: (partner median, partner mean, non-partner median,
    /// non-partner mean).
    pub fn get(&self, persona: &str) -> Option<(f64, f64, f64, f64)> {
        self.rows
            .iter()
            .find(|r| r.0 == persona)
            .map(|r| (r.1, r.2, r.3, r.4))
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Table 10: Bid values from Amazon's partner vs non-partner advertisers",
            &[
                "Persona",
                "Partner median",
                "Partner mean",
                "Non-p. median",
                "Non-p. mean",
            ],
        );
        for (p, pm, pa, nm, na) in &self.rows {
            t.row(vec![p.clone(), f3(*pm), f3(*pa), f3(*nm), f3(*na)]);
        }
        t.render()
    }
}

/// Figure 6: partner-bid distributions per persona.
#[derive(Debug, Clone)]
pub struct Figure6 {
    /// Per-persona five-number summaries of partner bids.
    pub series: Vec<(String, Summary)>,
}

/// Compute Figure 6.
pub fn figure6(obs: &Observations) -> Figure6 {
    let partners = sync_analysis(obs).amazon_partners;
    let personas = Persona::echo_personas();
    let slots = common_slots(obs, &personas, obs.post_window());
    let mut series = Vec::new();
    for &p in &personas {
        let bids: Vec<f64> = obs
            .visits_in(p, obs.post_window())
            .iter()
            .flat_map(|v| v.bids.iter())
            .filter(|b| slots.contains(&b.slot_id) && partners.contains(&b.bidder))
            .map(|b| b.cpm)
            .collect();
        if let Some(s) = five_number_summary(&bids) {
            series.push((p.name(), s));
        }
    }
    Figure6 { series }
}

impl Figure6 {
    /// Render the figure series.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            "Figure 6: Partner bid values across personas on common ad slots",
            &["Persona", "Min", "Q1", "Median", "Q3", "Max", "Mean"],
        );
        for (p, s) in &self.series {
            t.row(vec![
                p.clone(),
                f3(s.min),
                f3(s.q1),
                f3(s.median),
                f3(s.q3),
                f3(s.max),
                f3(s.mean),
            ]);
        }
        t.render()
    }
}

/// Per-persona count of sync partners observed — the paper notes syncing
/// happens across *all* Echo personas.
pub fn partners_per_persona(obs: &Observations) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for (persona, visits) in &obs.crawl {
        let partners: BTreeSet<&str> = visits
            .iter()
            .flat_map(|v| v.syncs.iter())
            .filter(|s| s.to_org == AMAZON_AD_ENDPOINT)
            .map(|s| s.from_org.as_str())
            .collect();
        out.insert(persona.clone(), partners.len());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::test_support::obs;

    #[test]
    fn recovers_41_partners() {
        let sa = sync_analysis(obs());
        assert_eq!(sa.amazon_partners.len(), 41);
    }

    #[test]
    fn amazon_never_syncs_out() {
        let sa = sync_analysis(obs());
        assert!(!sa.amazon_syncs_out);
    }

    #[test]
    fn downstream_propagation_recovered() {
        let sa = sync_analysis(obs());
        // 247 planted; the small test run sees most of them.
        assert!(
            sa.downstream_parties.len() > 200,
            "{}",
            sa.downstream_parties.len()
        );
        assert!(sa.downstream_parties.len() <= 247);
    }

    #[test]
    fn partners_bid_higher_on_interest_personas() {
        let t10 = table10(obs());
        let mut wins = 0;
        for cat in alexa_platform::SkillCategory::ALL {
            if let Some((pm, _, nm, _)) = t10.get(cat.label()) {
                if pm > nm {
                    wins += 1;
                }
            }
        }
        // Paper: partners' medians beat non-partners for most personas.
        assert!(
            wins >= 5,
            "partner median higher for only {wins}/9 personas"
        );
    }

    #[test]
    fn syncing_happens_for_every_echo_persona() {
        let per = partners_per_persona(obs());
        for p in Persona::echo_personas() {
            assert!(per.get(&p.name()).copied().unwrap_or(0) > 30, "{p}");
        }
    }

    #[test]
    fn renders() {
        assert!(sync_analysis(obs()).render().contains("sync"));
        assert!(table10(obs()).render().contains("Partner median"));
        assert!(!figure6(obs()).series.is_empty());
    }
}
