//! RQ2 — data-profiling analysis via DSAR (Table 12, §6.1).
//!
//! The audit requests each persona's data from Amazon three times (after
//! installation, and twice after interaction) and reads the advertising
//! interests back. Beyond reproducing Table 12's rows, the analysis
//! surfaces the transparency failure the paper emphasizes: on the second
//! post-interaction request, several personas' advertising-interest files
//! are simply **absent** from the export.

use crate::index::AnalysisIndex;
use crate::persona::Persona;
use crate::table::TextTable;
use alexa_platform::DsarPhase;
use std::fmt::Write as _;

/// One Table 12 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterestRow {
    /// Request phase.
    pub phase: DsarPhase,
    /// Persona name.
    pub persona: String,
    /// Inferred advertising interests, as labels.
    pub interests: Vec<String>,
}

/// Table 12 plus the missing-file observations.
#[derive(Debug, Clone)]
pub struct Table12 {
    /// Non-empty inference rows, in phase order.
    pub rows: Vec<InterestRow>,
    /// Personas whose advertising-interest file was absent on the second
    /// post-interaction request.
    pub missing_files: Vec<String>,
}

fn phase_label(phase: DsarPhase) -> &'static str {
    match phase {
        DsarPhase::AfterInstall => "Installation",
        DsarPhase::AfterInteraction1 => "Interaction (1)",
        DsarPhase::AfterInteraction2 => "Interaction (2)",
    }
}

/// Compute Table 12 from the DSAR exports.
pub fn table12(ix: &AnalysisIndex) -> Table12 {
    let obs = ix.obs;
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for phase in [
        DsarPhase::AfterInstall,
        DsarPhase::AfterInteraction1,
        DsarPhase::AfterInteraction2,
    ] {
        for persona in Persona::echo_personas() {
            let Some(export) = obs.dsar.get(&(persona.name(), phase)) else {
                continue;
            };
            match &export.advertising_interests {
                Some(interests) if !interests.is_empty() => rows.push(InterestRow {
                    phase,
                    persona: persona.name(),
                    interests: interests.iter().map(|i| i.label().to_string()).collect(),
                }),
                Some(_) => {}
                None => {
                    if phase == DsarPhase::AfterInteraction2 {
                        missing.push(persona.name());
                    }
                }
            }
        }
    }
    Table12 {
        rows,
        missing_files: missing,
    }
}

impl Table12 {
    /// Interests inferred for a persona at a phase.
    pub fn interests(&self, phase: DsarPhase, persona: &str) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|r| r.phase == phase && r.persona == persona)
            .flat_map(|r| r.interests.iter().map(String::as_str))
            .collect()
    }

    /// Stream the paper's layout into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let mut t = TextTable::new(
            "Table 12: Advertising interests inferred by Amazon",
            &["Config.", "Persona", "Amazon inferred interests"],
        );
        for r in &self.rows {
            t.row()
                .cell(phase_label(r.phase))
                .cell(&r.persona)
                .cell(Joined(&r.interests));
        }
        let work = t.render_into(out);
        let missing = if self.missing_files.is_empty() {
            "none".to_string()
        } else {
            self.missing_files.join(", ")
        };
        out.push('\n');
        let _ = writeln!(
            out,
            "Advertising-interest files ABSENT on second post-interaction request: {missing}"
        );
        work + 1
    }

    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

/// Display adapter for a "; "-joined label list (avoids a `join` allocation
/// per rendered row).
struct Joined<'a>(&'a [String]);

impl std::fmt::Display for Joined<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            f.write_str(s)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::test_support::ix;

    #[test]
    fn install_phase_infers_only_health() {
        let t12 = table12(ix());
        let install_rows: Vec<&InterestRow> = t12
            .rows
            .iter()
            .filter(|r| r.phase == DsarPhase::AfterInstall)
            .collect();
        assert_eq!(install_rows.len(), 1);
        assert_eq!(install_rows[0].persona, "Health & Fitness");
        assert_eq!(
            install_rows[0].interests,
            vec!["Electronics", "Home & Garden: DIY & Tools"]
        );
    }

    #[test]
    fn interaction_unlocks_fashion_and_smarthome() {
        let t12 = table12(ix());
        assert_eq!(
            t12.interests(DsarPhase::AfterInteraction1, "Fashion & Style"),
            vec!["Beauty & Personal Care", "Fashion", "Video Entertainment"]
        );
        assert_eq!(
            t12.interests(DsarPhase::AfterInteraction2, "Smart Home"),
            vec![
                "Pet Supplies",
                "Home & Garden: DIY & Tools",
                "Home & Garden: Home & Kitchen"
            ]
        );
    }

    #[test]
    fn five_personas_lose_their_interest_files() {
        let t12 = table12(ix());
        let mut expected = vec![
            "Dating",
            "Health & Fitness",
            "Religion & Spirituality",
            "Vanilla",
            "Wine & Beverages",
        ];
        expected.sort_unstable();
        let mut got = t12.missing_files.clone();
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn renders() {
        let out = table12(ix()).render();
        assert!(out.contains("Installation"));
        assert!(out.contains("ABSENT"));
    }
}
