//! Defense evaluation (§8.1): what each user-side defense actually buys.
//!
//! The paper proposes two concrete defenses — selective traffic filtering
//! and on-device transcription — but does not evaluate them. This module
//! closes that loop: run the audit once undefended and once per defense,
//! then compare the observable record:
//!
//! * **Firewall**: advertising & tracking traffic should vanish while every
//!   functional third-party flow survives ("blocking without breaking");
//! * **Text-only**: voice recordings should vanish from every capture while
//!   skill functionality (and therefore traffic volume) is preserved;
//! * **the sobering result**: neither network defense touches the *bid
//!   uplift*, because Amazon's interest inference happens server-side from
//!   the interaction content the platform necessarily receives. Only the
//!   platform itself can turn that off — the paper's transparency argument.

use crate::analysis::bids;
use crate::analysis::traffic;
use crate::experiment::{apply_defense, DefenseMode};
use crate::index::AnalysisIndex;
use crate::observations::Observations;
use crate::persona::Persona;
use alexa_net::DataType;
use std::fmt::Write as _;

/// Derive the observable record of a defended run from the undefended
/// baseline, without re-executing the pipeline.
///
/// This is exact, not an approximation. Every defense in [`DefenseMode`] is
/// a pure per-packet transform applied at the tap boundary
/// ([`apply_defense`]) — the engine calls it on each outgoing batch right
/// before the capture tap, at every capture site (router and AVS). Nothing
/// upstream of the tap reads the defense mode: skill execution, the crawl,
/// the profiler, audio sessions, and DSAR exports all run identically (and
/// consume the RNG identically) regardless of defense. So a defended run's
/// observations are, by construction, the baseline observations with
/// `apply_defense` mapped over every captured packet batch; crawl, audio,
/// DSAR, policies, catalog, org map, and coverage carry over unchanged.
/// A digest-equality test against a genuinely re-executed defended run
/// enforces this equivalence.
pub fn derive_defended(baseline: &Observations, defense: DefenseMode) -> Observations {
    let mut obs = baseline.clone();
    for caps in obs.router_captures.values_mut() {
        for cap in caps.iter_mut() {
            cap.packets = apply_defense(defense, std::mem::take(&mut cap.packets));
        }
    }
    for cap in &mut obs.avs_captures {
        cap.packets = apply_defense(defense, std::mem::take(&mut cap.packets));
    }
    obs
}

/// Comparison of one defended run against the undefended baseline.
#[derive(Debug, Clone)]
pub struct DefenseReport {
    /// Name of the defense evaluated.
    pub defense: String,
    /// A&T traffic share, baseline → defended.
    pub ad_tracking_share: (f64, f64),
    /// Distinct third-party A&T domains observed, baseline → defended.
    pub ad_tracking_domains: (usize, usize),
    /// Distinct functional third-party domains observed, baseline →
    /// defended (must not shrink: the defense must not break skills).
    pub functional_domains: (usize, usize),
    /// Voice-recording flows observed in plaintext captures, baseline →
    /// defended.
    pub voice_flows: (usize, usize),
    /// Text-command flows observed, baseline → defended.
    pub text_flows: (usize, usize),
    /// Median CPM uplift of the strongest interest persona over vanilla,
    /// baseline → defended (server-side profiling is out of the defense's
    /// reach, so this should *not* drop).
    pub bid_uplift: (f64, f64),
}

fn voice_and_text_flows(ix: &AnalysisIndex) -> (usize, usize) {
    let mut voice = 0;
    let mut text = 0;
    for cap in &ix.obs.avs_captures {
        for p in &cap.packets {
            if let Some(records) = p.payload.records() {
                for r in records {
                    match r.data_type {
                        DataType::VoiceRecording => voice += 1,
                        DataType::TextCommand => text += 1,
                        _ => {}
                    }
                }
            }
        }
    }
    (voice, text)
}

fn third_party_domains(ix: &AnalysisIndex) -> (usize, usize) {
    let t3 = traffic::table3(ix);
    let at = t3.rows.iter().map(|r| r.1).sum();
    let functional = t3.rows.iter().map(|r| r.2).sum();
    (at, functional)
}

fn max_median_uplift(ix: &AnalysisIndex) -> f64 {
    let t5 = bids::table5(ix);
    let Some((vanilla, _)) = t5.get(&Persona::Vanilla.name()) else {
        return 0.0;
    };
    if vanilla == 0.0 {
        return 0.0;
    }
    t5.rows
        .iter()
        .filter(|r| r.0 != "Vanilla")
        .map(|r| r.1 / vanilla)
        .fold(0.0, f64::max)
}

/// Compare a defended run against the undefended baseline.
pub fn compare(defense: &str, baseline: &AnalysisIndex, defended: &AnalysisIndex) -> DefenseReport {
    let (base_at, base_fn) = third_party_domains(baseline);
    let (def_at, def_fn) = third_party_domains(defended);
    let (base_voice, base_text) = voice_and_text_flows(baseline);
    let (def_voice, def_text) = voice_and_text_flows(defended);
    DefenseReport {
        defense: defense.to_string(),
        ad_tracking_share: (
            traffic::table2(baseline).total_ad_tracking,
            traffic::table2(defended).total_ad_tracking,
        ),
        ad_tracking_domains: (base_at, def_at),
        functional_domains: (base_fn, def_fn),
        voice_flows: (base_voice, def_voice),
        text_flows: (base_text, def_text),
        bid_uplift: (max_median_uplift(baseline), max_median_uplift(defended)),
    }
}

impl DefenseReport {
    /// Stream the comparison into `out`; returns render work units.
    pub fn render_into(&self, out: &mut String) -> usize {
        let _ = write!(
            out,
            "Defense evaluation: {}\n\
               A&T traffic share:          {:.2}% -> {:.2}%\n\
               A&T third-party domains:    {} -> {}\n\
               functional 3rd-p. domains:  {} -> {}\n\
               voice-recording flows:      {} -> {}\n\
               text-command flows:         {} -> {}\n\
               max median bid uplift:      {:.2}x -> {:.2}x\n",
            self.defense,
            100.0 * self.ad_tracking_share.0,
            100.0 * self.ad_tracking_share.1,
            self.ad_tracking_domains.0,
            self.ad_tracking_domains.1,
            self.functional_domains.0,
            self.functional_domains.1,
            self.voice_flows.0,
            self.voice_flows.1,
            self.text_flows.0,
            self.text_flows.1,
            self.bid_uplift.0,
            self.bid_uplift.1,
        );
        7
    }

    /// Render the comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DefenseMode;
    use crate::observations::Observations;
    use crate::{AuditConfig, AuditRun};
    use std::sync::OnceLock;

    fn baseline() -> &'static AnalysisIndex<'static> {
        crate::analysis::test_support::ix()
    }

    fn firewalled() -> &'static AnalysisIndex<'static> {
        static OBS: OnceLock<Observations> = OnceLock::new();
        static IX: OnceLock<AnalysisIndex<'static>> = OnceLock::new();
        IX.get_or_init(|| {
            AnalysisIndex::build(OBS.get_or_init(|| {
                AuditRun::execute(AuditConfig::small(2222).with_defense(DefenseMode::Firewall))
            }))
        })
    }

    fn text_only() -> &'static AnalysisIndex<'static> {
        static OBS: OnceLock<Observations> = OnceLock::new();
        static IX: OnceLock<AnalysisIndex<'static>> = OnceLock::new();
        IX.get_or_init(|| {
            AnalysisIndex::build(OBS.get_or_init(|| {
                AuditRun::execute(AuditConfig::small(2222).with_defense(DefenseMode::TextOnly))
            }))
        })
    }

    #[test]
    fn firewall_removes_ad_tracking_without_breaking() {
        let r = compare("firewall", baseline(), firewalled());
        assert!(r.ad_tracking_share.0 > 0.0);
        assert_eq!(
            r.ad_tracking_share.1, 0.0,
            "A&T traffic survived the firewall"
        );
        assert_eq!(r.ad_tracking_domains.1, 0);
        // Functionality preserved: functional third-party domains intact.
        assert_eq!(r.functional_domains.0, r.functional_domains.1);
    }

    #[test]
    fn firewall_does_not_stop_server_side_profiling() {
        // The paper's deeper point: Amazon's inference is out of reach of a
        // network filter. Bid uplift persists.
        let r = compare("firewall", baseline(), firewalled());
        assert!(r.bid_uplift.1 > 1.5, "uplift gone: {:?}", r.bid_uplift);
    }

    #[test]
    fn text_only_eliminates_voice_recordings() {
        let r = compare("text-only", baseline(), text_only());
        assert!(r.voice_flows.0 > 0);
        assert_eq!(r.voice_flows.1, 0, "voice recordings still flowing");
        assert!(r.text_flows.1 > 0, "no text commands replaced them");
        // Functionality (and thus traffic shape) preserved.
        assert_eq!(r.functional_domains.0, r.functional_domains.1);
    }

    #[test]
    fn renders() {
        let r = compare("firewall", baseline(), firewalled());
        let s = r.render();
        assert!(s.contains("A&T traffic share"));
        assert!(s.contains("bid uplift"));
    }

    #[test]
    fn derived_firewall_matches_executed_run() {
        // The core equivalence the repro pipeline relies on: mapping
        // apply_defense over the baseline captures yields the exact
        // observable record of a genuinely re-executed defended run.
        let base = crate::analysis::test_support::obs();
        let derived = derive_defended(base, DefenseMode::Firewall);
        let executed = firewalled().obs;
        assert_eq!(derived.digest(), executed.digest());
    }

    #[test]
    fn derived_text_only_matches_executed_run() {
        let base = crate::analysis::test_support::obs();
        let derived = derive_defended(base, DefenseMode::TextOnly);
        let executed = text_only().obs;
        assert_eq!(derived.digest(), executed.digest());
    }

    #[test]
    fn derive_none_is_identity() {
        let base = crate::analysis::test_support::obs();
        let derived = derive_defended(base, DefenseMode::None);
        assert_eq!(derived.digest(), base.digest());
    }
}
