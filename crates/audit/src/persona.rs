//! Personas: the experiment's treatment and control arms (§3.1).

use alexa_platform::SkillCategory;

/// One experimental persona.
///
/// Nine *interest* personas (one per skill category), one *vanilla* control
/// (Amazon account + Echo, no skill interaction), and three *web* controls
/// primed by browsing topical websites instead of using an Echo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Persona {
    /// Treatment: installs and interacts with one category's top-50 skills.
    Interest(SkillCategory),
    /// Control: Amazon account and Echo, no skill installed or used.
    Vanilla,
    /// Control: primed by browsing top health websites.
    WebHealth,
    /// Control: primed by browsing top science websites.
    WebScience,
    /// Control: primed by browsing top computers websites.
    WebComputers,
}

impl Persona {
    /// All 13 personas: 9 interest + vanilla + 3 web controls.
    pub fn all() -> Vec<Persona> {
        let mut v: Vec<Persona> = SkillCategory::ALL
            .iter()
            .map(|&c| Persona::Interest(c))
            .collect();
        v.push(Persona::Vanilla);
        v.push(Persona::WebHealth);
        v.push(Persona::WebScience);
        v.push(Persona::WebComputers);
        v
    }

    /// The 10 Echo personas (interest + vanilla) that own devices.
    pub fn echo_personas() -> Vec<Persona> {
        let mut v: Vec<Persona> = SkillCategory::ALL
            .iter()
            .map(|&c| Persona::Interest(c))
            .collect();
        v.push(Persona::Vanilla);
        v
    }

    /// The three web control personas.
    pub fn web_personas() -> [Persona; 3] {
        [
            Persona::WebHealth,
            Persona::WebScience,
            Persona::WebComputers,
        ]
    }

    /// Display name, matching the paper's tables.
    pub fn name(self) -> String {
        match self {
            Persona::Interest(c) => c.label().to_string(),
            Persona::Vanilla => "Vanilla".to_string(),
            Persona::WebHealth => "Web Health".to_string(),
            Persona::WebScience => "Web Science".to_string(),
            Persona::WebComputers => "Web Computers".to_string(),
        }
    }

    /// The dedicated Amazon account name for this persona.
    pub fn account(self) -> String {
        match self {
            Persona::Interest(c) => format!("persona-{}", c.slug()),
            Persona::Vanilla => "persona-vanilla".to_string(),
            Persona::WebHealth => "persona-web-health".to_string(),
            Persona::WebScience => "persona-web-science".to_string(),
            Persona::WebComputers => "persona-web-computers".to_string(),
        }
    }

    /// The interest category, for interest personas.
    pub fn category(self) -> Option<SkillCategory> {
        match self {
            Persona::Interest(c) => Some(c),
            _ => None,
        }
    }

    /// The web priming topic, for web personas.
    pub fn web_topic(self) -> Option<&'static str> {
        match self {
            Persona::WebHealth => Some("health"),
            Persona::WebScience => Some("science"),
            Persona::WebComputers => Some("computers"),
            _ => None,
        }
    }

    /// Whether this persona owns an Echo device.
    pub fn has_echo(self) -> bool {
        matches!(self, Persona::Interest(_) | Persona::Vanilla)
    }
}

impl std::fmt::Display for Persona {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_personas_total() {
        assert_eq!(Persona::all().len(), 13);
        assert_eq!(Persona::echo_personas().len(), 10);
    }

    #[test]
    fn accounts_are_unique() {
        let mut accounts: Vec<String> = Persona::all().iter().map(|p| p.account()).collect();
        accounts.sort();
        let n = accounts.len();
        accounts.dedup();
        assert_eq!(accounts.len(), n);
    }

    #[test]
    fn echo_and_web_split() {
        assert!(Persona::Vanilla.has_echo());
        assert!(Persona::Interest(SkillCategory::Dating).has_echo());
        assert!(!Persona::WebHealth.has_echo());
        assert_eq!(Persona::WebScience.web_topic(), Some("science"));
        assert_eq!(Persona::Vanilla.web_topic(), None);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(
            Persona::Interest(SkillCategory::FashionStyle).name(),
            "Fashion & Style"
        );
        assert_eq!(Persona::Vanilla.name(), "Vanilla");
    }
}
