//! The shared analysis index: every derived view the report artifacts need,
//! computed **once** per run from [`Observations`].
//!
//! Before this module existed, each of the ~25 report artifacts rescanned
//! the raw captures packet-by-packet with per-endpoint `String` clones —
//! O(artifacts × packets) work that made rendering 82% of a paper-scale
//! run's wall time. The index performs each scan exactly once and stores
//! the results in dense, sorted tables keyed by interned `u32` symbols:
//!
//! * a label table ([`Interner`]) mapping hosts, organizations, skill ids,
//!   personas and ad-slot ids to symbols;
//! * per-host attributes ([`HostInfo`]: registrable domain, organization,
//!   traffic purpose) computed once per distinct endpoint;
//! * per-(persona, skill) flow aggregates ([`SkillFlows`]) with per-host
//!   packet counts, in the exact iteration order the legacy per-artifact
//!   scans produced;
//! * per-persona dense bid rows ([`BidRow`]) with slot ids and the
//!   partner-bidder classification pre-resolved;
//! * the recovered cookie-sync structure, extracted audio ads, and the
//!   AVS data-type map — each shared by several artifacts.
//!
//! Determinism: every table is built by iterating `BTreeMap`s of the
//! observations, so the index — and everything rendered from it — is a pure
//! function of the observable record, independent of thread count.

use crate::analysis::partners::{SyncAnalysis, AMAZON_AD_ENDPOINT};
use crate::observations::{Observations, SkillMeta};
use crate::persona::Persona;
use alexa_adtech::{AudioAdExtractor, StreamingService};
use alexa_net::{DataType, FilterList, OrgClass, TrafficPurpose};
use alexa_policy::FlowExtractor;
// analyzer:allow(AD03) -- Hash collections here back address-keyed memo maps that are only probed, never iterated; nothing ordered is derived from them
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::ops::Range;
use std::sync::Arc;

/// Identity key of a shared label: the `Arc` allocation address.
///
/// The crawl's org, bidder and slot labels are `Arc<str>`s cloned from a
/// small fixed set, so memoizing a per-string computation by allocation
/// address replaces hundreds of thousands of string-keyed tree lookups
/// with hash hits. Distinct allocations holding equal text merely recompute
/// the same value, so results stay a pure function of the string content.
#[inline]
fn arc_key(s: &Arc<str>) -> usize {
    Arc::as_ptr(s) as *const u8 as usize
}

/// Fibonacci-multiply hasher for the `usize` allocation-address keys above —
/// the default SipHash costs more than the lookups it replaces.
#[derive(Default)]
struct AddrHasher(u64);

impl std::hash::Hasher for AddrHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }
    fn write_usize(&mut self, n: usize) {
        self.0 = (n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

// analyzer:allow(AD03) -- lookup-only memo keyed by Arc pointer address; iteration order never reaches an output
type AddrMap<V> = HashMap<usize, V, std::hash::BuildHasherDefault<AddrHasher>>;
// analyzer:allow(AD03) -- lookup-only dedup set keyed by Arc pointer address; never iterated
type AddrSet = HashSet<usize, std::hash::BuildHasherDefault<AddrHasher>>;

/// An interned label: index into the run's [`Interner`].
pub type Sym = u32;

/// String interner: hosts, orgs, skill ids, personas and slot ids become
/// `u32` symbols compared and grouped without touching the bytes.
#[derive(Debug, Default)]
pub struct Interner {
    strings: Vec<String>,
    lookup: BTreeMap<String, Sym>,
}

impl Interner {
    /// Intern `s`, returning its stable symbol.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&id) = self.lookup.get(s) {
            return id;
        }
        let id = self.strings.len() as Sym;
        self.lookup.insert(s.to_string(), id);
        self.strings.push(s.to_string());
        id
    }

    /// Resolve a symbol back to its text.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym as usize]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// Everything the analyses need to know about one distinct endpoint host,
/// computed once (instead of once per artifact per packet).
#[derive(Debug, Clone, Copy)]
pub struct HostInfo {
    /// Full host name.
    pub host: Sym,
    /// Registrable domain (eTLD+1), falling back to the host itself.
    pub registrable: Sym,
    /// Owning organization, when the org database knows it.
    pub org: Option<Sym>,
    /// Organization with the registrable-domain fallback (the paper's
    /// WHOIS fallback, used by Figure 2 and the endpoint-policy analysis).
    pub org_or_reg: Sym,
    /// Whether the filter list classifies the host as advertising/tracking.
    pub ad_tracking: bool,
}

/// Packet count for one host within one (persona, skill) flow group.
#[derive(Debug, Clone, Copy)]
pub struct HostCount {
    /// Index into [`AnalysisIndex::hosts`].
    pub host: u32,
    /// Packets the skill session sent to this host.
    pub packets: u32,
}

/// Merged traffic of one skill under one persona (only skills that
/// produced traffic — failed installs carry no endpoint evidence).
#[derive(Debug, Clone)]
pub struct SkillFlows {
    /// Persona name.
    pub persona: Sym,
    /// Skill id (capture label).
    pub skill: Sym,
    /// Skill display name (falls back to the id when the catalog has no
    /// entry).
    pub name: Sym,
    /// Vendor organization ("" when unknown).
    pub vendor: Sym,
    /// Total packets across the skill's sessions.
    pub packets: u32,
    /// This group's per-host packet counts: a range into
    /// [`AnalysisIndex::host_counts`], hosts in lexicographic order.
    pub hosts: Range<u32>,
}

/// One observed bid in dense form.
#[derive(Debug, Clone, Copy)]
pub struct BidRow {
    /// Crawl iteration the bid was observed in.
    pub iteration: u32,
    /// Index into [`AnalysisIndex::slots`].
    pub slot: u32,
    /// Whether the bidder is one of Amazon's cookie-sync partners.
    pub partner: bool,
    /// Bid value.
    pub cpm: f64,
}

/// All bids one persona received, in visit order (the order every legacy
/// scan produced — the bootstrap resampler depends on it).
#[derive(Debug, Clone)]
pub struct PersonaBids {
    /// Persona name.
    pub persona: Sym,
    /// Dense bid rows in observation order.
    pub bids: Vec<BidRow>,
}

/// The shared, deterministic analysis index. Build once per run with
/// [`AnalysisIndex::build`]; every analysis function reads it instead of
/// rescanning the captures.
#[derive(Debug)]
pub struct AnalysisIndex<'a> {
    /// The raw observable record (for the few cheap analyses — DSAR,
    /// creatives, policy documents — that read it directly).
    pub obs: &'a Observations,
    /// The run's label table.
    pub symbols: Interner,
    /// Distinct endpoint hosts in lexicographic order.
    pub hosts: Vec<HostInfo>,
    /// Per-(persona, skill) flow groups, personas then skills in
    /// lexicographic order.
    pub flows: Vec<SkillFlows>,
    /// Arena backing [`SkillFlows::hosts`].
    pub host_counts: Vec<HostCount>,
    /// Per-persona ranges into [`AnalysisIndex::flows`], personas in
    /// lexicographic order (flow groups are persona-contiguous).
    pub persona_flows: Vec<(Sym, Range<u32>)>,
    /// Distinct ad-slot ids in lexicographic order.
    pub slots: Vec<Sym>,
    /// Per-persona dense bid tables, personas in lexicographic order.
    pub persona_bids: Vec<PersonaBids>,
    /// Recovered cookie-sync structure (partners, downstream parties).
    pub sync: SyncAnalysis,
    /// Extracted audio ads per (persona, streaming service).
    pub audio_ads: BTreeMap<(String, StreamingService), Vec<String>>,
    /// Data types observed per skill in the AVS plaintext captures.
    pub types_per_skill: BTreeMap<String, BTreeSet<DataType>>,
    /// `Amazon Technologies, Inc.` as a symbol.
    pub amazon: Sym,
    meta_by_id: BTreeMap<&'a str, &'a SkillMeta>,
    /// Memoized [`AnalysisIndex::common_slots`] masks. About a dozen
    /// artifacts ask for the same (persona set, window) masks; the mask is
    /// a pure function of the key, so the memo is invisible to results.
    slot_masks: std::sync::Mutex<Vec<SlotMaskEntry>>,
}

/// One memoized slot mask: the (persona set, window) key and its mask.
type SlotMaskEntry = (Vec<Persona>, Range<usize>, Vec<bool>);

impl<'a> AnalysisIndex<'a> {
    /// Build the index: one pass over each observation table.
    pub fn build(obs: &'a Observations) -> AnalysisIndex<'a> {
        let fl = FilterList::new();
        let mut symbols = Interner::default();
        let amazon = symbols.intern(alexa_net::orgmap::AMAZON);

        let meta_by_id: BTreeMap<&str, &SkillMeta> =
            obs.catalog.iter().map(|m| (m.id.as_str(), m)).collect();

        // Host table: every distinct endpoint across all router captures,
        // in lexicographic order (so host-id order == host-string order).
        let mut host_set: BTreeSet<&alexa_net::Domain> = BTreeSet::new();
        for caps in obs.router_captures.values() {
            for cap in caps {
                for p in &cap.packets {
                    host_set.insert(&p.remote);
                }
            }
        }
        let mut hosts = Vec::with_capacity(host_set.len());
        let mut host_ids: BTreeMap<&str, u32> = BTreeMap::new();
        for d in &host_set {
            host_ids.insert(d.as_str(), hosts.len() as u32);
            let host = symbols.intern(d.as_str());
            let registrable = match d.registrable() {
                Some(r) => symbols.intern(r.as_str()),
                None => host,
            };
            let org = obs.orgs.org_of(d).map(|o| symbols.intern(o));
            hosts.push(HostInfo {
                host,
                registrable,
                org,
                org_or_reg: org.unwrap_or(registrable),
                ad_tracking: fl.is_ad_tracking(d),
            });
        }

        // Flow groups: merge captures per (persona, skill), keeping only
        // skills that produced traffic — exactly the legacy
        // `skill_traffic` view, but with counts instead of cloned strings.
        let mut flows: Vec<SkillFlows> = Vec::new();
        let mut host_counts = Vec::new();
        let mut persona_flows = Vec::new();
        for (persona, caps) in &obs.router_captures {
            let persona_sym = symbols.intern(persona);
            let flows_start = flows.len() as u32;
            let mut merged: BTreeMap<&str, BTreeMap<u32, u32>> = BTreeMap::new();
            for cap in caps {
                let entry = merged.entry(cap.label.as_str()).or_default();
                for p in &cap.packets {
                    *entry.entry(host_ids[p.remote.as_str()]).or_insert(0) += 1;
                }
            }
            for (label, per_host) in merged {
                let packets: u32 = per_host.values().sum();
                if packets == 0 {
                    continue;
                }
                let start = host_counts.len() as u32;
                host_counts.extend(
                    per_host
                        .into_iter()
                        .map(|(host, packets)| HostCount { host, packets }),
                );
                let meta = meta_by_id.get(label).copied();
                let skill = symbols.intern(label);
                flows.push(SkillFlows {
                    persona: persona_sym,
                    skill,
                    name: meta.map_or(skill, |m| symbols.intern(&m.name)),
                    vendor: match meta {
                        Some(m) => symbols.intern(&m.vendor),
                        None => symbols.intern(""),
                    },
                    packets,
                    hosts: start..host_counts.len() as u32,
                });
            }
            persona_flows.push((persona_sym, flows_start..flows.len() as u32));
        }

        // Cookie-sync structure (one pass for partners, one for their
        // downstream propagation — same two passes the legacy analysis ran
        // per artifact).
        let mut partners = BTreeSet::new();
        let mut amazon_out = false;
        let mut is_amazon: AddrMap<bool> = AddrMap::default();
        let mut partner_seen: AddrSet = AddrSet::default();
        for visits in obs.crawl.values() {
            for v in visits {
                for s in &v.syncs {
                    if *is_amazon
                        .entry(arc_key(&s.from_org))
                        .or_insert_with(|| &*s.from_org == AMAZON_AD_ENDPOINT)
                    {
                        amazon_out = true;
                    }
                    if *is_amazon
                        .entry(arc_key(&s.to_org))
                        .or_insert_with(|| &*s.to_org == AMAZON_AD_ENDPOINT)
                        && partner_seen.insert(arc_key(&s.from_org))
                    {
                        partners.insert(s.from_org.to_string());
                    }
                }
            }
        }
        let mut downstream = BTreeSet::new();
        let mut is_partner: AddrMap<bool> = AddrMap::default();
        let mut down_seen: AddrSet = AddrSet::default();
        for visits in obs.crawl.values() {
            for v in visits {
                for s in &v.syncs {
                    if *is_partner
                        .entry(arc_key(&s.from_org))
                        .or_insert_with(|| partners.contains(&*s.from_org))
                        && !*is_amazon
                            .entry(arc_key(&s.to_org))
                            .or_insert_with(|| &*s.to_org == AMAZON_AD_ENDPOINT)
                        && down_seen.insert(arc_key(&s.to_org))
                    {
                        downstream.insert(s.to_org.to_string());
                    }
                }
            }
        }
        let sync = SyncAnalysis {
            amazon_partners: partners,
            amazon_syncs_out: amazon_out,
            downstream_parties: downstream,
        };

        // Slot table, then dense per-persona bid rows in visit order.
        let mut slot_set: BTreeSet<&str> = BTreeSet::new();
        let mut slot_ptr_seen: AddrSet = AddrSet::default();
        for visits in obs.crawl.values() {
            for v in visits {
                for b in &v.bids {
                    if slot_ptr_seen.insert(arc_key(&b.slot_id)) {
                        slot_set.insert(&*b.slot_id);
                    }
                }
            }
        }
        let slots: Vec<Sym> = slot_set.iter().map(|s| symbols.intern(s)).collect();
        let slot_ids: BTreeMap<&str, u32> = slot_set
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect();
        let mut persona_bids = Vec::with_capacity(obs.crawl.len());
        let mut slot_of: AddrMap<u32> = AddrMap::default();
        let mut bidder_partner: AddrMap<bool> = AddrMap::default();
        for (persona, visits) in &obs.crawl {
            let persona_sym = symbols.intern(persona);
            let mut bids = Vec::new();
            for v in visits {
                for b in &v.bids {
                    bids.push(BidRow {
                        iteration: v.iteration as u32,
                        slot: *slot_of
                            .entry(arc_key(&b.slot_id))
                            .or_insert_with(|| slot_ids[&*b.slot_id]),
                        partner: *bidder_partner
                            .entry(arc_key(&b.bidder))
                            .or_insert_with(|| sync.amazon_partners.contains(&*b.bidder)),
                        cpm: b.cpm,
                    });
                }
            }
            persona_bids.push(PersonaBids {
                persona: persona_sym,
                bids,
            });
        }

        // Shared extraction passes for the audio and policy artifacts.
        let extractor = AudioAdExtractor::new();
        let audio_ads = obs
            .audio
            .iter()
            .map(|((persona, service), transcripts)| {
                ((persona.clone(), *service), extractor.extract(transcripts))
            })
            .collect();
        let types_per_skill = FlowExtractor::new().data_types(&obs.avs_captures);

        AnalysisIndex {
            obs,
            symbols,
            hosts,
            flows,
            host_counts,
            persona_flows,
            slots,
            persona_bids,
            sync,
            audio_ads,
            types_per_skill,
            amazon,
            meta_by_id,
            slot_masks: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Resolve a symbol to its text.
    pub fn str_of(&self, sym: Sym) -> &str {
        self.symbols.resolve(sym)
    }

    /// The per-host packet counts of one flow group.
    pub fn hosts_of(&self, flow: &SkillFlows) -> &[HostCount] {
        &self.host_counts[flow.hosts.start as usize..flow.hosts.end as usize]
    }

    /// The flow groups of one persona range from [`AnalysisIndex::persona_flows`].
    pub fn flows_in(&self, range: &Range<u32>) -> &[SkillFlows] {
        &self.flows[range.start as usize..range.end as usize]
    }

    /// Classify a host relative to a skill vendor — symbol-compare form of
    /// `OrgMap::classify`. Unknown organizations are third party.
    pub fn org_class(&self, host: &HostInfo, vendor: Sym) -> OrgClass {
        match host.org {
            Some(o) if o == self.amazon => OrgClass::Amazon,
            Some(o) if o == vendor => OrgClass::SkillVendor,
            _ => OrgClass::ThirdParty,
        }
    }

    /// A host's traffic purpose under the built-in filter list.
    pub fn purpose(&self, host: &HostInfo) -> TrafficPurpose {
        if host.ad_tracking {
            TrafficPurpose::AdvertisingTracking
        } else {
            TrafficPurpose::Functional
        }
    }

    /// Catalog metadata for a skill id (map lookup — the legacy
    /// `Observations::skill_meta` is a linear scan).
    pub fn skill_meta(&self, id: &str) -> Option<&'a SkillMeta> {
        self.meta_by_id.get(id).copied()
    }

    /// The dense bid table of a persona, if it crawled.
    pub fn bids_of(&self, persona: Persona) -> Option<&PersonaBids> {
        let name = persona.name();
        self.persona_bids
            .binary_search_by(|pb| self.str_of(pb.persona).cmp(name.as_str()))
            .ok()
            .map(|i| &self.persona_bids[i])
    }

    /// Slot mask (indexed like [`AnalysisIndex::slots`]) of the slots that
    /// returned at least one bid for *every* given persona within the
    /// iteration window — the paper's common-slot control.
    pub fn common_slots(&self, personas: &[Persona], window: &Range<usize>) -> Vec<bool> {
        let n = self.slots.len();
        if personas.is_empty() {
            return vec![false; n];
        }
        {
            let memo = self.slot_masks.lock().unwrap_or_else(|p| p.into_inner());
            if let Some((_, _, mask)) = memo.iter().find(|(p, w, _)| w == window && p == personas) {
                return mask.clone();
            }
        }
        let mut common = vec![true; n];
        let mut seen = vec![false; n];
        for p in personas {
            seen.iter_mut().for_each(|s| *s = false);
            if let Some(pb) = self.bids_of(*p) {
                for b in &pb.bids {
                    if window.contains(&(b.iteration as usize)) {
                        seen[b.slot as usize] = true;
                    }
                }
            }
            common
                .iter_mut()
                .zip(&seen)
                .for_each(|(c, s)| *c = *c && *s);
        }
        self.slot_masks
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push((personas.to_vec(), window.clone(), common.clone()));
        common
    }

    /// Number of set slots in a mask.
    pub fn slot_count(&self, mask: &[bool]) -> usize {
        mask.iter().filter(|&&m| m).count()
    }

    /// All individual CPM values a persona received on the masked slots
    /// within the window, in observation order.
    pub fn pooled_bids(&self, persona: Persona, window: &Range<usize>, mask: &[bool]) -> Vec<f64> {
        let Some(pb) = self.bids_of(persona) else {
            return Vec::new();
        };
        pb.bids
            .iter()
            .filter(|b| window.contains(&(b.iteration as usize)) && mask[b.slot as usize])
            .map(|b| b.cpm)
            .collect()
    }

    /// Per-slot mean CPM over the masked slots (slot order — the
    /// significance tests' slot-level sample).
    pub fn slot_means(&self, persona: Persona, window: &Range<usize>, mask: &[bool]) -> Vec<f64> {
        let n = self.slots.len();
        let mut sums = vec![0.0f64; n];
        let mut counts = vec![0usize; n];
        if let Some(pb) = self.bids_of(persona) {
            for b in &pb.bids {
                let s = b.slot as usize;
                if mask[s] && window.contains(&(b.iteration as usize)) {
                    sums[s] += b.cpm;
                    counts[s] += 1;
                }
            }
        }
        (0..n)
            .filter(|&s| mask[s] && counts[s] > 0)
            .map(|s| sums[s] / counts[s] as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_roundtrip_and_dedup() {
        let mut i = Interner::default();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.resolve(a), "alpha");
        assert_eq!(i.resolve(b), "beta");
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
    }

    #[test]
    fn empty_observations_build_an_empty_index() {
        let obs = Observations::default();
        let ix = AnalysisIndex::build(&obs);
        assert!(ix.hosts.is_empty());
        assert!(ix.flows.is_empty());
        assert!(ix.slots.is_empty());
        assert!(ix.persona_bids.is_empty());
        assert!(ix.sync.amazon_partners.is_empty());
        assert!(ix.common_slots(&[Persona::Vanilla], &(0..10)).is_empty());
    }
}
