//! End-to-end experiment orchestration (§3, Figure 1).
//!
//! [`AuditRun::execute`] drives the full study with a single seed:
//!
//! 1. generate the marketplace and the AVS-Echo **plaintext pass** over all
//!    450 skills (data-type visibility, Amazon-only endpoints);
//! 2. provision the nine interest personas + vanilla, each with its own
//!    Amazon account, Echo, fresh browser profile and unique IP;
//! 3. **install phase**: each interest persona installs its category's
//!    top-50 skills, one router-tap capture per skill; first DSAR;
//! 4. **pre-interaction crawls** (6 iterations over the prebid sites);
//! 5. **interaction phase**: replay each skill's sample utterances through
//!    the Echo, one capture per skill; second DSAR;
//! 6. **post-interaction crawls** (25 iterations), recording bids,
//!    creatives and sync redirects; third DSAR;
//! 7. **audio sessions** on Amazon Music / Spotify / Pandora for the
//!    Connected Car, Fashion & Style and vanilla personas;
//! 8. **policy download** for every catalog skill.
//!
//! The output is an [`Observations`] bundle containing only observables.

use crate::observations::{Observations, SkillMeta};
use crate::persona::Persona;
use alexa_adtech::bidding::{standard_roster, SeasonModel, UserState};
use alexa_adtech::{
    Auction, BrowserProfile, Crawler, StreamingService, SyncGraph, Transcriber, WebEcosystem,
};
use alexa_net::{AvsTap, OrgMap, RouterTap};
use alexa_platform::storepage::{parse_invocation, parse_sample_utterances, render_store_page};
use alexa_platform::{AlexaCloud, AvsEcho, DsarPhase, EchoDevice, Marketplace, SkillCategory};
use alexa_policy::PolicyGenerator;
use std::collections::BTreeMap;

/// User-side defenses from the paper's §8.1, applied during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DefenseMode {
    /// No defense — the paper's measurement condition.
    #[default]
    None,
    /// Router firewall blocking advertising & tracking endpoints
    /// ("Blocking without Breaking"-style selective filtering).
    Firewall,
    /// On-device transcription: only the text of commands leaves the
    /// device, never the voice recording.
    TextOnly,
}

/// Tunable parameters of an audit run.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Master seed: two runs with equal configs are bit-identical.
    pub seed: u64,
    /// Skills installed per category (the paper's top-50).
    pub skills_per_category: usize,
    /// Prebid-supported sites crawled per iteration.
    ///
    /// The paper crawls 200 real sites but obtains a much smaller *common
    /// slot* set (real slot loading is flaky). Our simulated slots load
    /// reliably, so the default keeps the effective common-slot sample near
    /// the paper's statistical scale (≈ 50 slots).
    pub crawl_sites: usize,
    /// Size of the ranked web the prebid probe scans.
    pub web_size: usize,
    /// Crawl iterations before skill interaction (paper: 6).
    pub pre_iterations: usize,
    /// Crawl iterations after skill interaction (paper: 25).
    pub post_iterations: usize,
    /// Hours of audio streamed per (persona, service) session (paper: 6).
    pub audio_hours: f64,
    /// Maximum utterances replayed per skill during interaction.
    pub utterances_per_skill: usize,
    /// User-side defense active during the run (§8.1 evaluation).
    pub defense: DefenseMode,
}

impl AuditConfig {
    /// The paper-scale configuration.
    pub fn paper(seed: u64) -> AuditConfig {
        AuditConfig {
            seed,
            skills_per_category: 50,
            crawl_sites: 7,
            web_size: 700,
            pre_iterations: 6,
            post_iterations: 25,
            audio_hours: 6.0,
            utterances_per_skill: 4,
            defense: DefenseMode::None,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn small(seed: u64) -> AuditConfig {
        AuditConfig {
            seed,
            skills_per_category: 10,
            crawl_sites: 6,
            web_size: 120,
            pre_iterations: 2,
            post_iterations: 6,
            audio_hours: 1.0,
            utterances_per_skill: 2,
            defense: DefenseMode::None,
        }
    }

    /// The same configuration with a defense enabled.
    pub fn with_defense(mut self, defense: DefenseMode) -> AuditConfig {
        self.defense = defense;
        self
    }
}

/// Apply the configured defense to a device's outgoing packet batch.
///
/// * `Firewall`: drop packets to advertising & tracking endpoints at the
///   router (they never reach the network, so they never reach a tap).
/// * `TextOnly`: replace every voice-recording record with the locally
///   transcribed text command — the content needed for functionality, minus
///   the acoustic channel (mood, health, accent, …) the paper warns about.
fn apply_defense(defense: DefenseMode, packets: Vec<alexa_net::Packet>) -> Vec<alexa_net::Packet> {
    use alexa_net::{DataType, Firewall, Payload, Record};
    match defense {
        DefenseMode::None => packets,
        DefenseMode::Firewall => {
            let mut fw = Firewall::new();
            fw.filter_batch(packets)
        }
        DefenseMode::TextOnly => packets
            .into_iter()
            .map(|mut p| {
                if let Payload::Plain(records) = &mut p.payload {
                    for r in records.iter_mut() {
                        if r.data_type == DataType::VoiceRecording {
                            *r = Record::new(DataType::TextCommand, r.value.clone());
                        }
                    }
                }
                p
            })
            .collect(),
    }
}

/// The experiment driver.
pub struct AuditRun;

impl AuditRun {
    /// Execute the full audit and return the observable record.
    pub fn execute(config: AuditConfig) -> Observations {
        let market = Marketplace::generate(config.seed);
        let mut orgs = OrgMap::new();
        market.register_orgs(&mut orgs);

        let mut cloud = AlexaCloud::new();
        let mut obs = Observations {
            seed: config.seed,
            pre_iterations: config.pre_iterations,
            post_iterations: config.post_iterations,
            orgs,
            ..Observations::default()
        };

        // Public marketplace metadata (the store pages).
        obs.catalog = market
            .all()
            .iter()
            .map(|s| SkillMeta {
                id: s.id.0.clone(),
                name: s.name.clone(),
                vendor: s.vendor.clone(),
                category: s.category,
                reviews: s.reviews,
                streaming: s.streaming,
                policy_link: s.policy.has_link,
            })
            .collect();

        // ---- AVS Echo plaintext pass over the full catalog (§3.2) -------
        let mut avs = AvsEcho::new("avs-lab", config.seed ^ 0xa5a5);
        let mut avs_tap = AvsTap::new();
        for cat in SkillCategory::ALL {
            for skill in market.top_skills(cat, config.skills_per_category) {
                avs_tap.start(skill.id.0.clone());
                if let Ok(install_packets) = avs.install(&mut cloud, skill) {
                    for p in &apply_defense(config.defense, install_packets) {
                        avs_tap.observe(p);
                    }
                    for utterance in
                        scraped_script(skill).iter().take(config.utterances_per_skill)
                    {
                        let spoken = format!("Alexa, {utterance}");
                        if let Ok(packets) = avs.interact(&mut cloud, skill, &spoken) {
                            for p in &apply_defense(config.defense, packets) {
                                avs_tap.observe(p);
                            }
                        }
                    }
                    let uninstall = avs.uninstall(&mut cloud, skill);
                    for p in &apply_defense(config.defense, uninstall) {
                        avs_tap.observe(p);
                    }
                }
                avs_tap.stop();
            }
        }
        obs.avs_captures = avs_tap.into_captures();

        // ---- Echo persona provisioning ----------------------------------
        let mut devices: BTreeMap<String, EchoDevice> = BTreeMap::new();
        let mut taps: BTreeMap<String, RouterTap> = BTreeMap::new();
        for (i, persona) in Persona::echo_personas().into_iter().enumerate() {
            devices.insert(
                persona.name(),
                EchoDevice::new(&persona.account(), config.seed ^ (i as u64 + 1)),
            );
            taps.insert(persona.name(), RouterTap::new());
        }

        // ---- Install phase ----------------------------------------------
        for persona in Persona::echo_personas() {
            let Some(cat) = persona.category() else { continue };
            let device = devices.get_mut(&persona.name()).unwrap();
            let tap = taps.get_mut(&persona.name()).unwrap();
            for skill in market.top_skills(cat, config.skills_per_category) {
                tap.start(skill.id.0.clone());
                match device.install(&mut cloud, skill) {
                    Ok(packets) => {
                        for p in &apply_defense(config.defense, packets) {
                            tap.observe(p);
                        }
                    }
                    Err(_) => {
                        obs.failed_installs
                            .entry(persona.name())
                            .or_default()
                            .push(skill.id.0.clone());
                    }
                }
                tap.stop();
            }
        }
        // First DSAR: after installation (§6.1).
        for persona in Persona::echo_personas() {
            obs.dsar.insert(
                (persona.name(), DsarPhase::AfterInstall),
                cloud.profiler.dsar_export(&persona.account(), DsarPhase::AfterInstall),
            );
        }

        // ---- Web + ad ecosystem -----------------------------------------
        let sync_graph = SyncGraph::generate(config.seed);
        let web = WebEcosystem::generate(config.seed, config.web_size);
        let auction = Auction { bidders: standard_roster(sync_graph.partners()), season: SeasonModel::new(config.pre_iterations) };
        let crawler = Crawler::new(auction, sync_graph);
        let sites = web.prebid_sites(config.crawl_sites);

        let mut profiles: BTreeMap<String, BrowserProfile> = BTreeMap::new();
        for (i, persona) in Persona::all().into_iter().enumerate() {
            let account = persona.account();
            profiles.insert(
                persona.name(),
                BrowserProfile::fresh(&persona.name(), i as u8 + 1, Some(&account)),
            );
        }

        let crawl_once = |obs: &mut Observations,
                              cloud: &AlexaCloud,
                              profiles: &mut BTreeMap<String, BrowserProfile>,
                              iteration: usize| {
            for persona in Persona::all() {
                let user = user_state(persona, cloud);
                let profile = profiles.get_mut(&persona.name()).unwrap();
                let visits = obs.crawl.entry(persona.name()).or_default();
                for site in &sites {
                    visits.push(crawler.visit(site, profile, &user, iteration, config.seed));
                }
            }
        };

        // ---- Pre-interaction crawls --------------------------------------
        for iteration in 0..config.pre_iterations {
            crawl_once(&mut obs, &cloud, &mut profiles, iteration);
        }

        // ---- Interaction phase -------------------------------------------
        for persona in Persona::echo_personas() {
            let Some(cat) = persona.category() else { continue };
            let device = devices.get_mut(&persona.name()).unwrap();
            let tap = taps.get_mut(&persona.name()).unwrap();
            for skill in market.top_skills(cat, config.skills_per_category) {
                if !device.has_skill(&skill.id) {
                    continue; // failed install
                }
                tap.start(skill.id.0.clone());
                for utterance in
                    scraped_script(skill).iter().take(config.utterances_per_skill)
                {
                    let spoken = format!("Alexa, {utterance}");
                    if let Ok(packets) = device.interact(&mut cloud, skill, &spoken) {
                        for p in &apply_defense(config.defense, packets) {
                            tap.observe(p);
                        }
                    }
                }
                tap.stop();
            }
        }
        // Second DSAR: after interaction.
        for persona in Persona::echo_personas() {
            obs.dsar.insert(
                (persona.name(), DsarPhase::AfterInteraction1),
                cloud.profiler.dsar_export(&persona.account(), DsarPhase::AfterInteraction1),
            );
        }

        // ---- Post-interaction crawls --------------------------------------
        for iteration in
            config.pre_iterations..config.pre_iterations + config.post_iterations
        {
            crawl_once(&mut obs, &cloud, &mut profiles, iteration);
        }
        // Third DSAR: second request after interaction.
        for persona in Persona::echo_personas() {
            obs.dsar.insert(
                (persona.name(), DsarPhase::AfterInteraction2),
                cloud.profiler.dsar_export(&persona.account(), DsarPhase::AfterInteraction2),
            );
        }

        // ---- Router captures ----------------------------------------------
        for (name, tap) in taps {
            obs.router_captures.insert(name, tap.into_captures());
        }

        // ---- Audio-ad sessions (§3.3: two interest personas + vanilla) ----
        let audio_personas = [
            Persona::Interest(SkillCategory::ConnectedCar),
            Persona::Interest(SkillCategory::FashionStyle),
            Persona::Vanilla,
        ];
        let transcriber = Transcriber::default();
        for (pi, persona) in audio_personas.into_iter().enumerate() {
            // Audio targeting keys off the segments the profiler actually
            // holds — the same ground-truth channel the web auctions use —
            // not off the persona label.
            let segment = cloud
                .profiler
                .targeting_segments(&persona.account())
                .into_iter()
                .next();
            for (si, service) in StreamingService::ALL.into_iter().enumerate() {
                let session_seed =
                    config.seed ^ ((pi as u64 + 1) << 8) ^ ((si as u64 + 1) << 16);
                let session = alexa_adtech::audio::simulate_session(
                    service,
                    segment,
                    config.audio_hours,
                    session_seed,
                );
                let transcripts = transcriber.transcribe(&session, session_seed);
                obs.audio.insert((persona.name(), service), transcripts);
            }
        }

        // ---- Policy download ----------------------------------------------
        let generator = PolicyGenerator::new();
        for skill in market.all() {
            obs.policies.insert(skill.id.0.clone(), generator.render(skill));
        }

        obs
    }
}

/// The interaction script for a skill, scraped from its marketplace store
/// page exactly as the paper's crawler did (§3.1.1) — the audit never reads
/// the simulation's ground-truth utterance list.
fn scraped_script(skill: &alexa_platform::Skill) -> Vec<String> {
    let page = render_store_page(skill);
    let mut script = Vec::new();
    if let Some(invocation) = parse_invocation(&page) {
        script.push(format!("open {invocation}"));
    }
    script.extend(parse_sample_utterances(&page));
    script
}

/// Build the ecosystem-visible user state for a persona at crawl time.
///
/// For Echo personas the interest segments come from Amazon's profiler
/// (hidden from the auditor; visible to the ad stack). Web personas carry
/// their priming topic.
fn user_state(persona: Persona, cloud: &AlexaCloud) -> UserState {
    let mut user = UserState::blank(&persona.name());
    match persona {
        Persona::Interest(_) | Persona::Vanilla => {
            user.amazon_customer = true;
            user.echo_segments = cloud.profiler.targeting_segments(&persona.account());
        }
        Persona::WebHealth | Persona::WebScience | Persona::WebComputers => {
            user.amazon_customer = true; // crawls run logged into Amazon (§3.3)
            user.web_segments.insert(persona.web_topic().unwrap().to_string());
        }
    }
    user
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_all_observables() {
        let obs = AuditRun::execute(AuditConfig::small(3));
        assert_eq!(obs.catalog.len(), 450);
        assert_eq!(obs.router_captures.len(), 10);
        assert!(!obs.avs_captures.is_empty());
        assert_eq!(obs.crawl.len(), 13);
        assert_eq!(obs.audio.len(), 9);
        assert_eq!(obs.dsar.len(), 30);
        assert_eq!(obs.policies.len(), 450);
    }

    #[test]
    fn vanilla_has_no_skill_captures() {
        let obs = AuditRun::execute(AuditConfig::small(3));
        assert!(obs.router_captures["Vanilla"].is_empty());
        assert!(!obs.router_captures["Connected Car"].is_empty());
    }

    #[test]
    fn crawl_covers_all_iterations() {
        let cfg = AuditConfig::small(3);
        let total = cfg.pre_iterations + cfg.post_iterations;
        let obs = AuditRun::execute(cfg.clone());
        let visits = &obs.crawl["Vanilla"];
        assert_eq!(visits.len(), total * cfg.crawl_sites);
        let max_iter = visits.iter().map(|v| v.iteration).max().unwrap();
        assert_eq!(max_iter, total - 1);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = AuditRun::execute(AuditConfig::small(11));
        let b = AuditRun::execute(AuditConfig::small(11));
        let bids = |o: &Observations| {
            o.crawl["Fashion & Style"]
                .iter()
                .flat_map(|v| v.bids.iter().map(|b| (b.slot_id.clone(), b.cpm)))
                .collect::<Vec<_>>()
        };
        assert_eq!(bids(&a), bids(&b));
    }
}
