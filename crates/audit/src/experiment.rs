//! End-to-end experiment orchestration (§3, Figure 1).
//!
//! [`AuditRun::execute`] drives the full study with a single seed:
//!
//! 1. generate the marketplace and the AVS-Echo **plaintext pass** over all
//!    450 skills (data-type visibility, Amazon-only endpoints);
//! 2. provision the nine interest personas + vanilla, each with its own
//!    Amazon account, Echo, fresh browser profile and unique IP;
//! 3. **install phase**: each interest persona installs its category's
//!    top-50 skills, one router-tap capture per skill; first DSAR;
//! 4. **pre-interaction crawls** (6 iterations over the prebid sites);
//! 5. **interaction phase**: replay each skill's sample utterances through
//!    the Echo, one capture per skill; second DSAR;
//! 6. **post-interaction crawls** (25 iterations), recording bids,
//!    creatives and sync redirects; third DSAR;
//! 7. **audio sessions** on Amazon Music / Spotify / Pandora for the
//!    Connected Car, Fashion & Style and vanilla personas;
//! 8. **policy download** for every catalog skill.
//!
//! The output is an [`Observations`] bundle containing only observables.
//!
//! # Sharded parallel execution
//!
//! The run decomposes into independent units of work — 13 persona shards,
//! one AVS pass per skill category, one policy download per skill — and the
//! engine executes each kind of unit through an order-preserving parallel
//! map ([`alexa_exec::par_map`]). Every shard owns its complete device-side
//! state: its own [`AlexaCloud`] (per-account profiler slice, clock, DNS
//! table), its own [`EchoDevice`] / [`RouterTap`] / [`BrowserProfile`], all
//! seeded from the master seed and the shard's *fixed index* in the persona
//! (or category) list, never from execution order. Shared inputs — the
//! marketplace, the web ecosystem, the crawler and its sync graph — are
//! borrowed read-only by all shards.
//!
//! The invariant this buys: for a fixed [`AuditConfig`], the produced
//! [`Observations`] are **byte-identical for every `jobs` value**, including
//! fully sequential `Some(1)`. The determinism regression tests enforce this
//! by hashing complete runs ([`Observations::digest`]).

use crate::observations::{Observations, SkillMeta};
use crate::persona::Persona;
use alexa_adtech::bidding::{standard_roster, SeasonModel, UserState};
use alexa_adtech::{
    Auction, BrowserProfile, Crawler, StreamingService, SyncGraph, Transcriber, WebEcosystem,
    Website,
};
use alexa_exec::{
    par_map, Backend, BackendChoice, BackendStats, MockRemoteBackend, ProcessBackend, ShardOutcome,
    ShardSpec, ThreadBackend,
};
use alexa_fault::{
    retry, Coverage, CoverageReport, FaultChannel, FaultLedger, FaultPlane, FaultProfile,
    RetryBudget, RetryOutcome, RetryPolicy,
};
use alexa_net::{AvsTap, Capture, OrgMap, RouterTap, TapStats};
use alexa_obs::{Histogram, Json, Recorder, ShardLog};
use alexa_platform::storepage::{parse_invocation, parse_sample_utterances, render_store_page};
use alexa_platform::{
    AlexaCloud, AvsEcho, DeviceError, DsarExport, DsarPhase, EchoDevice, Marketplace, SkillCategory,
};
use alexa_policy::PolicyFetcher;

/// User-side defenses from the paper's §8.1, applied during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DefenseMode {
    /// No defense — the paper's measurement condition.
    #[default]
    None,
    /// Router firewall blocking advertising & tracking endpoints
    /// ("Blocking without Breaking"-style selective filtering).
    Firewall,
    /// On-device transcription: only the text of commands leaves the
    /// device, never the voice recording.
    TextOnly,
}

/// Tunable parameters of an audit run.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Master seed: two runs with equal configs are bit-identical.
    pub seed: u64,
    /// Skills installed per category (the paper's top-50).
    pub skills_per_category: usize,
    /// Prebid-supported sites crawled per iteration.
    ///
    /// The paper crawls 200 real sites but obtains a much smaller *common
    /// slot* set (real slot loading is flaky). Our simulated slots load
    /// reliably, so the default keeps the effective common-slot sample near
    /// the paper's statistical scale (≈ 50 slots).
    pub crawl_sites: usize,
    /// Size of the ranked web the prebid probe scans.
    pub web_size: usize,
    /// Crawl iterations before skill interaction (paper: 6).
    pub pre_iterations: usize,
    /// Crawl iterations after skill interaction (paper: 25).
    pub post_iterations: usize,
    /// Hours of audio streamed per (persona, service) session (paper: 6).
    pub audio_hours: f64,
    /// Maximum utterances replayed per skill during interaction.
    pub utterances_per_skill: usize,
    /// User-side defense active during the run (§8.1 evaluation).
    pub defense: DefenseMode,
    /// Fault profile driving the deterministic fault plane. `none()` (the
    /// default) reproduces the pre-fault-plane pipeline byte for byte.
    pub fault: FaultProfile,
    /// Worker threads for the sharded engine: `None` = one per hardware
    /// thread, `Some(1)` = fully sequential. The produced [`Observations`]
    /// are byte-identical for every value.
    // analyzer:allow(AS02) -- engine knob, deliberately not serialized: a replayed run must not pin the recording host's parallelism
    pub jobs: Option<usize>,
    /// Execution backend for the persona / AVS shard fan-out (DESIGN.md
    /// §15). The produced [`Observations`] are byte-identical for every
    /// backend under `none`/`flaky` fault profiles.
    // analyzer:allow(AS02) -- engine knob, deliberately not serialized: the backend is a host property, not part of the experiment identity
    pub backend: alexa_exec::BackendChoice,
    /// Command line for spawning one `process`-backend worker (e.g.
    /// `["repro", "--shard-worker"]`). Ignored by the other backends.
    // analyzer:allow(AS02) -- engine knob, deliberately not serialized: worker command lines are host paths, not experiment identity
    pub worker_cmd: Vec<String>,
    /// Per-shard wall-clock timeout for `process`-backend workers.
    // analyzer:allow(AS02) -- engine knob, deliberately not serialized: timeouts tune the host scheduler, not the experiment identity
    pub worker_timeout_ms: u64,
}

impl AuditConfig {
    /// The paper-scale configuration.
    pub fn paper(seed: u64) -> AuditConfig {
        AuditConfig {
            seed,
            skills_per_category: 50,
            crawl_sites: 7,
            web_size: 700,
            pre_iterations: 6,
            post_iterations: 25,
            audio_hours: 6.0,
            utterances_per_skill: 4,
            defense: DefenseMode::None,
            fault: FaultProfile::none(),
            jobs: None,
            backend: alexa_exec::BackendChoice::Thread,
            worker_cmd: Vec::new(),
            worker_timeout_ms: 30_000,
        }
    }

    /// A reduced configuration for fast tests.
    pub fn small(seed: u64) -> AuditConfig {
        AuditConfig {
            seed,
            skills_per_category: 10,
            crawl_sites: 6,
            web_size: 120,
            pre_iterations: 2,
            post_iterations: 6,
            audio_hours: 1.0,
            utterances_per_skill: 2,
            defense: DefenseMode::None,
            fault: FaultProfile::none(),
            jobs: None,
            backend: alexa_exec::BackendChoice::Thread,
            worker_cmd: Vec::new(),
            worker_timeout_ms: 30_000,
        }
    }

    /// The same configuration with a defense enabled.
    pub fn with_defense(mut self, defense: DefenseMode) -> AuditConfig {
        self.defense = defense;
        self
    }

    /// The same configuration with a fault profile enabled.
    pub fn with_faults(mut self, fault: FaultProfile) -> AuditConfig {
        self.fault = fault;
        self
    }

    /// The same configuration with an explicit worker-thread count.
    pub fn with_jobs(mut self, jobs: Option<usize>) -> AuditConfig {
        self.jobs = jobs;
        self
    }

    /// The same configuration with an explicit execution backend.
    pub fn with_backend(mut self, backend: alexa_exec::BackendChoice) -> AuditConfig {
        self.backend = backend;
        self
    }

    /// The same configuration with a `process`-backend worker command.
    pub fn with_worker_cmd(mut self, cmd: Vec<String>) -> AuditConfig {
        self.worker_cmd = cmd;
        self
    }

    /// The same configuration with a `process`-backend shard timeout.
    pub fn with_worker_timeout_ms(mut self, ms: u64) -> AuditConfig {
        self.worker_timeout_ms = ms;
        self
    }
}

/// Apply the configured defense to a device's outgoing packet batch.
///
/// * `Firewall`: drop packets to advertising & tracking endpoints at the
///   router (they never reach the network, so they never reach a tap).
/// * `TextOnly`: replace every voice-recording record with the locally
///   transcribed text command — the content needed for functionality, minus
///   the acoustic channel (mood, health, accent, …) the paper warns about.
pub(crate) fn apply_defense(
    defense: DefenseMode,
    packets: Vec<alexa_net::Packet>,
) -> Vec<alexa_net::Packet> {
    use alexa_net::{DataType, Firewall, Payload, Record};
    match defense {
        DefenseMode::None => packets,
        DefenseMode::Firewall => {
            let mut fw = Firewall::new();
            fw.filter_batch(packets)
        }
        DefenseMode::TextOnly => packets
            .into_iter()
            .map(|mut p| {
                if let Payload::Plain(records) = &mut p.payload {
                    for r in records.iter_mut() {
                        if r.data_type == DataType::VoiceRecording {
                            *r = Record::new(DataType::TextCommand, r.value.clone());
                        }
                    }
                }
                p
            })
            .collect(),
    }
}

/// The three personas that run audio-ad sessions (§3.3), in the fixed order
/// their session seeds are derived from.
const AUDIO_PERSONAS: [Persona; 3] = [
    Persona::Interest(SkillCategory::ConnectedCar),
    Persona::Interest(SkillCategory::FashionStyle),
    Persona::Vanilla,
];

/// Everything one persona shard produces; merged into [`Observations`] in
/// fixed persona order after all shards finish.
#[derive(Default)]
pub(crate) struct PersonaShard {
    /// Router-tap captures (`Some` for Echo personas, even when empty).
    pub(crate) router_captures: Option<Vec<Capture>>,
    /// Skills whose install failed.
    pub(crate) failed_installs: Vec<String>,
    /// DSAR exports, one per request phase (Echo personas only).
    pub(crate) dsar: Vec<(DsarPhase, DsarExport)>,
    /// All crawl visits, all iterations, in crawl order.
    pub(crate) crawl: Vec<alexa_adtech::VisitRecord>,
    /// Audio transcripts per streaming service (audio personas only).
    pub(crate) audio: Vec<(StreamingService, Vec<String>)>,
    /// Injected-fault and retry accounting for this shard.
    pub(crate) ledger: FaultLedger,
    /// Skill installs: observed successes / planned.
    pub(crate) installs: Coverage,
    /// Skill interactions (utterances): observed / planned.
    pub(crate) interactions: Coverage,
    /// Crawl visits: observed / planned.
    pub(crate) visits: Coverage,
}

impl PersonaShard {
    /// The degraded stand-in for a persona shard whose worker was lost
    /// (crash, timeout, permanent transport failure): planned work is
    /// accounted as expected-but-unobserved, the ledger records one loss
    /// and opens the breaker, so the run reports reduced coverage and
    /// exits 3 instead of panicking.
    pub(crate) fn lost(config: &AuditConfig, persona: Persona) -> PersonaShard {
        let mut out = PersonaShard::default();
        if persona.has_echo() {
            out.router_captures = Some(Vec::new());
        }
        if persona.category().is_some() {
            out.installs.expected = config.skills_per_category as u64;
        }
        out.visits.expected =
            ((config.pre_iterations + config.post_iterations) * config.crawl_sites) as u64;
        out.ledger.losses = 1;
        out.ledger.degraded = true;
        out
    }
}

/// Everything one AVS-category shard produces.
pub(crate) struct AvsShard {
    pub(crate) captures: Vec<Capture>,
    pub(crate) ledger: FaultLedger,
    /// Skills whose plaintext pass completed: observed / planned.
    pub(crate) skills: Coverage,
}

/// The allocation-plane summary of one shard's [`ShardLog`] window, as it
/// crosses the `process`-backend wire (DESIGN.md §16).
///
/// Span-level alloc deltas travel inside the wire-encoded log itself; the
/// shard-level window (counts, bytes, windowed peak, size histogram) is not
/// part of the span tree, so it rides this sidecar and is re-installed on
/// the decoded log via [`ShardLog::set_alloc`] before submission.
pub(crate) struct ShardAlloc {
    pub(crate) count: u64,
    pub(crate) bytes: u64,
    pub(crate) peak_bytes: u64,
    pub(crate) sizes: Histogram,
}

impl ShardAlloc {
    /// Capture a sealed log's shard-level allocation window.
    pub(crate) fn of(log: &ShardLog) -> ShardAlloc {
        ShardAlloc {
            count: log.alloc_count(),
            bytes: log.alloc_bytes(),
            peak_bytes: log.alloc_peak_bytes(),
            sizes: log.alloc_sizes().clone(),
        }
    }
}

impl AvsShard {
    /// The degraded stand-in for a lost AVS-category shard (see
    /// [`PersonaShard::lost`]).
    pub(crate) fn lost(config: &AuditConfig) -> AvsShard {
        let mut ledger = FaultLedger::new();
        ledger.losses = 1;
        ledger.degraded = true;
        AvsShard {
            captures: Vec::new(),
            ledger,
            skills: Coverage::new(0, config.skills_per_category as u64),
        }
    }
}

/// Fold a retried device operation into a shard ledger.
///
/// Injected faults and retries always count. Only *transient* final failures
/// count as losses: a modeled failure (`fails_to_load`, `NotAwake`, …) is
/// pipeline behavior, not a fault — its final attempt was not injected.
fn absorb_outcome<T>(
    ledger: &mut FaultLedger,
    channel: FaultChannel,
    out: &RetryOutcome<T, DeviceError>,
) {
    if out.succeeded() || matches!(&out.result, Err(e) if e.is_transient()) {
        ledger.record(channel, out);
    } else {
        ledger.inject(channel, u64::from(out.retries));
        ledger.retries += u64::from(out.retries);
        ledger.backoff_ms += out.backoff_ms;
    }
}

/// Fold a tap's packet-level fault counters into a shard ledger.
fn absorb_tap(ledger: &mut FaultLedger, stats: &TapStats) {
    ledger.inject(FaultChannel::PacketDrop, stats.dropped as u64);
    ledger.inject(FaultChannel::FlowTruncation, stats.truncated as u64);
}

/// Run one persona's complete timeline against its own cloud + device stack.
///
/// `all_index` is the persona's fixed position in [`Persona::all`]; every
/// seed and identifier below derives from such fixed indices so the shard's
/// output is independent of which worker runs it and when.
///
/// `log` is the shard's private event log (span taxonomy in DESIGN.md §9).
/// Recording never reads or advances any RNG, so the produced shard is
/// byte-identical whether the log is enabled or not.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_persona_shard(
    config: &AuditConfig,
    market: &Marketplace,
    crawler: &Crawler,
    sites: &[&Website],
    plane: &FaultPlane,
    persona: Persona,
    all_index: usize,
    log: &mut ShardLog,
) -> PersonaShard {
    // Open the shard's allocation window here — not at log creation — so it
    // covers exactly the shard body and none of the caller's staging work
    // (a worker allocates `Persona::all()` and the site list between
    // creating the log and entering this function).
    log.alloc_open();
    let mut out = PersonaShard::default();
    let account = persona.account();
    let rpolicy = RetryPolicy::standard();
    let mut budget = RetryBudget::new(plane.profile().retry_budget());
    // Per-shard cloud: the profiler only ever holds per-account state and no
    // persona reads another's account, so giving each shard its own cloud
    // preserves every observable relationship while removing all sharing.
    let mut cloud = AlexaCloud::new();
    let echo_index = Persona::echo_personas()
        .into_iter()
        .position(|p| p == persona);
    let (mut device, mut tap, mut profile) = log.span("boot", |l| {
        l.work(1); // one provisioning step per persona
        let device = echo_index.map(|i| {
            let mut d = EchoDevice::new(&account, config.seed ^ (i as u64 + 1));
            d.set_fault_plane(plane.clone());
            d
        });
        let tap = RouterTap::with_faults(plane.clone());
        let profile = BrowserProfile::fresh(&persona.name(), all_index as u8 + 1, Some(&account));
        (device, tap, profile)
    });

    // ---- Install phase (§3.1: top skills of the persona's category) -----
    log.span("install", |l| {
        if let (Some(device), Some(cat)) = (device.as_mut(), persona.category()) {
            for skill in market.top_skills(cat, config.skills_per_category) {
                out.installs.expected += 1;
                l.work(1); // one install attempt
                tap.start(skill.id.0.clone());
                let key = format!("{account}/install/{}", skill.id.0);
                let attempt = retry(
                    &rpolicy,
                    &mut budget,
                    config.seed,
                    &key,
                    |_| device.install(&mut cloud, skill),
                    DeviceError::is_transient,
                );
                absorb_outcome(&mut out.ledger, FaultChannel::InstallFailure, &attempt);
                match attempt.result {
                    Ok(packets) => {
                        out.installs.observed += 1;
                        l.work(packets.len() as u64);
                        tap.observe_batch(apply_defense(config.defense, packets));
                    }
                    Err(_) => out.failed_installs.push(skill.id.0.clone()),
                }
                tap.stop();
            }
        }
    });
    // First DSAR: after installation (§6.1).
    if persona.has_echo() {
        log.span("dsar.after_install", |l| {
            l.work(1); // one DSAR export
            out.dsar.push((
                DsarPhase::AfterInstall,
                cloud
                    .profiler
                    .dsar_export(&account, DsarPhase::AfterInstall),
            ));
        });
    }

    // ---- Pre-interaction crawls ------------------------------------------
    log.span("crawl.pre", |l| {
        crawl_window(
            config,
            crawler,
            sites,
            plane,
            &rpolicy,
            &mut budget,
            persona,
            &cloud,
            &mut profile,
            &mut out,
            0..config.pre_iterations,
            l,
        );
    });

    // ---- Interaction phase -----------------------------------------------
    log.span("interact", |l| {
        if let (Some(device), Some(cat)) = (device.as_mut(), persona.category()) {
            for skill in market.top_skills(cat, config.skills_per_category) {
                if !device.has_skill(&skill.id) {
                    continue; // failed install
                }
                tap.start(skill.id.0.clone());
                for utterance in scraped_script(skill)
                    .iter()
                    .take(config.utterances_per_skill)
                {
                    out.interactions.expected += 1;
                    l.work(1); // one replayed utterance
                    let spoken = format!("Alexa, {utterance}");
                    let key = format!("{account}/interact/{}/{utterance}", skill.id.0);
                    let attempt = retry(
                        &rpolicy,
                        &mut budget,
                        config.seed,
                        &key,
                        |_| device.interact(&mut cloud, skill, &spoken),
                        DeviceError::is_transient,
                    );
                    absorb_outcome(&mut out.ledger, FaultChannel::InteractionFailure, &attempt);
                    match attempt.result {
                        Ok(packets) => {
                            out.interactions.observed += 1;
                            l.work(packets.len() as u64);
                            tap.observe_batch(apply_defense(config.defense, packets));
                        }
                        // Injected outage survived retry: the utterance is lost.
                        Err(e) if e.is_transient() => {}
                        // Modeled behavior (e.g. the device didn't wake): the
                        // interaction happened and was observed to do nothing.
                        Err(_) => out.interactions.observed += 1,
                    }
                }
                tap.stop();
            }
        }
    });
    // Second DSAR: after interaction.
    if persona.has_echo() {
        log.span("dsar.after_interaction1", |l| {
            l.work(1); // one DSAR export
            out.dsar.push((
                DsarPhase::AfterInteraction1,
                cloud
                    .profiler
                    .dsar_export(&account, DsarPhase::AfterInteraction1),
            ));
        });
    }

    // ---- Post-interaction crawls -----------------------------------------
    log.span("crawl.post", |l| {
        crawl_window(
            config,
            crawler,
            sites,
            plane,
            &rpolicy,
            &mut budget,
            persona,
            &cloud,
            &mut profile,
            &mut out,
            config.pre_iterations..config.pre_iterations + config.post_iterations,
            l,
        );
    });
    // Third DSAR: second request after interaction.
    if persona.has_echo() {
        log.span("dsar.after_interaction2", |l| {
            l.work(1); // one DSAR export
            out.dsar.push((
                DsarPhase::AfterInteraction2,
                cloud
                    .profiler
                    .dsar_export(&account, DsarPhase::AfterInteraction2),
            ));
        });
    }

    let tap_stats = tap.stats();
    out.router_captures = persona.has_echo().then(|| tap.into_captures());

    // ---- Audio-ad sessions (§3.3: two interest personas + vanilla) -------
    if let Some(pi) = AUDIO_PERSONAS.iter().position(|p| *p == persona) {
        log.span("audio", |l| {
            // Audio targeting keys off the segments the profiler actually
            // holds — the same ground-truth channel the web auctions use —
            // not off the persona label.
            let segment = cloud
                .profiler
                .targeting_segments(&account)
                .into_iter()
                .next();
            let transcriber = Transcriber::default();
            for (si, service) in StreamingService::ALL.into_iter().enumerate() {
                let session_seed = config.seed ^ ((pi as u64 + 1) << 8) ^ ((si as u64 + 1) << 16);
                let session = alexa_adtech::audio::simulate_session(
                    service,
                    segment,
                    config.audio_hours,
                    session_seed,
                );
                let transcripts = transcriber.transcribe(&session, session_seed);
                l.work(1 + transcripts.len() as u64); // one session + its transcripts
                out.audio.push((service, transcripts));
            }
        });
    }

    // Shard-level counts: what the tap captured, what the crawls observed,
    // and what the persona's timeline produced.
    log.add("tap.sessions", tap_stats.sessions as u64);
    log.add("tap.flows", tap_stats.packets as u64);
    log.add("tap.bytes", tap_stats.bytes as u64);
    log.add("install.failed", out.failed_installs.len() as u64);
    log.add("dsar.exports", out.dsar.len() as u64);
    log.add("crawl.visits", out.crawl.len() as u64);
    log.add(
        "crawl.bids",
        out.crawl.iter().map(|v| v.bids.len() as u64).sum(),
    );
    log.add(
        "crawl.creatives",
        out.crawl.iter().map(|v| v.creatives.len() as u64).sum(),
    );
    log.add(
        "crawl.syncs",
        out.crawl.iter().map(|v| v.syncs.len() as u64).sum(),
    );
    log.add(
        "audio.transcripts",
        out.audio.iter().map(|(_, t)| t.len() as u64).sum(),
    );

    absorb_tap(&mut out.ledger, &tap_stats);
    // Circuit breaker: an exhausted retry budget marks the shard degraded —
    // the run completes and reports reduced coverage instead of panicking.
    out.ledger.degraded = budget.exhausted();
    if plane.is_active() {
        log.add("fault.injected", out.ledger.total_injected());
        log.add("fault.retries", out.ledger.retries);
        log.add("fault.losses", out.ledger.losses);
    }
    log.alloc_seal();

    out
}

/// One crawl window (pre- or post-interaction) for a persona shard.
///
/// With an inactive plane this is byte-for-byte the original crawl loop.
/// With faults active, each visit retries under the shard budget when the
/// `crawl_timeout` channel fires, and surviving visits pass through the
/// crawler's bid-loss filter. Each attempted visit advances the shard's
/// virtual work clock by one unit.
#[allow(clippy::too_many_arguments)]
fn crawl_window(
    config: &AuditConfig,
    crawler: &Crawler,
    sites: &[&Website],
    plane: &FaultPlane,
    rpolicy: &RetryPolicy,
    budget: &mut RetryBudget,
    persona: Persona,
    cloud: &AlexaCloud,
    profile: &mut BrowserProfile,
    out: &mut PersonaShard,
    window: std::ops::Range<usize>,
    log: &mut ShardLog,
) {
    for iteration in window {
        let user = user_state(persona, cloud);
        for site in sites {
            out.visits.expected += 1;
            log.work(1); // one crawl visit attempt
            if !plane.is_active() {
                out.visits.observed += 1;
                out.crawl
                    .push(crawler.visit(site, profile, &user, iteration, config.seed));
                continue;
            }
            let key = format!(
                "{}/crawl/{}/{iteration}",
                persona.name(),
                site.domain.as_str()
            );
            let attempt = retry(
                rpolicy,
                budget,
                config.seed,
                &key,
                |n| {
                    if plane.fires(FaultChannel::CrawlTimeout, &format!("{key}#{n}")) {
                        Err(())
                    } else {
                        Ok(crawler.visit_with_faults(site, profile, &user, iteration, config.seed))
                    }
                },
                |_: &()| true,
            );
            out.ledger.record(FaultChannel::CrawlTimeout, &attempt);
            if let Ok((record, lost_bids)) = attempt.result {
                out.visits.observed += 1;
                out.ledger.inject(FaultChannel::BidLoss, lost_bids);
                if lost_bids > 0 {
                    out.ledger.losses += lost_bids;
                }
                out.crawl.push(record);
            }
        }
    }
}

/// The AVS Echo plaintext pass for one skill category (§3.2), with its own
/// lab device and cloud seeded from the category's fixed index.
pub(crate) fn run_avs_shard(
    config: &AuditConfig,
    market: &Marketplace,
    plane: &FaultPlane,
    cat_index: usize,
    cat: SkillCategory,
    log: &mut ShardLog,
) -> AvsShard {
    log.alloc_open(); // see run_persona_shard: window == shard body only
    let mut cloud = AlexaCloud::new();
    let mut avs = AvsEcho::new(
        "avs-lab",
        config.seed ^ 0xa5a5 ^ ((cat_index as u64 + 1) << 32),
    );
    avs.set_fault_plane(plane.clone());
    let mut tap = AvsTap::with_faults(plane.clone());
    let rpolicy = RetryPolicy::standard();
    let mut budget = RetryBudget::new(plane.profile().retry_budget());
    let mut ledger = FaultLedger::new();
    let mut skills_cov = Coverage::default();
    log.span("skills", |l| {
        for skill in market.top_skills(cat, config.skills_per_category) {
            skills_cov.expected += 1;
            l.work(1); // one plaintext-pass skill
            tap.start(skill.id.0.clone());
            let key = format!("avs/{}/install", skill.id.0);
            let attempt = retry(
                &rpolicy,
                &mut budget,
                config.seed,
                &key,
                |_| avs.install(&mut cloud, skill),
                DeviceError::is_transient,
            );
            absorb_outcome(&mut ledger, FaultChannel::InstallFailure, &attempt);
            if let Ok(install_packets) = attempt.result {
                skills_cov.observed += 1;
                l.work(install_packets.len() as u64);
                tap.observe_batch(apply_defense(config.defense, install_packets));
                for utterance in scraped_script(skill)
                    .iter()
                    .take(config.utterances_per_skill)
                {
                    let spoken = format!("Alexa, {utterance}");
                    let key = format!("avs/{}/interact/{utterance}", skill.id.0);
                    let attempt = retry(
                        &rpolicy,
                        &mut budget,
                        config.seed,
                        &key,
                        |_| avs.interact(&mut cloud, skill, &spoken),
                        DeviceError::is_transient,
                    );
                    absorb_outcome(&mut ledger, FaultChannel::InteractionFailure, &attempt);
                    if let Ok(packets) = attempt.result {
                        l.work(1 + packets.len() as u64);
                        tap.observe_batch(apply_defense(config.defense, packets));
                    }
                }
                let uninstall = avs.uninstall(&mut cloud, skill);
                l.work(uninstall.len() as u64);
                tap.observe_batch(apply_defense(config.defense, uninstall));
            }
            tap.stop();
        }
    });
    let stats = tap.stats();
    log.add("tap.sessions", stats.sessions as u64);
    log.add("tap.flows", stats.packets as u64);
    log.add("tap.bytes", stats.bytes as u64);
    absorb_tap(&mut ledger, &stats);
    ledger.degraded = budget.exhausted();
    if plane.is_active() {
        log.add("fault.injected", ledger.total_injected());
        log.add("fault.retries", ledger.retries);
        log.add("fault.losses", ledger.losses);
    }
    log.alloc_seal();
    AvsShard {
        captures: tap.into_captures(),
        ledger,
        skills: skills_cov,
    }
}

/// Surface a backend's transport statistics through the recorder's
/// volatile channel: visible in the human report, deliberately absent from
/// the run-ledger bundle (schedule- and machine-dependent numbers must never
/// change committed bytes).
fn record_backend_stats(rec: &Recorder, stats: &BackendStats) {
    rec.volatile("backend.shards", stats.shards);
    rec.volatile("backend.committed", stats.committed);
    rec.volatile("backend.lost", stats.lost);
    rec.volatile("backend.retries.submit", stats.submit_retries);
    rec.volatile("backend.retries.poll", stats.poll_retries);
    rec.volatile("backend.retries.result", stats.result_retries);
    rec.volatile("backend.backoff_ms", stats.transport_backoff_ms);
    rec.volatile("worker.spawned", stats.workers_spawned);
    rec.volatile("worker.respawned", stats.workers_respawned);
    rec.volatile("worker.timeouts", stats.timeouts);
    rec.volatile("worker.crashes", stats.crashes);
    rec.volatile("worker.malformed", stats.malformed);
}

/// Decode one `process`-backend worker reply: the wire-encoded shard plus
/// the worker-side [`ShardLog`], which is submitted to the parent recorder
/// so the merged report looks the same as an in-process run.
fn decode_worker_reply<T>(
    rec: &Recorder,
    payload: &str,
    decode: &impl Fn(&Json) -> Option<T>,
) -> Option<T> {
    let doc = Json::parse(payload).ok()?;
    let shard = decode(doc.get("shard")?)?;
    if let Some(mut log) = doc.get("log").and_then(ShardLog::from_wire_json) {
        // The shard-level allocation window travels beside the log (span
        // deltas travel inside it); re-install it so the merged report and
        // memory ledger match an in-process run byte for byte.
        if let Some(alloc) = doc
            .get("alloc")
            .and_then(crate::wire::shard_alloc_from_json)
        {
            log.set_alloc(alloc.count, alloc.bytes, alloc.peak_bytes, alloc.sizes);
        }
        rec.submit(log);
    }
    // Aggregate deltas the worker's leaf libraries (crawler) recorded while
    // running this shard; merging them keeps metrics.json byte-identical to
    // an in-process run.
    if let Some(Json::Obj(aggregates)) = doc.get("agg") {
        for (name, delta) in aggregates {
            let field = |key: &str| match delta.get(key) {
                Some(Json::Int(n)) => *n,
                _ => 0,
            };
            rec.merge_aggregate(name, field("count"), field("calls"));
        }
    }
    Some(shard)
}

/// Distribute one shard group through the configured execution backend
/// (DESIGN.md §15).
///
/// * `thread` — shards run in-process with `par_map` semantics and hand
///   their typed results over directly; nothing crosses a wire, so the
///   pre-backend pipeline is reproduced byte for byte.
/// * `process` — each shard is dispatched to a `worker_cmd` child process
///   as a wire-encoded [`ShardSpec`]; replies carry the encoded shard plus
///   its worker-side [`ShardLog`]. Crashed, hung or garbled workers degrade
///   the shard.
/// * `mock-remote` — shards execute in-process behind a submit/poll/result
///   transport whose transient faults come from the run's fault profile.
///
/// Whatever the backend, results are committed in structural-index order by
/// the ordered committer, and a lost shard becomes `lost(index)` — a
/// degraded placeholder whose ledger records the loss, so the run completes
/// with reduced coverage (exit 3) instead of panicking.
#[allow(clippy::too_many_arguments)] // one codec closure per wire direction, not tunable knobs
fn fan_out<T: Send>(
    config: &AuditConfig,
    rec: &Recorder,
    group: &str,
    labels: &[String],
    run_local: &(impl Fn(usize, &mut ShardLog) -> T + Sync),
    encode: &(impl Fn(&T) -> Json + Sync),
    decode: &impl Fn(&Json) -> Option<T>,
    lost: &impl Fn(usize) -> T,
) -> Vec<T> {
    let n = labels.len();
    // Every spec carries the same rendered config document: workers key
    // their memoized world on the payload string, so one worker serving many
    // shards rebuilds the marketplace and web ecosystem exactly once.
    let payload = crate::wire::config_to_json(config).render();
    let specs: Vec<ShardSpec> = labels
        .iter()
        .enumerate()
        .map(|(index, label)| ShardSpec {
            group: group.to_string(),
            index,
            label: label.clone(),
            payload: payload.clone(),
        })
        .collect();
    match config.backend {
        BackendChoice::Thread => {
            // In-process results skip the wire entirely: each shard parks
            // its typed output in a slot keyed by structural index.
            let slots: Vec<std::sync::Mutex<Option<T>>> =
                (0..n).map(|_| std::sync::Mutex::new(None)).collect();
            let exec = |spec: &ShardSpec| -> Result<String, String> {
                let mut log = rec.shard(group, spec.index, &spec.label);
                let shard = run_local(spec.index, &mut log);
                rec.submit(log);
                if let Some(slot) = slots.get(spec.index) {
                    *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(shard);
                }
                Ok(String::new())
            };
            match ThreadBackend.run(config.jobs, specs, &exec) {
                Ok(run) => {
                    record_backend_stats(rec, &run.stats);
                    slots
                        .into_iter()
                        .enumerate()
                        .map(|(i, slot)| {
                            slot.into_inner()
                                .unwrap_or_else(|p| p.into_inner())
                                .unwrap_or_else(|| lost(i))
                        })
                        .collect()
                }
                Err(_) => (0..n).map(lost).collect(),
            }
        }
        BackendChoice::MockRemote => {
            let backend = MockRemoteBackend::new(config.seed ^ 0xfa417, config.fault.clone());
            let exec = |spec: &ShardSpec| -> Result<String, String> {
                let mut log = rec.shard(group, spec.index, &spec.label);
                let shard = run_local(spec.index, &mut log);
                rec.submit(log);
                Ok(encode(&shard).render())
            };
            match backend.run(config.jobs, specs, &exec) {
                Ok(run) => {
                    record_backend_stats(rec, &run.stats);
                    run.outcomes
                        .into_iter()
                        .enumerate()
                        .map(|(i, outcome)| match outcome {
                            ShardOutcome::Done(res) => Json::parse(&res.payload)
                                .ok()
                                .as_ref()
                                .and_then(decode)
                                .unwrap_or_else(|| lost(i)),
                            ShardOutcome::Lost { .. } => lost(i),
                        })
                        .collect()
                }
                Err(_) => (0..n).map(lost).collect(),
            }
        }
        BackendChoice::Process => {
            let backend = ProcessBackend {
                worker_cmd: config.worker_cmd.clone(),
                timeout_ms: config.worker_timeout_ms,
                max_respawns: 8,
            };
            // Children do the work; the in-process exec fn only runs if a
            // spec could not be dispatched at all.
            let exec = |_: &ShardSpec| -> Result<String, String> {
                Err("process backend executes shards in child workers".to_string())
            };
            match backend.run(config.jobs, specs, &exec) {
                Ok(run) => {
                    record_backend_stats(rec, &run.stats);
                    run.outcomes
                        .into_iter()
                        .enumerate()
                        .map(|(i, outcome)| match outcome {
                            ShardOutcome::Done(res) => {
                                decode_worker_reply(rec, &res.payload, decode)
                                    .unwrap_or_else(|| lost(i))
                            }
                            ShardOutcome::Lost { .. } => lost(i),
                        })
                        .collect()
                }
                Err(_) => (0..n).map(lost).collect(),
            }
        }
    }
}

/// The experiment driver.
pub struct AuditRun;

impl AuditRun {
    /// Execute the full audit and return the observable record.
    ///
    /// Work is distributed over `config.jobs` worker threads; the result is
    /// byte-identical for every worker count (see the module docs).
    pub fn execute(config: AuditConfig) -> Observations {
        Self::execute_with(config, &Recorder::disabled())
    }

    /// Execute the full audit with an observability [`Recorder`] attached.
    ///
    /// Every pipeline stage is timed via [`Recorder::stage`] and every
    /// persona / AVS-category shard fills its own [`ShardLog`], submitted
    /// under the shard's fixed structural index so the merged report is
    /// deterministic in everything but wall-clock values. Recording never
    /// touches an RNG or a control-flow decision: the produced
    /// [`Observations`] — and its digest — are identical to an untraced run
    /// (enforced by `crates/audit/tests/observability.rs`).
    pub fn execute_with(config: AuditConfig, rec: &Recorder) -> Observations {
        let config = &config;
        // The fault plane's seed is derived from (not equal to) the master
        // seed so fault decisions never correlate with simulation draws.
        let plane = FaultPlane::new(config.seed ^ 0xfa417, config.fault.clone());
        let market = rec.stage("marketplace", || Marketplace::generate(config.seed));
        let mut orgs = OrgMap::new();
        market.register_orgs(&mut orgs);

        let mut obs = Observations {
            seed: config.seed,
            pre_iterations: config.pre_iterations,
            post_iterations: config.post_iterations,
            orgs,
            ..Observations::default()
        };

        // Public marketplace metadata (the store pages).
        obs.catalog = market
            .all()
            .iter()
            .map(|s| SkillMeta {
                id: s.id.0.clone(),
                name: s.name.clone(),
                vendor: s.vendor.clone(),
                category: s.category,
                reviews: s.reviews,
                streaming: s.streaming,
                policy_link: s.policy.has_link,
            })
            .collect();

        // ---- AVS Echo plaintext pass, one shard per category (§3.2) -----
        let avs_shards = rec.stage("avs.pass", || {
            let labels: Vec<String> = SkillCategory::ALL
                .iter()
                .map(|cat| cat.label().to_string())
                .collect();
            fan_out(
                config,
                rec,
                "avs",
                &labels,
                &|ci, log| run_avs_shard(config, &market, &plane, ci, SkillCategory::ALL[ci], log),
                &crate::wire::avs_shard_to_json,
                &crate::wire::avs_shard_from_json,
                &|_| AvsShard::lost(config),
            )
        });
        let mut coverage = CoverageReport::new(config.fault.name());
        for (cat, shard) in SkillCategory::ALL.iter().zip(avs_shards) {
            coverage.section("avs.skills").merge(shard.skills);
            coverage.merge_ledger(&format!("avs/{}", cat.label()), &shard.ledger);
            obs.avs_captures.extend(shard.captures);
        }

        // ---- Shared read-only web + ad ecosystem -------------------------
        let (web, crawler) = rec.stage("web.ecosystem", || {
            let sync_graph = SyncGraph::generate(config.seed);
            let web = WebEcosystem::generate(config.seed, config.web_size);
            let auction = Auction {
                bidders: standard_roster(sync_graph.partners()),
                season: SeasonModel::new(config.pre_iterations),
            };
            (web, Crawler::new(auction, sync_graph))
        });
        let sites = web.prebid_sites(config.crawl_sites);

        // ---- Persona shards ----------------------------------------------
        let personas = Persona::all();
        let shards = rec.stage("persona.shards", || {
            let labels: Vec<String> = personas.iter().map(|p| p.name()).collect();
            fan_out(
                config,
                rec,
                "persona",
                &labels,
                &|i, log| {
                    run_persona_shard(
                        config,
                        &market,
                        &crawler,
                        &sites,
                        &plane,
                        personas[i],
                        i,
                        log,
                    )
                },
                &crate::wire::persona_shard_to_json,
                &crate::wire::persona_shard_from_json,
                &|i| PersonaShard::lost(config, personas[i]),
            )
        });

        // Merge in fixed persona order (par_map preserves input order).
        rec.stage("merge", || {
            for (persona, shard) in Persona::all().into_iter().zip(shards) {
                let name = persona.name();
                if let Some(captures) = shard.router_captures {
                    obs.router_captures.insert(name.clone(), captures);
                }
                if !shard.failed_installs.is_empty() {
                    obs.failed_installs
                        .insert(name.clone(), shard.failed_installs);
                }
                for (phase, export) in shard.dsar {
                    obs.dsar.insert((name.clone(), phase), export);
                }
                obs.crawl.insert(name.clone(), shard.crawl);
                for (service, transcripts) in shard.audio {
                    obs.audio.insert((name.clone(), service), transcripts);
                }
                coverage.section("skill.installs").merge(shard.installs);
                coverage
                    .section("skill.interactions")
                    .merge(shard.interactions);
                coverage.section("crawl.visits").merge(shard.visits);
                coverage.merge_ledger(&name, &shard.ledger);
            }
        });

        // ---- Policy download ---------------------------------------------
        let (policies, policy_cov, policy_ledger) = rec.stage("policy.download", || {
            let fetcher = PolicyFetcher::new(config.seed, plane.clone());
            let skills: Vec<&alexa_platform::Skill> = market.all().iter().collect();
            let fetched = par_map(config.jobs, skills, |_, skill| {
                (skill.id.0.clone(), fetcher.fetch(skill))
            });
            let mut cov = Coverage::default();
            let mut ledger = FaultLedger::new();
            let mut map = std::collections::BTreeMap::new();
            for (id, outcome) in fetched {
                cov.expected += 1;
                ledger.record(FaultChannel::PolicyDownload, &outcome);
                // A lost download omits the catalog entry entirely;
                // `Ok(None)` is the modeled "no retrievable policy" answer
                // and counts as observed.
                if let Ok(doc) = outcome.result {
                    cov.observed += 1;
                    map.insert(id, doc);
                }
            }
            (map, cov, ledger)
        });
        obs.policies = policies;
        rec.count("policy.documents", obs.policies.len() as u64);
        coverage.section("policy.downloads").merge(policy_cov);
        coverage.merge_ledger("policy", &policy_ledger);

        if plane.is_active() {
            rec.count("fault.injected", coverage.total_injected());
            rec.count("fault.retries", coverage.retries);
            rec.count("fault.losses", coverage.losses);
        }
        obs.coverage = coverage;

        obs
    }
}

/// The interaction script for a skill, scraped from its marketplace store
/// page exactly as the paper's crawler did (§3.1.1) — the audit never reads
/// the simulation's ground-truth utterance list.
fn scraped_script(skill: &alexa_platform::Skill) -> Vec<String> {
    let page = render_store_page(skill);
    let mut script = Vec::new();
    if let Some(invocation) = parse_invocation(&page) {
        script.push(format!("open {invocation}"));
    }
    script.extend(parse_sample_utterances(&page));
    script
}

/// Build the ecosystem-visible user state for a persona at crawl time.
///
/// For Echo personas the interest segments come from Amazon's profiler
/// (hidden from the auditor; visible to the ad stack). Web personas carry
/// their priming topic.
fn user_state(persona: Persona, cloud: &AlexaCloud) -> UserState {
    let mut user = UserState::blank(&persona.name());
    match persona {
        Persona::Interest(_) | Persona::Vanilla => {
            user.amazon_customer = true;
            user.echo_segments = cloud.profiler.targeting_segments(&persona.account());
        }
        Persona::WebHealth | Persona::WebScience | Persona::WebComputers => {
            user.amazon_customer = true; // crawls run logged into Amazon (§3.3)
            if let Some(topic) = persona.web_topic() {
                user.web_segments.insert(topic.to_string());
            }
        }
    }
    user
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_all_observables() {
        let obs = AuditRun::execute(AuditConfig::small(3));
        assert_eq!(obs.catalog.len(), 450);
        assert_eq!(obs.router_captures.len(), 10);
        assert!(!obs.avs_captures.is_empty());
        assert_eq!(obs.crawl.len(), 13);
        assert_eq!(obs.audio.len(), 9);
        assert_eq!(obs.dsar.len(), 30);
        assert_eq!(obs.policies.len(), 450);
    }

    #[test]
    fn vanilla_has_no_skill_captures() {
        let obs = AuditRun::execute(AuditConfig::small(3));
        assert!(obs.router_captures["Vanilla"].is_empty());
        assert!(!obs.router_captures["Connected Car"].is_empty());
    }

    #[test]
    fn crawl_covers_all_iterations() {
        let cfg = AuditConfig::small(3);
        let total = cfg.pre_iterations + cfg.post_iterations;
        let obs = AuditRun::execute(cfg.clone());
        let visits = &obs.crawl["Vanilla"];
        assert_eq!(visits.len(), total * cfg.crawl_sites);
        let max_iter = visits.iter().map(|v| v.iteration).max().unwrap();
        assert_eq!(max_iter, total - 1);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = AuditRun::execute(AuditConfig::small(11));
        let b = AuditRun::execute(AuditConfig::small(11));
        let bids = |o: &Observations| {
            o.crawl["Fashion & Style"]
                .iter()
                .flat_map(|v| v.bids.iter().map(|b| (b.slot_id.clone(), b.cpm)))
                .collect::<Vec<_>>()
        };
        assert_eq!(bids(&a), bids(&b));
    }
}
