//! The observability layer's determinism contract: tracing is invisible in
//! the observable record, and the trace itself is structurally deterministic
//! across worker counts.

use alexa_audit::{AuditConfig, AuditRun};
use alexa_obs::Recorder;

#[test]
fn tracing_does_not_change_the_digest() {
    let untraced = AuditRun::execute(AuditConfig::small(7));
    let rec = Recorder::new();
    let traced = AuditRun::execute_with(AuditConfig::small(7), &rec);
    assert_eq!(
        untraced.digest(),
        traced.digest(),
        "enabling the recorder changed the observable record"
    );
}

#[test]
fn report_covers_every_stage_and_shard() {
    let rec = Recorder::new();
    AuditRun::execute_with(AuditConfig::small(5), &rec);
    let report = rec.report();

    for stage in [
        "marketplace",
        "avs.pass",
        "web.ecosystem",
        "persona.shards",
        "merge",
        "policy.download",
    ] {
        assert!(report.stage(stage).is_some(), "missing stage {stage}");
    }

    // All 13 persona shards, keyed by their fixed Persona::all index.
    let personas = report.shards_in("persona");
    assert_eq!(personas.len(), 13);
    assert_eq!(personas[0].label, "Connected Car");
    assert_eq!(personas[12].label, "Web Computers");
    for shard in &personas {
        assert!(
            shard.counter("crawl.visits") > 0,
            "{}: no crawl visits",
            shard.label
        );
        assert!(
            shard.spans.iter().any(|s| s.name == "crawl.post"),
            "{}: missing crawl.post span",
            shard.label
        );
    }
    // Echo personas capture flows through the router tap; web personas
    // never own a device.
    let connected_car = &personas[0];
    assert!(connected_car.counter("tap.flows") > 0);
    assert!(connected_car.counter("crawl.bids") > 0);
    assert_eq!(
        personas[10].counter("tap.flows"),
        0,
        "web persona saw tap flows"
    );

    // One AVS shard per skill category.
    assert_eq!(report.shards_in("avs").len(), 9);

    // Leaf-library aggregates only flow through the *global* recorder (the
    // repro binary installs one); a locally attached recorder must still
    // have the pipeline's own counts.
    assert!(report.aggregates.contains_key("policy.documents"));
}

#[test]
fn trace_structure_is_identical_across_worker_counts() {
    let sequential = Recorder::new();
    AuditRun::execute_with(AuditConfig::small(7).with_jobs(Some(1)), &sequential);
    let parallel = Recorder::new();
    AuditRun::execute_with(AuditConfig::small(7).with_jobs(Some(4)), &parallel);
    assert_eq!(
        sequential.report().structure(),
        parallel.report().structure(),
        "trace structure depends on worker count"
    );
}

// Small helper so the assertions above read naturally.
trait CounterExt {
    fn counter(&self, name: &str) -> u64;
}

impl CounterExt for alexa_obs::ShardReport {
    fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}
