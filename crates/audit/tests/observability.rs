//! The observability layer's determinism contract: tracing is invisible in
//! the observable record, and the trace itself is structurally deterministic
//! across worker counts.

use alexa_audit::{AuditConfig, AuditRun};
use alexa_obs::Recorder;

#[test]
fn tracing_does_not_change_the_digest() {
    let untraced = AuditRun::execute(AuditConfig::small(7));
    let rec = Recorder::new();
    let traced = AuditRun::execute_with(AuditConfig::small(7), &rec);
    assert_eq!(
        untraced.digest(),
        traced.digest(),
        "enabling the recorder changed the observable record"
    );
}

#[test]
fn report_covers_every_stage_and_shard() {
    let rec = Recorder::new();
    AuditRun::execute_with(AuditConfig::small(5), &rec);
    let report = rec.report();

    for stage in [
        "marketplace",
        "avs.pass",
        "web.ecosystem",
        "persona.shards",
        "merge",
        "policy.download",
    ] {
        assert!(report.stage(stage).is_some(), "missing stage {stage}");
    }

    // All 13 persona shards, keyed by their fixed Persona::all index.
    let personas = report.shards_in("persona");
    assert_eq!(personas.len(), 13);
    assert_eq!(personas[0].label, "Connected Car");
    assert_eq!(personas[12].label, "Web Computers");
    for shard in &personas {
        assert!(
            shard.counter("crawl.visits") > 0,
            "{}: no crawl visits",
            shard.label
        );
        assert!(
            shard.spans.iter().any(|s| s.name == "crawl.post"),
            "{}: missing crawl.post span",
            shard.label
        );
    }
    // Echo personas capture flows through the router tap; web personas
    // never own a device.
    let connected_car = &personas[0];
    assert!(connected_car.counter("tap.flows") > 0);
    assert!(connected_car.counter("crawl.bids") > 0);
    assert_eq!(
        personas[10].counter("tap.flows"),
        0,
        "web persona saw tap flows"
    );

    // One AVS shard per skill category.
    assert_eq!(report.shards_in("avs").len(), 9);

    // Leaf-library aggregates only flow through the *global* recorder (the
    // repro binary installs one); a locally attached recorder must still
    // have the pipeline's own counts.
    assert!(report.aggregates.contains_key("policy.documents"));
}

#[test]
fn trace_structure_is_identical_across_worker_counts() {
    let sequential = Recorder::new();
    AuditRun::execute_with(AuditConfig::small(7).with_jobs(Some(1)), &sequential);
    let parallel = Recorder::new();
    AuditRun::execute_with(AuditConfig::small(7).with_jobs(Some(4)), &parallel);
    assert_eq!(
        sequential.report().structure(),
        parallel.report().structure(),
        "trace structure depends on worker count"
    );
}

#[test]
fn every_shard_accumulates_work_and_attributes_it_to_its_stage() {
    let rec = Recorder::new();
    AuditRun::execute_with(AuditConfig::small(5), &rec);
    let report = rec.report();
    for shard in report.shards_in("persona") {
        assert!(shard.work > 0, "{}: zero work units", shard.label);
        assert_eq!(shard.stage, "persona.shards", "{}", shard.label);
    }
    for shard in report.shards_in("avs") {
        assert!(shard.work > 0, "avs {}: zero work units", shard.label);
        assert_eq!(shard.stage, "avs.pass", "avs {}", shard.label);
    }
    // Stage work is the sum of its shards' virtual clocks.
    let persona_work: u64 = report.shards_in("persona").iter().map(|s| s.work).sum();
    let stage = report.stage("persona.shards").expect("stage recorded");
    assert_eq!(stage.work, persona_work);
    // Summaries and histograms cover both shard groups.
    let summaries = report.work_summaries();
    assert_eq!(summaries["persona"].count, 13);
    assert_eq!(summaries["avs"].count, 9);
    assert!(summaries["persona"].p50 > 0);
    assert!(summaries["persona"].p50 <= summaries["persona"].p99);
    let hists = report.work_histograms();
    assert_eq!(hists["persona"].total(), 13);
    assert!(hists.contains_key("persona:install"));
    assert!(hists.contains_key("avs:skills"));
}

/// The run-ledger bundle surfaces — trace, metrics, folded profile — must be
/// **byte-identical** across worker counts, not merely structurally equal:
/// they are built exclusively from the deterministic virtual work clock.
#[test]
fn ledger_surfaces_are_byte_identical_across_worker_counts() {
    let surfaces = |jobs: usize| {
        let rec = Recorder::new();
        AuditRun::execute_with(AuditConfig::small(7).with_jobs(Some(jobs)), &rec);
        let report = rec.report();
        (
            report.ledger_trace_json().render(),
            report.ledger_metrics_json().render(),
            report.folded_profile(),
        )
    };
    let (trace1, metrics1, profile1) = surfaces(1);
    let (trace4, metrics4, profile4) = surfaces(4);
    assert_eq!(trace1, trace4, "trace.json differs across worker counts");
    assert_eq!(
        metrics1, metrics4,
        "metrics.json differs across worker counts"
    );
    assert_eq!(
        profile1, profile4,
        "profile.folded differs across worker counts"
    );
}

/// Pins the exact folded profile of `AuditConfig::small(7)`. A diff here
/// means the work-unit accounting changed — intentional changes must
/// regenerate the golden file (instructions inside it... it is plain text:
/// write `report.folded_profile()` for `small(7)` over it).
#[test]
fn folded_profile_matches_the_golden_file() {
    let rec = Recorder::new();
    AuditRun::execute_with(AuditConfig::small(7), &rec);
    let got = rec.report().folded_profile();
    let want = include_str!("golden/profile_seed7.folded");
    assert_eq!(
        got, want,
        "folded profile drifted from tests/golden/profile_seed7.folded"
    );
}

// Small helper so the assertions above read naturally.
trait CounterExt {
    fn counter(&self, name: &str) -> u64;
}

impl CounterExt for alexa_obs::ShardReport {
    fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}
