//! The engine's core invariant: for a fixed config, the observable record is
//! byte-identical — across repeated runs and across every worker count. The
//! sharded parallel engine must be undetectable from the output.

use alexa_audit::analysis::{bids, traffic};
use alexa_audit::{AnalysisIndex, AuditConfig, AuditRun};

#[test]
fn repeated_runs_hash_identically() {
    let a = AuditRun::execute(AuditConfig::small(7));
    let b = AuditRun::execute(AuditConfig::small(7));
    assert_eq!(a.digest(), b.digest());
}

#[test]
fn different_seeds_hash_differently() {
    let a = AuditRun::execute(AuditConfig::small(7));
    let b = AuditRun::execute(AuditConfig::small(8));
    assert_ne!(a.digest(), b.digest());
}

#[test]
fn worker_count_is_invisible_in_the_output() {
    let sequential = AuditRun::execute(AuditConfig::small(7).with_jobs(Some(1)));
    let parallel = AuditRun::execute(AuditConfig::small(7).with_jobs(Some(4)));
    let all_cores = AuditRun::execute(AuditConfig::small(7).with_jobs(None));
    assert_eq!(
        sequential.digest(),
        parallel.digest(),
        "jobs=1 vs jobs=4 diverged"
    );
    assert_eq!(
        sequential.digest(),
        all_cores.digest(),
        "jobs=1 vs jobs=None diverged"
    );

    // Digest equality should imply artifact equality; spot-check the
    // rendering path end to end on a bid table and a traffic table.
    let sequential_ix = AnalysisIndex::build(&sequential);
    let parallel_ix = AnalysisIndex::build(&parallel);
    assert_eq!(
        bids::table5(&sequential_ix).render(),
        bids::table5(&parallel_ix).render()
    );
    assert_eq!(
        traffic::table1(&sequential_ix).render(),
        traffic::table1(&parallel_ix).render()
    );
}
