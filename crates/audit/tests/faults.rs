//! Fault-plane integration: digest stability, jobs-independence under
//! faults, coverage monotonicity, and graceful degradation at 100% fault
//! rate. These are the robustness counterparts of `tests/determinism.rs`.

use alexa_audit::analysis::defense;
use alexa_audit::report::full_report;
use alexa_audit::{AuditConfig, AuditRun, DefenseMode};
use alexa_fault::FaultProfile;
use alexa_obs::Recorder;

fn digest(cfg: AuditConfig) -> u64 {
    AuditRun::execute(cfg).digest()
}

/// The fault plane must be invisible under `none`: these are the digests the
/// pipeline produced before the plane existed (pinned from main).
#[test]
fn none_profile_preserves_pre_fault_plane_digests() {
    for (seed, want) in [
        (7u64, 0xb110b63e303dd95au64),
        (1234, 0xf39b00cfbb080c04),
        (2222, 0x76a4be4df33e5c1c),
    ] {
        assert_eq!(
            digest(AuditConfig::small(seed)),
            want,
            "seed {seed}: none-profile digest drifted from baseline"
        );
    }
}

/// For every preset, a fixed `(seed, profile)` yields byte-identical
/// observations for any worker count — fault decisions are structural, not
/// scheduling-dependent.
#[test]
fn faulted_digests_are_jobs_independent() {
    for profile in [
        FaultProfile::flaky(),
        FaultProfile::degraded(),
        FaultProfile::hostile(),
    ] {
        let run = |jobs| {
            digest(
                AuditConfig::small(7)
                    .with_faults(profile.clone())
                    .with_jobs(Some(jobs)),
            )
        };
        let (d1, d4, d8) = (run(1), run(4), run(8));
        assert_eq!(d1, d4, "{}: jobs 1 vs 4", profile.name());
        assert_eq!(d1, d8, "{}: jobs 1 vs 8", profile.name());
    }
}

/// Harsher presets can only lose observations: fault decisions nest in the
/// rate, so everything lost under `flaky` is also lost under `hostile`.
#[test]
fn coverage_decreases_monotonically_with_severity() {
    let totals: Vec<(String, u64)> = [
        FaultProfile::none(),
        FaultProfile::flaky(),
        FaultProfile::degraded(),
        FaultProfile::hostile(),
    ]
    .into_iter()
    .map(|profile| {
        let obs = AuditRun::execute(AuditConfig::small(1234).with_faults(profile.clone()));
        (profile.name().to_string(), obs.coverage.total_observed())
    })
    .collect();
    for pair in totals.windows(2) {
        assert!(
            pair[1].1 <= pair[0].1,
            "coverage grew from {} ({}) to {} ({})",
            pair[0].0,
            pair[0].1,
            pair[1].0,
            pair[1].1
        );
    }
    assert!(
        totals.last().unwrap().1 < totals.first().unwrap().1,
        "hostile must strictly reduce coverage"
    );
}

/// At a 100% fault rate nothing survives — and nothing panics. The report
/// still renders end to end, carries the coverage block, and the
/// significance tables refuse (rather than run on) the empty samples.
#[test]
fn analysis_never_panics_at_total_fault_rate() {
    let cfg = AuditConfig::small(2222).with_faults(FaultProfile::uniform(1.0));
    let obs = AuditRun::execute(cfg.clone());
    assert!(obs.coverage.is_degraded());
    assert_eq!(obs.coverage.sections["skill.installs"].observed, 0);

    let report = full_report(&obs);
    assert!(report.contains("DEGRADED (valid, reduced coverage)"));
    assert!(report.contains("insufficient samples"));

    // The §8.1 defense comparison must also survive empty observations.
    let defended = AuditRun::execute(cfg.with_defense(DefenseMode::Firewall));
    let obs_ix = alexa_audit::AnalysisIndex::build(&obs);
    let defended_ix = alexa_audit::AnalysisIndex::build(&defended);
    let comparison = defense::compare("firewall under total faults", &obs_ix, &defended_ix);
    assert!(!comparison.render().is_empty());
}

/// Injected faults and retries surface as observability counters, and the
/// coverage report's ledger matches what the recorder aggregated.
#[test]
fn fault_counters_reach_the_recorder() {
    let rec = Recorder::new();
    let obs = AuditRun::execute_with(
        AuditConfig::small(7).with_faults(FaultProfile::degraded()),
        &rec,
    );
    assert!(obs.coverage.total_injected() > 0);
    assert!(obs.coverage.retries > 0);

    let report = rec.report();
    let agg = |name: &str| report.aggregates.get(name).map(|a| a.count).unwrap_or(0);
    assert_eq!(agg("fault.injected"), obs.coverage.total_injected());
    assert_eq!(agg("fault.retries"), obs.coverage.retries);
    assert_eq!(agg("fault.losses"), obs.coverage.losses);

    let shard_faults: u64 = report
        .shards
        .iter()
        .map(|s| s.counters.get("fault.injected").copied().unwrap_or(0))
        .sum();
    assert!(shard_faults > 0, "per-shard fault counters missing");
}
