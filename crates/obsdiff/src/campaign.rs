//! `obs-diff campaign` — integrity verification of a campaign directory.
//!
//! The campaign runner (`repro campaign`) already asserts byte-equality of
//! instances while it runs; this entry point re-verifies a campaign
//! directory *after the fact*, from nothing but its files — the check CI
//! runs on a cached or downloaded campaign artifact before trusting it:
//!
//! 1. `campaign.json` parses, carries a supported schema, and lists every
//!    cell with its digest.
//! 2. Every listed cell bundle loads, and its bundle manifest records the
//!    campaign's plan hash, the cell's identity, and the digest the
//!    campaign manifest claims.
//! 3. Instances of one cell identity (differing only in `jobs`/`repeat`)
//!    are compared through [`diff_bundles`] — structural drift between
//!    them is a determinism violation, reported finding by finding.

use crate::bundle::load_bundle;
use crate::diff::{diff_bundles, DiffOptions};
use alexa_obs::campaign::{CAMPAIGN_FILE, CAMPAIGN_SCHEMA_VERSION, CELLS_DIR};
use alexa_obs::Json;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Why a campaign directory could not be checked at all (usage-shaped
/// failures; integrity violations are [`CampaignCheck::findings`]).
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignCheckError {
    /// `campaign.json` is missing or unreadable.
    Unreadable {
        /// The manifest path.
        path: PathBuf,
        /// The I/O error text.
        error: String,
    },
    /// `campaign.json` is not valid JSON or lacks required fields.
    Malformed {
        /// The manifest path.
        path: PathBuf,
        /// What is wrong with it.
        detail: String,
    },
    /// The manifest was written by an incompatible schema version.
    SchemaMismatch {
        /// The manifest path.
        path: PathBuf,
        /// The version found.
        found: u64,
    },
}

impl fmt::Display for CampaignCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignCheckError::Unreadable { path, error } => {
                write!(f, "cannot read {}: {error}", path.display())
            }
            CampaignCheckError::Malformed { path, detail } => {
                write!(f, "{}: {detail}", path.display())
            }
            CampaignCheckError::SchemaMismatch { path, found } => write!(
                f,
                "{}: campaign schema {found} unsupported (this tool reads schema \
                 {CAMPAIGN_SCHEMA_VERSION})",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CampaignCheckError {}

/// The outcome of verifying one campaign directory.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheck {
    /// Campaign name from the manifest.
    pub name: String,
    /// Plan hash every cell must record.
    pub plan_hash: String,
    /// Number of cell instances listed by the manifest.
    pub cells: usize,
    /// Number of distinct cell identities.
    pub identities: usize,
    /// Every integrity violation found, in deterministic order. Empty
    /// means the directory is internally consistent.
    pub findings: Vec<String>,
}

impl CampaignCheck {
    /// Whether the campaign directory passed every check.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable report, one line per finding plus a summary line.
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for finding in &self.findings {
            let _ = writeln!(out, "FAIL {finding}");
        }
        let _ = writeln!(
            out,
            "campaign {}: {} cell(s), {} identit{} — {}",
            self.name,
            self.cells,
            self.identities,
            if self.identities == 1 { "y" } else { "ies" },
            if self.clean() {
                "verified".to_string()
            } else {
                format!("{} violation(s)", self.findings.len())
            }
        );
        out
    }

    /// Machine-readable report.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("plan_hash".into(), Json::Str(self.plan_hash.clone())),
            ("cells".into(), Json::Int(self.cells as u64)),
            ("identities".into(), Json::Int(self.identities as u64)),
            ("clean".into(), Json::Bool(self.clean())),
            (
                "findings".into(),
                Json::Arr(self.findings.iter().map(|f| Json::Str(f.clone())).collect()),
            ),
        ])
    }
}

/// One cell row of `campaign.json`, as this checker needs it.
struct CellRow {
    key: String,
    id: String,
    digest: String,
}

fn manifest_str(row: &Json, field: &str) -> Option<String> {
    row.get(field).and_then(Json::as_str).map(str::to_string)
}

/// Verify `dir` as a campaign directory. Returns the check outcome (whose
/// findings list the integrity violations) or an error when the campaign
/// manifest itself is unusable.
pub fn check_campaign(dir: &Path) -> Result<CampaignCheck, CampaignCheckError> {
    let manifest_path = dir.join(CAMPAIGN_FILE);
    let text =
        std::fs::read_to_string(&manifest_path).map_err(|e| CampaignCheckError::Unreadable {
            path: manifest_path.clone(),
            error: e.to_string(),
        })?;
    let manifest = Json::parse(text.trim_end()).map_err(|e| CampaignCheckError::Malformed {
        path: manifest_path.clone(),
        detail: e.to_string(),
    })?;
    match manifest.get("schema").and_then(Json::as_u64) {
        Some(CAMPAIGN_SCHEMA_VERSION) => {}
        Some(found) => {
            return Err(CampaignCheckError::SchemaMismatch {
                path: manifest_path,
                found,
            })
        }
        None => {
            return Err(CampaignCheckError::Malformed {
                path: manifest_path,
                detail: "missing or mistyped field \"schema\"".into(),
            })
        }
    }
    let missing = |field: &str| CampaignCheckError::Malformed {
        path: manifest_path.clone(),
        detail: format!("missing or mistyped field {field:?}"),
    };
    let name = manifest_str(&manifest, "name").ok_or_else(|| missing("name"))?;
    let plan_hash = manifest_str(&manifest, "plan_hash").ok_or_else(|| missing("plan_hash"))?;
    let rows: Vec<CellRow> = manifest
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or_else(|| missing("cells"))?
        .iter()
        .map(|row| {
            Some(CellRow {
                key: manifest_str(row, "key")?,
                id: manifest_str(row, "id")?,
                digest: manifest_str(row, "digest")?,
            })
        })
        .collect::<Option<Vec<CellRow>>>()
        .ok_or_else(|| missing("cells[].key/id/digest"))?;

    let mut findings = Vec::new();
    let mut groups: BTreeMap<String, Vec<&CellRow>> = BTreeMap::new();
    for row in &rows {
        groups.entry(row.id.clone()).or_default().push(row);
    }

    // Per-cell integrity: the bundle loads and records what the campaign
    // manifest claims for it.
    for row in &rows {
        let cell_dir = dir.join(CELLS_DIR).join(&row.key);
        let bundle = match load_bundle(&cell_dir) {
            Ok(b) => b,
            Err(e) => {
                findings.push(format!("cell {}: {e}", row.key));
                continue;
            }
        };
        let campaign = bundle.manifest.get("campaign");
        let recorded_hash = campaign
            .and_then(|c| c.get("plan_hash"))
            .and_then(Json::as_str);
        if recorded_hash != Some(plan_hash.as_str()) {
            findings.push(format!(
                "cell {}: bundle records plan hash {:?}, campaign manifest says {:?}",
                row.key, recorded_hash, plan_hash
            ));
        }
        let recorded_id = campaign.and_then(|c| c.get("cell")).and_then(Json::as_str);
        if recorded_id != Some(row.id.as_str()) {
            findings.push(format!(
                "cell {}: bundle records identity {:?}, campaign manifest says {:?}",
                row.key, recorded_id, row.id
            ));
        }
        if bundle.observations_digest() != Some(row.digest.as_str()) {
            findings.push(format!(
                "cell {}: bundle digest {:?} does not match the campaign manifest's {:?}",
                row.key,
                bundle.observations_digest(),
                row.digest
            ));
        }
    }

    // Cross-instance determinism: instances of one identity must diff
    // clean (structure and every deterministic number identical).
    let opts = DiffOptions::default();
    for (id, instances) in &groups {
        let Some((reference, rest)) = instances.split_first() else {
            continue;
        };
        let Ok(ref_bundle) = load_bundle(&dir.join(CELLS_DIR).join(&reference.key)) else {
            continue; // already reported above
        };
        for other in rest {
            let Ok(other_bundle) = load_bundle(&dir.join(CELLS_DIR).join(&other.key)) else {
                continue;
            };
            let report = diff_bundles(&ref_bundle, &other_bundle, &opts);
            if !report.clean() {
                findings.push(format!(
                    "identity {id}: instances {} and {} drift ({} finding(s))",
                    reference.key,
                    other.key,
                    report.findings.len()
                ));
            }
        }
    }

    Ok(CampaignCheck {
        name,
        plan_hash,
        cells: rows.len(),
        identities: groups.len(),
        findings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_campaign_manifest_is_an_error() {
        let dir = std::env::temp_dir().join(format!("obsdiff-camp-miss-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let err = check_campaign(&dir).expect_err("must fail");
        assert!(matches!(err, CampaignCheckError::Unreadable { .. }));
    }

    #[test]
    fn unsupported_schema_is_an_error() {
        let dir = std::env::temp_dir().join(format!("obsdiff-camp-schema-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join(CAMPAIGN_FILE), "{\"schema\": 99}\n").expect("write");
        let err = check_campaign(&dir).expect_err("must fail");
        assert_eq!(
            err,
            CampaignCheckError::SchemaMismatch {
                path: dir.join(CAMPAIGN_FILE),
                found: 99
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn listed_but_missing_cells_are_findings_not_errors() {
        let dir = std::env::temp_dir().join(format!("obsdiff-camp-cells-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(
            dir.join(CAMPAIGN_FILE),
            "{\"schema\": 1, \"name\": \"x\", \"plan_hash\": \"aa\", \"cells\": \
             [{\"key\": \"s7-fnone-dnone-j1-r0\", \"id\": \"s7-fnone-dnone\", \
             \"digest\": \"00\"}]}\n",
        )
        .expect("write");
        let check = check_campaign(&dir).expect("manifest is well-formed");
        assert!(!check.clean());
        assert_eq!(check.cells, 1);
        assert_eq!(check.identities, 1);
        assert!(check.findings[0].contains("s7-fnone-dnone-j1-r0"));
        assert!(check.render_human().contains("1 violation(s)"));
        assert_eq!(
            check.to_json().get("clean").and_then(Json::as_bool),
            Some(false)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
