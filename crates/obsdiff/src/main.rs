//! `obs-diff` — compare run-ledger bundles and gate bench regressions.
//!
//! ```sh
//! obs-diff diff RUN_A RUN_B                 # full cross-run comparison
//! obs-diff diff A B --max-regress 10        # tighter growth threshold (%)
//! obs-diff diff A B --max-alloc-regress 5   # tighter allocation threshold (%)
//! obs-diff diff A B --format json           # machine-readable findings
//! obs-diff gate --baseline B --candidate C  # bench gate (BENCH_audit.json)
//! obs-diff gate ... --max-regress 25        # wall-clock threshold in percent
//! obs-diff gate ... --max-alloc-regress 10  # per-stage alloc-bytes threshold (%)
//! obs-diff campaign CAMPAIGN_DIR            # verify a campaign directory
//! ```
//!
//! # Exit codes
//!
//! * `0` — bundles equivalent / gate passed.
//! * `1` — drift or regression found / gate failed.
//! * `2` — usage error, unreadable or malformed input.

use alexa_obsdiff::{check_campaign, diff_bundles, load_bundle, run_gate, DiffOptions};
use std::path::Path;

fn usage(code: i32) -> ! {
    eprintln!(
        "usage: obs-diff diff BASELINE_DIR CANDIDATE_DIR [--max-regress PCT] [--max-alloc-regress PCT] [--format human|json]\n\
                obs-diff gate --baseline FILE --candidate FILE [--max-regress PCT] [--max-alloc-regress PCT] [--format human|json]\n\
                obs-diff campaign CAMPAIGN_DIR [--format human|json]"
    );
    std::process::exit(code);
}

/// Output format of either subcommand.
#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

fn parse_format(value: &str) -> Format {
    match value {
        "human" => Format::Human,
        "json" => Format::Json,
        other => {
            eprintln!("error: unknown format {other:?} (expected human or json)");
            std::process::exit(2);
        }
    }
}

fn parse_pct(flag: &str, value: &str) -> f64 {
    let pct: f64 = value.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} expects a percentage (e.g. 25)");
        std::process::exit(2);
    });
    if !(0.0..=1000.0).contains(&pct) {
        eprintln!("error: {flag} expects a percentage in [0, 1000]");
        std::process::exit(2);
    }
    pct
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage(2);
    };
    match command.as_str() {
        "diff" => cmd_diff(&args[1..]),
        "gate" => cmd_gate(&args[1..]),
        "campaign" => cmd_campaign(&args[1..]),
        "--help" | "-h" => usage(0),
        other => {
            eprintln!("error: unknown command {other:?}");
            usage(2);
        }
    }
}

fn cmd_diff(args: &[String]) -> ! {
    let mut dirs: Vec<&str> = Vec::new();
    let mut opts = DiffOptions::default();
    let mut format = Format::Human;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-regress" => {
                opts.max_regress_pct = parse_pct("--max-regress", &value(&mut it, "--max-regress"));
            }
            "--max-alloc-regress" => {
                opts.max_alloc_regress_pct = parse_pct(
                    "--max-alloc-regress",
                    &value(&mut it, "--max-alloc-regress"),
                );
            }
            "--format" => format = parse_format(&value(&mut it, "--format")),
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag {flag:?}");
                usage(2);
            }
            dir => dirs.push(dir),
        }
    }
    let [a, b] = dirs.as_slice() else {
        eprintln!("error: diff expects exactly two bundle directories");
        usage(2);
    };
    let load = |dir: &str| {
        load_bundle(Path::new(dir)).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    };
    let (bundle_a, bundle_b) = (load(a), load(b));
    let report = diff_bundles(&bundle_a, &bundle_b, &opts);
    match format {
        Format::Human => print!("{}", report.render_human()),
        Format::Json => println!("{}", report.to_json().render()),
    }
    std::process::exit(if report.clean() { 0 } else { 1 }); // analyzer:allow(AS04) -- diff gate exit: this bin's contract is 0 clean / 1 drift / 2 error
}

fn cmd_gate(args: &[String]) -> ! {
    let mut baseline: Option<String> = None;
    let mut candidate: Option<String> = None;
    let mut threshold = 0.25;
    let mut alloc_threshold = 0.10;
    let mut format = Format::Human;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => baseline = Some(value(&mut it, "--baseline")),
            "--candidate" => candidate = Some(value(&mut it, "--candidate")),
            "--max-regress" => {
                threshold = parse_pct("--max-regress", &value(&mut it, "--max-regress")) / 100.0;
            }
            "--max-alloc-regress" => {
                alloc_threshold = parse_pct(
                    "--max-alloc-regress",
                    &value(&mut it, "--max-alloc-regress"),
                ) / 100.0;
            }
            "--format" => format = parse_format(&value(&mut it, "--format")),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage(2);
            }
        }
    }
    let (Some(baseline), Some(candidate)) = (baseline, candidate) else {
        eprintln!("error: gate requires --baseline and --candidate");
        usage(2);
    };
    match run_gate(
        Path::new(&baseline),
        Path::new(&candidate),
        threshold,
        alloc_threshold,
    ) {
        Ok(report) => {
            match format {
                Format::Human => print!("{}", report.render_human()),
                Format::Json => println!("{}", report.to_json().render()),
            }
            std::process::exit(if report.passed() { 0 } else { 1 }); // analyzer:allow(AS04) -- diff gate exit: this bin's contract is 0 clean / 1 drift / 2 error
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn cmd_campaign(args: &[String]) -> ! {
    let mut dirs: Vec<&str> = Vec::new();
    let mut format = Format::Human;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => format = parse_format(&value(&mut it, "--format")),
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag {flag:?}");
                usage(2);
            }
            dir => dirs.push(dir),
        }
    }
    let [dir] = dirs.as_slice() else {
        eprintln!("error: campaign expects exactly one campaign directory");
        usage(2);
    };
    match check_campaign(Path::new(dir)) {
        Ok(check) => {
            match format {
                Format::Human => print!("{}", check.render_human()),
                Format::Json => println!("{}", check.to_json().render()),
            }
            std::process::exit(if check.clean() { 0 } else { 1 }); // analyzer:allow(AS04) -- diff gate exit: this bin's contract is 0 clean / 1 drift / 2 error
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// The next argument as a flag value, or exit 2.
fn value(it: &mut std::slice::Iter<'_, String>, flag: &str) -> String {
    it.next().cloned().unwrap_or_else(|| {
        eprintln!("error: {flag} expects a value");
        std::process::exit(2);
    })
}
