//! The bundle diff engine: every way two run ledgers can disagree.

use crate::bundle::LoadedBundle;
use alexa_obs::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// How much a difference matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Context, not a failure: different seeds, an added stage, ...
    Note,
    /// The bundles differ where equal inputs should produce equal bytes.
    Drift,
    /// A loss: removed structure, work/percentile growth beyond the
    /// threshold, a coverage drop, a determinism break.
    Regression,
}

impl Severity {
    /// Lowercase label used in both output formats.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Drift => "drift",
            Severity::Regression => "regression",
        }
    }
}

/// One observed difference between two bundles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// How much this difference matters.
    pub severity: Severity,
    /// Machine-stable category (`stage-work`, `counter`, `coverage`, ...).
    pub category: &'static str,
    /// What differs (a stage, counter, section or shard name).
    pub subject: String,
    /// Human-readable explanation with both values.
    pub detail: String,
}

/// Knobs for [`diff_bundles`].
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Maximum tolerated percentage growth of a stage's work, a group's
    /// p99, or a shard's work before the difference escalates from drift to
    /// regression. Default 25.
    pub max_regress_pct: f64,
    /// Maximum tolerated percentage growth of a stage's or shard's
    /// allocated bytes (the `memory.json` plane) before drift escalates to
    /// regression. Allocation counts are structural like work units, so the
    /// default gate is tighter than the work gate: 10.
    pub max_alloc_regress_pct: f64,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            max_regress_pct: 25.0,
            max_alloc_regress_pct: 10.0,
        }
    }
}

/// The outcome of comparing two bundles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Every difference found, in comparison order.
    pub findings: Vec<Finding>,
}

impl DiffReport {
    /// Whether the bundles are equivalent: nothing beyond [`Severity::Note`].
    pub fn clean(&self) -> bool {
        self.findings.iter().all(|f| f.severity == Severity::Note)
    }

    /// Whether any difference reached [`Severity::Regression`].
    pub fn has_regression(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.severity == Severity::Regression)
    }

    fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == sev).count()
    }

    fn push(&mut self, severity: Severity, category: &'static str, subject: &str, detail: String) {
        self.findings.push(Finding {
            severity,
            category,
            subject: subject.to_string(),
            detail,
        });
    }

    /// Human-readable listing, one finding per line, worst first.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let mut ordered: Vec<&Finding> = self.findings.iter().collect();
        ordered.sort_by_key(|f| std::cmp::Reverse(f.severity));
        for f in ordered {
            let _ = writeln!(
                out,
                "[{:<10}] {:<14} {}: {}",
                f.severity.label(),
                f.category,
                f.subject,
                f.detail
            );
        }
        let _ = writeln!(
            out,
            "{} regression(s), {} drift(s), {} note(s) — {}",
            self.count(Severity::Regression),
            self.count(Severity::Drift),
            self.count(Severity::Note),
            if self.clean() {
                "bundles equivalent"
            } else {
                "bundles differ"
            }
        );
        out
    }

    /// Machine-readable report (`--format json`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("clean".to_string(), Json::Bool(self.clean())),
            (
                "regressions".to_string(),
                Json::Int(self.count(Severity::Regression) as u64),
            ),
            (
                "drifts".to_string(),
                Json::Int(self.count(Severity::Drift) as u64),
            ),
            (
                "notes".to_string(),
                Json::Int(self.count(Severity::Note) as u64),
            ),
            (
                "findings".to_string(),
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            Json::Obj(vec![
                                (
                                    "severity".to_string(),
                                    Json::Str(f.severity.label().to_string()),
                                ),
                                ("category".to_string(), Json::Str(f.category.to_string())),
                                ("subject".to_string(), Json::Str(f.subject.clone())),
                                ("detail".to_string(), Json::Str(f.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Flatten a JSON object of `name -> Int` into an ordered map.
fn int_map<'a>(doc: &'a Json, key: &str) -> BTreeMap<&'a str, u64> {
    let mut out = BTreeMap::new();
    if let Some(fields) = doc.get(key).and_then(Json::as_obj) {
        for (name, v) in fields {
            if let Some(n) = v.as_u64() {
                out.insert(name.as_str(), n);
            }
        }
    }
    out
}

/// Percentage growth from `a` to `b`; `None` when `a` is zero and `b` grew
/// (infinite growth — always beyond any threshold).
fn growth_pct(a: u64, b: u64) -> Option<f64> {
    if a == 0 {
        return if b == 0 { Some(0.0) } else { None };
    }
    Some((b as f64 - a as f64) / a as f64 * 100.0)
}

/// Compare two `name -> value` maps, reporting removals as regressions,
/// additions as notes, and value changes as drift — escalating to
/// regression when growth exceeds the gate percentage (`gate: Some(pct)`;
/// `None` never escalates).
fn diff_int_maps(
    report: &mut DiffReport,
    a: &BTreeMap<&str, u64>,
    b: &BTreeMap<&str, u64>,
    category: &'static str,
    what: &str,
    unit: &str,
    gate: Option<f64>,
) {
    for (name, av) in a {
        match b.get(name) {
            None => report.push(
                Severity::Regression,
                category,
                name,
                format!("{what} present in baseline but missing from candidate"),
            ),
            Some(bv) if bv == av => {}
            Some(bv) => {
                let beyond = match growth_pct(*av, *bv) {
                    None => true,
                    Some(pct) => gate.is_some_and(|max| pct > max),
                };
                let sev = if gate.is_some() && beyond {
                    Severity::Regression
                } else {
                    Severity::Drift
                };
                let pct = growth_pct(*av, *bv)
                    .map(|p| format!("{p:+.1}%"))
                    .unwrap_or_else(|| "from zero".to_string());
                report.push(sev, category, name, format!("{av} -> {bv} {unit} ({pct})"));
            }
        }
    }
    for name in b.keys() {
        if !a.contains_key(name) {
            report.push(
                Severity::Note,
                category,
                name,
                format!("{what} only in candidate"),
            );
        }
    }
}

/// Diff the identity facts in the manifests.
fn diff_manifests(report: &mut DiffReport, a: &LoadedBundle, b: &LoadedBundle) {
    let same_seed = a.seed() == b.seed();
    let same_profile = a.fault_profile() == b.fault_profile();
    if !same_seed {
        report.push(
            Severity::Note,
            "manifest",
            "seed",
            format!(
                "{:?} vs {:?} (comparing different runs)",
                a.seed(),
                b.seed()
            ),
        );
    }
    if !same_profile {
        report.push(
            Severity::Note,
            "manifest",
            "fault_profile",
            format!("{:?} vs {:?}", a.fault_profile(), b.fault_profile()),
        );
    }
    if a.observations_digest() != b.observations_digest() {
        if same_seed && same_profile {
            // Equal inputs must produce equal observations: this is a
            // determinism break, the strongest finding this tool can make.
            report.push(
                Severity::Regression,
                "determinism",
                "observations_digest",
                format!(
                    "{:?} vs {:?} with identical seed and fault profile",
                    a.observations_digest(),
                    b.observations_digest()
                ),
            );
        } else {
            report.push(
                Severity::Note,
                "manifest",
                "observations_digest",
                "differs (expected across different runs)".to_string(),
            );
        }
    }
}

/// Diff the embedded coverage reports, when present.
fn diff_coverage(report: &mut DiffReport, a: &LoadedBundle, b: &LoadedBundle) {
    let (Some(ca), Some(cb)) = (a.coverage(), b.coverage()) else {
        if a.coverage().is_some() != b.coverage().is_some() {
            report.push(
                Severity::Note,
                "coverage",
                "presence",
                "only one bundle embeds a coverage report".to_string(),
            );
        }
        return;
    };
    // Sections: a drop in the observed/expected ratio is a regression.
    let sections = |c: &Json| -> BTreeMap<String, (u64, u64)> {
        let mut out = BTreeMap::new();
        if let Some(fields) = c.get("sections").and_then(Json::as_obj) {
            for (name, v) in fields {
                let observed = v.get("observed").and_then(Json::as_u64).unwrap_or(0);
                let expected = v.get("expected").and_then(Json::as_u64).unwrap_or(0);
                out.insert(name.clone(), (observed, expected));
            }
        }
        out
    };
    let (sa, sb) = (sections(ca), sections(cb));
    for (name, (ao, ae)) in &sa {
        match sb.get(name) {
            None => report.push(
                Severity::Regression,
                "coverage",
                name,
                "section present in baseline but missing from candidate".to_string(),
            ),
            Some((bo, be)) => {
                let ratio = |o: u64, e: u64| if e == 0 { 1.0 } else { o as f64 / e as f64 };
                let (ra, rb) = (ratio(*ao, *ae), ratio(*bo, *be));
                if rb < ra {
                    report.push(
                        Severity::Regression,
                        "coverage",
                        name,
                        format!(
                            "{ao}/{ae} ({:.1}%) -> {bo}/{be} ({:.1}%)",
                            ra * 100.0,
                            rb * 100.0
                        ),
                    );
                } else if (ao, ae) != (bo, be) {
                    report.push(
                        Severity::Drift,
                        "coverage",
                        name,
                        format!("{ao}/{ae} -> {bo}/{be}"),
                    );
                }
            }
        }
    }
    for name in sb.keys() {
        if !sa.contains_key(name) {
            report.push(
                Severity::Note,
                "coverage",
                name,
                "section only in candidate".to_string(),
            );
        }
    }
    // Fault totals: injected per channel plus retries / losses / backoff.
    let (ia, ib) = (int_map(ca, "injected"), int_map(cb, "injected"));
    diff_int_maps(report, &ia, &ib, "fault", "fault channel", "injected", None);
    for field in ["retries", "backoff_ms", "losses"] {
        let get = |c: &Json| c.get(field).and_then(Json::as_u64).unwrap_or(0);
        let (av, bv) = (get(ca), get(cb));
        if av != bv {
            report.push(Severity::Drift, "fault", field, format!("{av} -> {bv}"));
        }
    }
    // Newly degraded shards are a robustness regression.
    let degraded = |c: &Json| -> Vec<String> {
        c.get("degraded_shards")
            .and_then(Json::as_arr)
            .map(|items| {
                items
                    .iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default()
    };
    let (da, db) = (degraded(ca), degraded(cb));
    for shard in &db {
        if !da.contains(shard) {
            report.push(
                Severity::Regression,
                "degraded",
                shard,
                "shard newly degraded in candidate".to_string(),
            );
        }
    }
    for shard in &da {
        if !db.contains(shard) {
            report.push(
                Severity::Note,
                "degraded",
                shard,
                "shard no longer degraded".to_string(),
            );
        }
    }
}

/// Diff per-group percentile summaries from `metrics.json`.
fn diff_summaries(report: &mut DiffReport, a: &LoadedBundle, b: &LoadedBundle, opts: &DiffOptions) {
    let groups = |doc: &Json| -> BTreeMap<String, BTreeMap<&'static str, u64>> {
        let mut out = BTreeMap::new();
        if let Some(fields) = doc.get("summaries").and_then(Json::as_obj) {
            for (group, s) in fields {
                let mut vals = BTreeMap::new();
                for key in ["count", "min", "p50", "p90", "p99", "max", "sum"] {
                    vals.insert(key, s.get(key).and_then(Json::as_u64).unwrap_or(0));
                }
                out.insert(group.clone(), vals);
            }
        }
        out
    };
    let (ga, gb) = (groups(&a.metrics), groups(&b.metrics));
    for (group, va) in &ga {
        let Some(vb) = gb.get(group) else {
            report.push(
                Severity::Regression,
                "summary",
                group,
                "shard group missing from candidate".to_string(),
            );
            continue;
        };
        for (key, av) in va {
            let bv = vb.get(key).copied().unwrap_or(0);
            if *av == bv {
                continue;
            }
            // Percentile growth beyond the threshold gates; anything else
            // (including shrinkage) is drift worth seeing.
            let gated = matches!(*key, "p50" | "p90" | "p99");
            let beyond = match growth_pct(*av, bv) {
                None => true,
                Some(pct) => pct > opts.max_regress_pct,
            };
            let sev = if gated && beyond {
                Severity::Regression
            } else {
                Severity::Drift
            };
            let subject = format!("{group}.{key}");
            report.push(sev, "summary", &subject, format!("{av} -> {bv} work units"));
        }
    }
    for group in gb.keys() {
        if !ga.contains_key(group) {
            report.push(
                Severity::Note,
                "summary",
                group,
                "shard group only in candidate".to_string(),
            );
        }
    }
}

/// Diff the sparse histograms from `metrics.json` (shape equality only —
/// magnitude shifts already surface via summaries and stage work).
fn diff_histograms(report: &mut DiffReport, a: &LoadedBundle, b: &LoadedBundle) {
    let hists = |doc: &Json| -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        if let Some(fields) = doc.get("histograms").and_then(Json::as_obj) {
            for (name, h) in fields {
                out.insert(name.clone(), h.render());
            }
        }
        out
    };
    let (ha, hb) = (hists(&a.metrics), hists(&b.metrics));
    for (name, va) in &ha {
        match hb.get(name) {
            None => report.push(
                Severity::Regression,
                "histogram",
                name,
                "histogram missing from candidate".to_string(),
            ),
            Some(vb) if va == vb => {}
            Some(_) => report.push(
                Severity::Drift,
                "histogram",
                name,
                "bucket distribution shifted".to_string(),
            ),
        }
    }
    for name in hb.keys() {
        if !ha.contains_key(name) {
            report.push(
                Severity::Note,
                "histogram",
                name,
                "histogram only in candidate".to_string(),
            );
        }
    }
}

/// Diff shard structure and per-shard work from `trace.json`.
fn diff_shards(report: &mut DiffReport, a: &LoadedBundle, b: &LoadedBundle, opts: &DiffOptions) {
    let shards = |doc: &Json| -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        if let Some(items) = doc.get("shards").and_then(Json::as_arr) {
            for s in items {
                let group = s.get("group").and_then(Json::as_str).unwrap_or("?");
                let index = s.get("index").and_then(Json::as_u64).unwrap_or(0);
                let label = s.get("label").and_then(Json::as_str).unwrap_or("?");
                let work = s.get("work").and_then(Json::as_u64).unwrap_or(0);
                out.insert(format!("{group}[{index}] {label}"), work);
            }
        }
        out
    };
    let (sa, sb) = (shards(&a.trace), shards(&b.trace));
    let sa_ref: BTreeMap<&str, u64> = sa.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let sb_ref: BTreeMap<&str, u64> = sb.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    diff_int_maps(
        report,
        &sa_ref,
        &sb_ref,
        "shard-work",
        "shard",
        "work units",
        Some(opts.max_regress_pct),
    );
}

/// Diff the allocation plane from `memory.json`.
///
/// Allocated bytes per stage and per shard gate at
/// [`DiffOptions::max_alloc_regress_pct`]; allocation counts surface as
/// drift (a count change without a byte change is unusual enough to see,
/// but bytes are what memory budgets are written in). Size histograms are
/// shape-compared like the work histograms. The per-group summaries are
/// derived from the shard values already diffed here, so they are skipped.
fn diff_memory(report: &mut DiffReport, a: &LoadedBundle, b: &LoadedBundle, opts: &DiffOptions) {
    let stage_field = |doc: &Json, field: &str| -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        if let Some(fields) = doc.get("stage_alloc").and_then(Json::as_obj) {
            for (name, v) in fields {
                out.insert(
                    name.clone(),
                    v.get(field).and_then(Json::as_u64).unwrap_or(0),
                );
            }
        }
        out
    };
    fn as_ref(m: &BTreeMap<String, u64>) -> BTreeMap<&str, u64> {
        m.iter().map(|(k, v)| (k.as_str(), *v)).collect()
    }
    let (ba, bb) = (
        stage_field(&a.memory, "bytes"),
        stage_field(&b.memory, "bytes"),
    );
    diff_int_maps(
        report,
        &as_ref(&ba),
        &as_ref(&bb),
        "stage-alloc",
        "stage allocation",
        "alloc bytes",
        Some(opts.max_alloc_regress_pct),
    );
    let (ca, cb) = (
        stage_field(&a.memory, "count"),
        stage_field(&b.memory, "count"),
    );
    diff_int_maps(
        report,
        &as_ref(&ca),
        &as_ref(&cb),
        "stage-alloc-count",
        "stage allocation count",
        "allocations",
        None,
    );
    let shard_bytes = |doc: &Json| -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        if let Some(items) = doc.get("shards").and_then(Json::as_arr) {
            for s in items {
                let group = s.get("group").and_then(Json::as_str).unwrap_or("?");
                let index = s.get("index").and_then(Json::as_u64).unwrap_or(0);
                let label = s.get("label").and_then(Json::as_str).unwrap_or("?");
                let bytes = s.get("alloc_bytes").and_then(Json::as_u64).unwrap_or(0);
                out.insert(format!("{group}[{index}] {label}"), bytes);
            }
        }
        out
    };
    let (sa, sb) = (shard_bytes(&a.memory), shard_bytes(&b.memory));
    diff_int_maps(
        report,
        &as_ref(&sa),
        &as_ref(&sb),
        "shard-alloc",
        "shard allocation",
        "alloc bytes",
        Some(opts.max_alloc_regress_pct),
    );
    let hists = |doc: &Json| -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        if let Some(fields) = doc.get("size_histograms").and_then(Json::as_obj) {
            for (name, h) in fields {
                out.insert(name.clone(), h.render());
            }
        }
        out
    };
    let (ha, hb) = (hists(&a.memory), hists(&b.memory));
    for (name, va) in &ha {
        match hb.get(name) {
            None => report.push(
                Severity::Regression,
                "alloc-sizes",
                name,
                "allocation-size histogram missing from candidate".to_string(),
            ),
            Some(vb) if va == vb => {}
            Some(_) => report.push(
                Severity::Drift,
                "alloc-sizes",
                name,
                "allocation-size distribution shifted".to_string(),
            ),
        }
    }
    for name in hb.keys() {
        if !ha.contains_key(name) {
            report.push(
                Severity::Note,
                "alloc-sizes",
                name,
                "allocation-size histogram only in candidate".to_string(),
            );
        }
    }
}

/// Compare two loaded bundles, baseline first.
///
/// The report distinguishes context notes (different seeds), drift (values
/// differ where equal inputs should agree byte-for-byte) and regressions
/// (structure lost, growth beyond `opts.max_regress_pct`, coverage drops,
/// determinism breaks). Identical bundles produce an empty report.
pub fn diff_bundles(a: &LoadedBundle, b: &LoadedBundle, opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    diff_manifests(&mut report, a, b);
    // Stage work from metrics.json: removed stages and big growth gate.
    let (stages_a, stages_b) = (int_map(&a.metrics, "stages"), int_map(&b.metrics, "stages"));
    diff_int_maps(
        &mut report,
        &stages_a,
        &stages_b,
        "stage-work",
        "stage",
        "work units",
        Some(opts.max_regress_pct),
    );
    // Counter totals (includes fault.* when a fault profile was active).
    let (counters_a, counters_b) = (
        int_map(&a.metrics, "counters"),
        int_map(&b.metrics, "counters"),
    );
    diff_int_maps(
        &mut report,
        &counters_a,
        &counters_b,
        "counter",
        "counter",
        "",
        None,
    );
    // Aggregates: count and calls per name.
    let aggs = |doc: &Json| -> BTreeMap<String, (u64, u64)> {
        let mut out = BTreeMap::new();
        if let Some(fields) = doc.get("aggregates").and_then(Json::as_obj) {
            for (name, v) in fields {
                out.insert(
                    name.clone(),
                    (
                        v.get("count").and_then(Json::as_u64).unwrap_or(0),
                        v.get("calls").and_then(Json::as_u64).unwrap_or(0),
                    ),
                );
            }
        }
        out
    };
    let (aa, ab) = (aggs(&a.metrics), aggs(&b.metrics));
    for (name, va) in &aa {
        match ab.get(name) {
            None => report.push(
                Severity::Drift,
                "aggregate",
                name,
                "aggregate missing from candidate".to_string(),
            ),
            Some(vb) if va == vb => {}
            Some((bc, bl)) => report.push(
                Severity::Drift,
                "aggregate",
                name,
                format!("count {} -> {bc}, calls {} -> {bl}", va.0, va.1),
            ),
        }
    }
    for name in ab.keys() {
        if !aa.contains_key(name) {
            report.push(
                Severity::Note,
                "aggregate",
                name,
                "aggregate only in candidate".to_string(),
            );
        }
    }
    diff_summaries(&mut report, a, b, opts);
    diff_histograms(&mut report, a, b);
    diff_shards(&mut report, a, b, opts);
    diff_memory(&mut report, a, b, opts);
    diff_coverage(&mut report, a, b);
    // The folded profile: byte-compare, report the line-level delta size.
    if a.profile != b.profile {
        let la: std::collections::BTreeSet<&str> = a.profile.lines().collect();
        let lb: std::collections::BTreeSet<&str> = b.profile.lines().collect();
        let only_a = la.difference(&lb).count();
        let only_b = lb.difference(&la).count();
        report.push(
            Severity::Drift,
            "profile",
            "profile.folded",
            format!("{only_a} line(s) only in baseline, {only_b} only in candidate"),
        );
    }
    report
}
