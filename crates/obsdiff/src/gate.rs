//! The bench regression gate: a typed-error port of the retired
//! `ci/bench_gate.py`.
//!
//! `repro --bench` appends one JSON line per run to `BENCH_audit.json`, so
//! after the CI bench job the file holds the committed baseline entries
//! followed by the fresh ones. The gate compares each fresh entry against
//! the latest committed entry with the same `(seed, jobs)` pair and fails
//! when `total_ms` regressed beyond the threshold or a stage vanished.

use alexa_obs::{Json, JsonParseError};
use std::fmt;
use std::path::{Path, PathBuf};

/// Why the gate could not even run (exit 2 territory — distinct from a
/// gate *failure*, which is a successful run with a bad verdict).
#[derive(Debug, Clone, PartialEq)]
pub enum GateError {
    /// A bench file is missing or unreadable.
    Unreadable {
        /// The file that failed to read.
        path: PathBuf,
        /// The I/O error text.
        error: String,
    },
    /// A line of a bench file is not valid JSON.
    MalformedLine {
        /// The file containing the bad line.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// The parse failure.
        error: JsonParseError,
    },
    /// An entry that must be gated has no usable `total_ms` field.
    MissingTotalMs {
        /// The file the entry came from.
        path: PathBuf,
        /// Which side the entry is on ("fresh" or "baseline").
        what: &'static str,
        /// The keys the entry actually has, for the error message.
        keys: Vec<String>,
    },
    /// One side of a gated pair carries `rendered_bytes` and the other does
    /// not — the exact-equality check cannot run on half a pair.
    MissingRenderedBytes {
        /// The file the incomplete entry came from.
        path: PathBuf,
        /// Which side the entry is on ("fresh" or "baseline").
        what: &'static str,
        /// The keys the entry actually has, for the error message.
        keys: Vec<String>,
    },
    /// The candidate file contains no entries beyond the baseline.
    NoFreshEntries,
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::Unreadable { path, error } => write!(
                f,
                "cannot read bench file {}: {error}\n(run `repro --bench` to produce it, or check the CI snapshot step)",
                path.display()
            ),
            GateError::MalformedLine { path, line, error } => {
                write!(f, "{}:{line}: malformed JSON line: {error}", path.display())
            }
            GateError::MissingTotalMs { path, what, keys } => write!(
                f,
                "{what} entry in {} has no 'total_ms' field (keys: {keys:?})",
                path.display()
            ),
            GateError::MissingRenderedBytes { path, what, keys } => write!(
                f,
                "{what} entry in {} has no 'rendered_bytes' field while its counterpart does (keys: {keys:?})",
                path.display()
            ),
            GateError::NoFreshEntries => {
                write!(f, "no new bench entries found — did the bench runs happen?")
            }
        }
    }
}

/// Stages gated individually: a wall-clock regression beyond the threshold
/// in any of these fails the gate even when `total_ms` stays within bounds.
/// `render.all` is the stage the shared-index/streaming-render work exists
/// to keep down — a perf PR must not quietly give it back.
pub const GATED_STAGES: &[&str] = &["render.all"];

/// The gate's verdict plus its full comparison log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateReport {
    /// Human-readable comparison lines, in entry order.
    pub log: Vec<String>,
    /// Labels of the entries that failed (`seed=.. jobs=..`, with reason
    /// for missing stages or gated-stage regressions).
    pub failures: Vec<String>,
    /// Labels of entry pairs whose `rendered_bytes` differ — output bytes
    /// changed, which a perf PR must never do.
    pub byte_mismatches: Vec<String>,
    /// The wall-clock threshold the gate ran with.
    pub threshold: f64,
    /// The per-stage allocation-bytes threshold (`--max-alloc-regress`).
    pub alloc_threshold: f64,
}

impl GateReport {
    /// Whether every fresh entry passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.byte_mismatches.is_empty()
    }

    /// Human-readable report (the Python script's stdout, verdict last).
    pub fn render_human(&self) -> String {
        let mut out = self.log.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        if self.passed() {
            out.push_str("bench gate passed\n");
        } else {
            if !self.failures.is_empty() {
                out.push_str(&format!(
                    "bench gate failed (total_ms/stage regression >{:.0}%, stage alloc regression >{:.0}%, or missing stages) for: {}\n",
                    self.threshold * 100.0,
                    self.alloc_threshold * 100.0,
                    self.failures.join("; ")
                ));
            }
            if !self.byte_mismatches.is_empty() {
                out.push_str(&format!(
                    "bench gate failed (rendered_bytes changed — output is not byte-identical) for: {}\n",
                    self.byte_mismatches.join("; ")
                ));
            }
        }
        out
    }

    /// Machine-readable report (`--format json`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("passed".to_string(), Json::Bool(self.passed())),
            ("threshold".to_string(), Json::Float(self.threshold)),
            (
                "alloc_threshold".to_string(),
                Json::Float(self.alloc_threshold),
            ),
            (
                "failures".to_string(),
                Json::Arr(self.failures.iter().map(|s| Json::Str(s.clone())).collect()),
            ),
            (
                "rendered_bytes_mismatches".to_string(),
                Json::Arr(
                    self.byte_mismatches
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            (
                "log".to_string(),
                Json::Arr(self.log.iter().map(|s| Json::Str(s.clone())).collect()),
            ),
        ])
    }
}

/// Parse a bench file: one JSON entry per non-blank line.
fn load_entries(path: &Path) -> Result<Vec<Json>, GateError> {
    let text = std::fs::read_to_string(path).map_err(|e| GateError::Unreadable {
        path: path.to_path_buf(),
        error: e.to_string(),
    })?;
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let entry = Json::parse(line).map_err(|error| GateError::MalformedLine {
            path: path.to_path_buf(),
            line: lineno + 1,
            error,
        })?;
        entries.push(entry);
    }
    Ok(entries)
}

/// The `(seed, jobs)` identity of a bench entry; absent or null fields
/// compare as `None`, mirroring the Python `entry.get(...)` semantics.
type BenchKey = (Option<u64>, Option<u64>);

fn key(entry: &Json) -> BenchKey {
    (
        entry.get("seed").and_then(Json::as_u64),
        entry.get("jobs").and_then(Json::as_u64),
    )
}

fn label(k: BenchKey) -> String {
    let fmt = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |n| n.to_string());
    format!("seed={} jobs={}", fmt(k.0), fmt(k.1))
}

/// The entry's `total_ms`, or the typed error naming the offending side.
fn total_ms(entry: &Json, path: &Path, what: &'static str) -> Result<f64, GateError> {
    entry
        .get("total_ms")
        .and_then(Json::as_f64)
        .ok_or_else(|| GateError::MissingTotalMs {
            path: path.to_path_buf(),
            what,
            keys: entry
                .as_obj()
                .map(|fields| fields.iter().map(|(k, _)| k.clone()).collect())
                .unwrap_or_default(),
        })
}

/// Run the gate: compare the fresh entries of `candidate` (everything past
/// the length of `baseline`) against the latest committed entry per
/// `(seed, jobs)` key. `threshold` is the maximum tolerated fractional
/// `total_ms` growth (0.25 = +25%); `alloc_threshold` is the maximum
/// tolerated fractional growth of a gated stage's allocated bytes
/// (`stage_alloc` in the bench entries — deterministic, so a tight gate
/// holds without flake).
pub fn run_gate(
    baseline: &Path,
    candidate: &Path,
    threshold: f64,
    alloc_threshold: f64,
) -> Result<GateReport, GateError> {
    let base_entries = load_entries(baseline)?;
    let cand_entries = load_entries(candidate)?;
    if cand_entries.len() <= base_entries.len() {
        return Err(GateError::NoFreshEntries);
    }
    let fresh = &cand_entries[base_entries.len()..];

    // Latest committed entry per (seed, jobs) wins.
    let mut committed: Vec<(BenchKey, &Json)> = Vec::new();
    for entry in &base_entries {
        let k = key(entry);
        if let Some(slot) = committed.iter_mut().find(|(ck, _)| *ck == k) {
            slot.1 = entry;
        } else {
            committed.push((k, entry));
        }
    }

    let mut report = GateReport {
        threshold,
        alloc_threshold,
        ..GateReport::default()
    };
    for entry in fresh {
        let k = key(entry);
        let lbl = label(k);
        let Some((_, base)) = committed.iter().find(|(ck, _)| *ck == k) else {
            let ms = total_ms(entry, candidate, "fresh")?;
            report.log.push(format!(
                "{lbl}: no committed baseline, recording {ms} ms (not gated)"
            ));
            continue;
        };
        let entry_total = total_ms(entry, candidate, "fresh")?;
        let base_total = total_ms(base, baseline, "baseline")?;
        let ratio = if base_total == 0.0 {
            f64::INFINITY
        } else {
            entry_total / base_total
        };
        let regressed = ratio > 1.0 + threshold;
        report.log.push(format!(
            "{lbl}: {base_total} ms -> {entry_total} ms ({:+.1}% vs baseline) {}",
            (ratio - 1.0) * 100.0,
            if regressed { "REGRESSION" } else { "ok" }
        ));
        // Stage-level context for both, and the vanished-stage check.
        let stages = |e: &Json| -> Vec<(String, f64)> {
            e.get("stages")
                .and_then(Json::as_obj)
                .map(|fields| {
                    fields
                        .iter()
                        .filter_map(|(name, v)| v.as_f64().map(|ms| (name.clone(), ms)))
                        .collect()
                })
                .unwrap_or_default()
        };
        let entry_stages = stages(entry);
        let base_stages = stages(base);
        for (stage, ms) in &entry_stages {
            if let Some((_, base_ms)) = base_stages.iter().find(|(n, _)| n == stage) {
                // Gated stages regress the whole gate on their own: the
                // render path must not quietly reabsorb the wall time the
                // shared index bought back.
                let gated = GATED_STAGES.contains(&stage.as_str());
                let stage_ratio = if *base_ms == 0.0 {
                    if *ms == 0.0 {
                        1.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    ms / base_ms
                };
                let stage_regressed = gated && stage_ratio > 1.0 + threshold;
                report.log.push(format!(
                    "  {stage}: {base_ms} ms -> {ms} ms{}",
                    if stage_regressed { " REGRESSION" } else { "" }
                ));
                if stage_regressed {
                    report.failures.push(format!(
                        "{lbl} (stage {stage} {:+.1}%)",
                        (stage_ratio - 1.0) * 100.0
                    ));
                }
            }
        }
        // Per-stage allocation bytes: deterministic for a fixed seed, so
        // any growth is a real change. Gated stages fail the gate beyond
        // the alloc threshold; other stages are logged for context.
        let stage_alloc = |e: &Json| -> Vec<(String, u64)> {
            e.get("stage_alloc")
                .and_then(Json::as_obj)
                .map(|fields| {
                    fields
                        .iter()
                        .filter_map(|(name, v)| v.as_u64().map(|b| (name.clone(), b)))
                        .collect()
                })
                .unwrap_or_default()
        };
        let entry_alloc = stage_alloc(entry);
        let base_alloc = stage_alloc(base);
        for (stage, bytes) in &entry_alloc {
            if let Some((_, base_bytes)) = base_alloc.iter().find(|(n, _)| n == stage) {
                if bytes == base_bytes {
                    continue;
                }
                let gated = GATED_STAGES.contains(&stage.as_str());
                let alloc_ratio = if *base_bytes == 0 {
                    f64::INFINITY
                } else {
                    *bytes as f64 / *base_bytes as f64
                };
                let alloc_regressed = gated && alloc_ratio > 1.0 + alloc_threshold;
                report.log.push(format!(
                    "  {stage}: {base_bytes} B -> {bytes} B allocated{}",
                    if alloc_regressed { " REGRESSION" } else { "" }
                ));
                if alloc_regressed {
                    report.failures.push(format!(
                        "{lbl} (stage {stage} alloc {:+.1}%)",
                        (alloc_ratio - 1.0) * 100.0
                    ));
                }
            }
        }
        // Exact output-byte equality: a perf entry pair carrying
        // `rendered_bytes` must agree to the byte; carrying it on only one
        // side is a typed error (half a check is no check).
        let bytes_of = |e: &Json| e.get("rendered_bytes").and_then(Json::as_u64);
        match (bytes_of(base), bytes_of(entry)) {
            (Some(base_bytes), Some(entry_bytes)) => {
                if base_bytes != entry_bytes {
                    report.log.push(format!(
                        "{lbl}: rendered_bytes changed: {base_bytes} -> {entry_bytes}"
                    ));
                    report.byte_mismatches.push(lbl.clone());
                }
            }
            (None, None) => {}
            (half, _) => {
                let (path, what, e) = if half.is_none() {
                    (baseline, "baseline", *base)
                } else {
                    (candidate, "fresh", entry)
                };
                return Err(GateError::MissingRenderedBytes {
                    path: path.to_path_buf(),
                    what,
                    keys: e
                        .as_obj()
                        .map(|fields| fields.iter().map(|(k, _)| k.clone()).collect())
                        .unwrap_or_default(),
                });
            }
        }
        let mut gone: Vec<&str> = base_stages
            .iter()
            .filter(|(n, _)| !entry_stages.iter().any(|(en, _)| en == n))
            .map(|(n, _)| n.as_str())
            .collect();
        gone.sort_unstable();
        if !gone.is_empty() {
            report.log.push(format!(
                "{lbl}: stage(s) present in baseline but missing from candidate: {}",
                gone.join(", ")
            ));
            report
                .failures
                .push(format!("{lbl} (missing stages: {})", gone.join(", ")));
        }
        if regressed {
            report.failures.push(lbl);
        }
    }
    Ok(report)
}
