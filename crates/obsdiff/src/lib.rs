//! `alexa-obsdiff` — cross-run comparison of run-ledger bundles and the
//! bench regression gate.
//!
//! The `obs-diff` binary has three subcommands:
//!
//! * `obs-diff diff A B` loads two run-ledger bundles (directories written
//!   by `repro --run-dir`, see `alexa_obs::bundle`) and reports every
//!   difference: per-stage work deltas, counter drift (including `fault.*`),
//!   aggregate shifts, percentile/histogram movement, coverage regressions,
//!   and added/removed stages, shards or spans. Two bundles from the same
//!   `(seed, fault profile)` must diff clean — CI relies on it.
//! * `obs-diff gate --baseline B --candidate C` is the bench regression
//!   gate over `BENCH_audit.json` (JSON-lines appended by `repro --bench`),
//!   a typed-error Rust port of the retired `ci/bench_gate.py`.
//! * `obs-diff campaign DIR` re-verifies a campaign directory written by
//!   `repro campaign` from nothing but its files: every listed cell bundle
//!   loads, records the campaign's plan hash / cell identity / digest, and
//!   instances of one identity diff clean across `jobs` and `repeat`.
//!
//! Everything here only *reads* observability artifacts; nothing feeds back
//! into a run, so the determinism contract is untouched.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod campaign;
pub mod diff;
pub mod gate;

pub use bundle::{load_bundle, BundleError, LoadedBundle};
pub use campaign::{check_campaign, CampaignCheck, CampaignCheckError};
pub use diff::{diff_bundles, DiffOptions, DiffReport, Finding, Severity};
pub use gate::{run_gate, GateError, GateReport};
