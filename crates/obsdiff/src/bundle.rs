//! Loading run-ledger bundles from disk with typed errors.

use alexa_obs::bundle::{
    MANIFEST_FILE, MEMORY_FILE, METRICS_FILE, PROFILE_FILE, SCHEMA_VERSION, TRACE_FILE,
};
use alexa_obs::{Json, JsonParseError};
use std::fmt;
use std::path::{Path, PathBuf};

/// Why a bundle could not be loaded. Every variant names the offending file
/// so CI output points straight at the artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum BundleError {
    /// A bundle file is missing or unreadable.
    Unreadable {
        /// The file that failed to read.
        path: PathBuf,
        /// The I/O error text.
        error: String,
    },
    /// A bundle JSON document failed to parse.
    Malformed {
        /// The file that failed to parse.
        path: PathBuf,
        /// Position and cause of the parse failure.
        error: JsonParseError,
    },
    /// A required manifest field is absent or has the wrong type.
    MissingField {
        /// The file the field was expected in.
        path: PathBuf,
        /// The dotted field name.
        field: &'static str,
    },
    /// The bundle was written by an incompatible schema version.
    SchemaMismatch {
        /// The manifest that declared the version.
        path: PathBuf,
        /// The version found in the manifest.
        found: u64,
    },
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::Unreadable { path, error } => {
                write!(f, "cannot read {}: {error}", path.display())
            }
            BundleError::Malformed { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            BundleError::MissingField { path, field } => {
                write!(f, "{}: missing or mistyped field {field:?}", path.display())
            }
            BundleError::SchemaMismatch { path, found } => write!(
                f,
                "{}: bundle schema {found} unsupported (this tool reads schema {SCHEMA_VERSION})",
                path.display()
            ),
        }
    }
}

/// One run-ledger bundle, fully parsed.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedBundle {
    /// The directory the bundle was read from.
    pub dir: PathBuf,
    /// `manifest.json`, parsed.
    pub manifest: Json,
    /// `metrics.json`, parsed.
    pub metrics: Json,
    /// `trace.json`, parsed.
    pub trace: Json,
    /// `memory.json`, parsed.
    pub memory: Json,
    /// `profile.folded`, verbatim.
    pub profile: String,
}

impl LoadedBundle {
    /// The run's master seed.
    pub fn seed(&self) -> Option<u64> {
        self.manifest.get("seed").and_then(Json::as_u64)
    }

    /// The run's fault-profile name.
    pub fn fault_profile(&self) -> Option<&str> {
        self.manifest.get("fault_profile").and_then(Json::as_str)
    }

    /// The run's observations digest (fixed-width hex).
    pub fn observations_digest(&self) -> Option<&str> {
        self.manifest
            .get("observations_digest")
            .and_then(Json::as_str)
    }

    /// The embedded coverage report, when the run tracked coverage.
    pub fn coverage(&self) -> Option<&Json> {
        self.manifest.get("coverage")
    }
}

/// Read one JSON document of a bundle.
fn read_json(dir: &Path, file: &str) -> Result<Json, BundleError> {
    let path = dir.join(file);
    let text = std::fs::read_to_string(&path).map_err(|e| BundleError::Unreadable {
        path: path.clone(),
        error: e.to_string(),
    })?;
    Json::parse(text.trim_end()).map_err(|error| BundleError::Malformed { path, error })
}

/// Load and validate a bundle directory written by `repro --run-dir`.
///
/// Validation covers readability, JSON well-formedness, the manifest's
/// required fields, and the schema version of all four JSON documents.
pub fn load_bundle(dir: &Path) -> Result<LoadedBundle, BundleError> {
    let manifest = read_json(dir, MANIFEST_FILE)?;
    let manifest_path = dir.join(MANIFEST_FILE);
    for field in ["seed", "fault_profile", "observations_digest"] {
        if manifest.get(field).is_none() {
            return Err(BundleError::MissingField {
                path: manifest_path.clone(),
                field,
            });
        }
    }
    let metrics = read_json(dir, METRICS_FILE)?;
    let trace = read_json(dir, TRACE_FILE)?;
    let memory = read_json(dir, MEMORY_FILE)?;
    for (doc, file) in [
        (&manifest, MANIFEST_FILE),
        (&metrics, METRICS_FILE),
        (&trace, TRACE_FILE),
        (&memory, MEMORY_FILE),
    ] {
        match doc.get("schema").and_then(Json::as_u64) {
            Some(SCHEMA_VERSION) => {}
            Some(found) => {
                return Err(BundleError::SchemaMismatch {
                    path: dir.join(file),
                    found,
                })
            }
            None => {
                return Err(BundleError::MissingField {
                    path: dir.join(file),
                    field: "schema",
                })
            }
        }
    }
    let profile_path = dir.join(PROFILE_FILE);
    let profile = std::fs::read_to_string(&profile_path).map_err(|e| BundleError::Unreadable {
        path: profile_path,
        error: e.to_string(),
    })?;
    Ok(LoadedBundle {
        dir: dir.to_path_buf(),
        manifest,
        metrics,
        trace,
        memory,
        profile,
    })
}
