//! Bench gate semantics: one test per verdict and per typed failure mode of
//! the retired `ci/bench_gate.py`.

use alexa_obsdiff::{run_gate, GateError};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static FILE_SEQ: AtomicU64 = AtomicU64::new(0);

fn bench_file(tag: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "obsdiff-gate-{}-{tag}-{}.json",
        std::process::id(),
        FILE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, content).expect("write bench file");
    path
}

fn entry(seed: u64, jobs: &str, total_ms: u64, stages: &str) -> String {
    format!(
        "{{\"seed\": {seed}, \"jobs\": {jobs}, \"total_ms\": {total_ms}, \"stages\": {{{stages}}}}}\n"
    )
}

#[test]
fn within_threshold_passes() {
    let base = entry(7, "null", 1000, "\"avs.pass\": 100");
    let cand = format!("{base}{}", entry(7, "null", 1200, "\"avs.pass\": 120"));
    let baseline = bench_file("pass-base", &base);
    let candidate = bench_file("pass-cand", &cand);
    let report = run_gate(&baseline, &candidate, 0.25, 0.10).expect("gate runs");
    assert!(report.passed());
    let human = report.render_human();
    assert!(human.contains("bench gate passed"));
    assert!(human.contains("avs.pass: 100 ms -> 120 ms"));
}

#[test]
fn regression_beyond_threshold_fails() {
    let base = entry(7, "null", 1000, "");
    let cand = format!("{base}{}", entry(7, "null", 1400, ""));
    let baseline = bench_file("reg-base", &base);
    let candidate = bench_file("reg-cand", &cand);
    let report = run_gate(&baseline, &candidate, 0.25, 0.10).expect("gate runs");
    assert!(!report.passed());
    assert_eq!(report.failures, vec!["seed=7 jobs=null".to_string()]);
    assert!(report.render_human().contains("REGRESSION"));
    // A looser threshold lets the same pair through.
    assert!(run_gate(&baseline, &candidate, 0.50, 0.10)
        .expect("gate runs")
        .passed());
}

#[test]
fn vanished_stages_fail_even_when_total_is_fine() {
    let base = entry(7, "4", 1000, "\"avs.pass\": 100, \"merge\": 5");
    let cand = format!("{base}{}", entry(7, "4", 1000, "\"avs.pass\": 100"));
    let baseline = bench_file("gone-base", &base);
    let candidate = bench_file("gone-cand", &cand);
    let report = run_gate(&baseline, &candidate, 0.25, 0.10).expect("gate runs");
    assert!(!report.passed());
    assert!(report.failures[0].contains("missing stages: merge"));
}

#[test]
fn fresh_entry_without_baseline_is_recorded_not_gated() {
    let base = entry(7, "null", 1000, "");
    let cand = format!("{base}{}", entry(99, "null", 9000, ""));
    let baseline = bench_file("new-base", &base);
    let candidate = bench_file("new-cand", &cand);
    let report = run_gate(&baseline, &candidate, 0.25, 0.10).expect("gate runs");
    assert!(report.passed());
    assert!(report.render_human().contains("no committed baseline"));
}

#[test]
fn latest_committed_entry_per_key_wins() {
    // Two baseline entries for the same key: only the later (fast) one
    // gates, so a candidate near the older slow figure fails.
    let base = format!(
        "{}{}",
        entry(7, "null", 4000, ""),
        entry(7, "null", 1000, "")
    );
    let cand = format!("{base}{}", entry(7, "null", 3000, ""));
    let baseline = bench_file("latest-base", &base);
    let candidate = bench_file("latest-cand", &cand);
    let report = run_gate(&baseline, &candidate, 0.25, 0.10).expect("gate runs");
    assert!(!report.passed());
}

#[test]
fn unreadable_file_is_a_typed_error() {
    let cand = bench_file("unread-cand", &entry(7, "null", 1000, ""));
    let missing = std::env::temp_dir().join("obsdiff-gate-definitely-absent.json");
    match run_gate(&missing, &cand, 0.25, 0.10) {
        Err(GateError::Unreadable { path, .. }) => assert_eq!(path, missing),
        other => panic!("expected Unreadable, got {other:?}"),
    }
    let msg = GateError::Unreadable {
        path: missing,
        error: "x".into(),
    }
    .to_string();
    assert!(msg.contains("repro --bench"), "hint missing: {msg}");
}

#[test]
fn malformed_line_reports_its_line_number() {
    let baseline = bench_file("mal-base", &entry(7, "null", 1000, ""));
    let candidate = bench_file(
        "mal-cand",
        &format!("{}\nnot json at all\n", entry(7, "null", 1000, "").trim()),
    );
    match run_gate(&baseline, &candidate, 0.25, 0.10) {
        Err(GateError::MalformedLine { line, path, .. }) => {
            assert_eq!(line, 2);
            assert_eq!(path, candidate);
        }
        other => panic!("expected MalformedLine, got {other:?}"),
    }
}

#[test]
fn missing_total_ms_names_the_offending_side() {
    // Fresh entry lacks total_ms.
    let base = entry(7, "null", 1000, "");
    let cand = format!("{base}{{\"seed\": 7, \"jobs\": null}}\n");
    let baseline = bench_file("nototal-base", &base);
    let candidate = bench_file("nototal-cand", &cand);
    match run_gate(&baseline, &candidate, 0.25, 0.10) {
        Err(GateError::MissingTotalMs { what, keys, .. }) => {
            assert_eq!(what, "fresh");
            assert_eq!(keys, vec!["seed".to_string(), "jobs".to_string()]);
        }
        other => panic!("expected MissingTotalMs, got {other:?}"),
    }
    // Baseline entry lacks total_ms.
    let base2 = "{\"seed\": 7, \"jobs\": null}\n".to_string();
    let cand2 = format!("{base2}{}", entry(7, "null", 1000, ""));
    let baseline2 = bench_file("nototal-base2", &base2);
    let candidate2 = bench_file("nototal-cand2", &cand2);
    match run_gate(&baseline2, &candidate2, 0.25, 0.10) {
        Err(GateError::MissingTotalMs { what, .. }) => assert_eq!(what, "baseline"),
        other => panic!("expected MissingTotalMs, got {other:?}"),
    }
}

#[test]
fn no_fresh_entries_is_a_typed_error() {
    let content = entry(7, "null", 1000, "");
    let baseline = bench_file("nofresh-base", &content);
    let candidate = bench_file("nofresh-cand", &content);
    match run_gate(&baseline, &candidate, 0.25, 0.10) {
        Err(GateError::NoFreshEntries) => {}
        other => panic!("expected NoFreshEntries, got {other:?}"),
    }
}

#[test]
fn gated_stage_regression_fails_even_when_total_is_fine() {
    // render.all triples while total_ms stays flat (other stages absorbed
    // the difference): the per-stage gate must still fail.
    let base = entry(7, "1", 1000, "\"render.all\": 100, \"persona.shards\": 900");
    let cand = format!(
        "{base}{}",
        entry(7, "1", 1000, "\"render.all\": 300, \"persona.shards\": 700")
    );
    let baseline = bench_file("stage-base", &base);
    let candidate = bench_file("stage-cand", &cand);
    let report = run_gate(&baseline, &candidate, 0.25, 0.10).expect("gate runs");
    assert!(!report.passed());
    assert!(
        report.failures[0].contains("stage render.all"),
        "{:?}",
        report.failures
    );
    assert!(report
        .render_human()
        .contains("render.all: 100 ms -> 300 ms REGRESSION"));
    // Non-gated stages may swing freely: shrink render.all, triple another.
    let cand2 = format!(
        "{base}{}",
        entry(
            7,
            "1",
            1000,
            "\"render.all\": 100, \"persona.shards\": 2700"
        )
    );
    let candidate2 = bench_file("stage-cand2", &cand2);
    assert!(run_gate(&baseline, &candidate2, 0.25, 0.10)
        .expect("gate runs")
        .passed());
}

fn entry_with_bytes(seed: u64, total_ms: u64, bytes: u64) -> String {
    format!("{{\"seed\": {seed}, \"jobs\": 1, \"total_ms\": {total_ms}, \"rendered_bytes\": {bytes}, \"stages\": {{}}}}\n")
}

#[test]
fn rendered_bytes_mismatch_fails_with_its_own_json_field() {
    use alexa_obs::Json;
    let base = entry_with_bytes(7, 1000, 36392);
    let cand = format!("{base}{}", entry_with_bytes(7, 1000, 36400));
    let baseline = bench_file("bytes-base", &base);
    let candidate = bench_file("bytes-cand", &cand);
    let report = run_gate(&baseline, &candidate, 0.25, 0.10).expect("gate runs");
    assert!(!report.passed());
    assert!(report.failures.is_empty(), "not a timing failure");
    assert_eq!(report.byte_mismatches, vec!["seed=7 jobs=1".to_string()]);
    assert!(report
        .render_human()
        .contains("rendered_bytes changed: 36392 -> 36400"));
    let parsed = Json::parse(&report.to_json().render()).expect("parses");
    assert_eq!(parsed.get("passed").and_then(Json::as_bool), Some(false));
    assert_eq!(
        parsed
            .get("rendered_bytes_mismatches")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(1)
    );
}

#[test]
fn rendered_bytes_equal_passes() {
    let base = entry_with_bytes(7, 1000, 36392);
    let cand = format!("{base}{}", entry_with_bytes(7, 1100, 36392));
    let baseline = bench_file("byteseq-base", &base);
    let candidate = bench_file("byteseq-cand", &cand);
    assert!(run_gate(&baseline, &candidate, 0.25, 0.10)
        .expect("gate runs")
        .passed());
}

#[test]
fn rendered_bytes_on_one_side_only_is_a_typed_error() {
    // Baseline predates the field, candidate carries it: typed error naming
    // the incomplete side rather than a silent skip.
    let base = entry(7, "1", 1000, "");
    let cand = format!("{base}{}", entry_with_bytes(7, 1000, 36392));
    let baseline = bench_file("byteshalf-base", &base);
    let candidate = bench_file("byteshalf-cand", &cand);
    match run_gate(&baseline, &candidate, 0.25, 0.10) {
        Err(GateError::MissingRenderedBytes { what, .. }) => assert_eq!(what, "baseline"),
        other => panic!("expected MissingRenderedBytes, got {other:?}"),
    }
    let msg = GateError::MissingRenderedBytes {
        path: std::path::PathBuf::from("x"),
        what: "baseline",
        keys: vec![],
    }
    .to_string();
    assert!(msg.contains("rendered_bytes"), "{msg}");
}

#[test]
fn json_format_carries_verdict_failures_and_log() {
    use alexa_obs::Json;
    let base = entry(7, "2", 1000, "");
    let cand = format!("{base}{}", entry(7, "2", 2000, ""));
    let baseline = bench_file("json-base", &base);
    let candidate = bench_file("json-cand", &cand);
    let report = run_gate(&baseline, &candidate, 0.25, 0.10).expect("gate runs");
    let parsed = Json::parse(&report.to_json().render()).expect("parses");
    assert_eq!(parsed.get("passed").and_then(Json::as_bool), Some(false));
    assert_eq!(
        parsed
            .get("failures")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(1)
    );
    assert!(!parsed
        .get("log")
        .and_then(Json::as_arr)
        .expect("log array")
        .is_empty());
}

/// A bench entry carrying a `stage_alloc` map (deterministic allocation
/// bytes per stage) alongside the wall-clock stages.
fn entry_with_alloc(seed: u64, total_ms: u64, render_alloc: u64, merge_alloc: u64) -> String {
    format!(
        "{{\"seed\": {seed}, \"jobs\": 1, \"total_ms\": {total_ms}, \
         \"stages\": {{\"render.all\": 10, \"merge\": 1}}, \
         \"stage_alloc\": {{\"render.all\": {render_alloc}, \"merge\": {merge_alloc}}}}}\n"
    )
}

#[test]
fn alloc_regression_on_gated_stage_fails() {
    // render.all allocation grows 20% — beyond the 10% alloc gate — while
    // wall-clock is unchanged. The gate must fail on the alloc axis alone.
    let base = entry_with_alloc(7, 1000, 1_000_000, 500);
    let cand = format!("{base}{}", entry_with_alloc(7, 1000, 1_200_000, 500));
    let baseline = bench_file("alloc-reg-base", &base);
    let candidate = bench_file("alloc-reg-cand", &cand);
    let report = run_gate(&baseline, &candidate, 0.25, 0.10).expect("gate runs");
    assert!(!report.passed());
    assert_eq!(report.failures.len(), 1);
    assert!(
        report.failures[0].contains("stage render.all alloc +20.0%"),
        "{:?}",
        report.failures
    );
    assert!(report
        .render_human()
        .contains("render.all: 1000000 B -> 1200000 B allocated REGRESSION"));
    // A looser alloc threshold lets the same pair through.
    assert!(run_gate(&baseline, &candidate, 0.25, 0.30)
        .expect("gate runs")
        .passed());
}

#[test]
fn alloc_growth_within_threshold_passes_and_is_logged() {
    let base = entry_with_alloc(7, 1000, 1_000_000, 500);
    let cand = format!("{base}{}", entry_with_alloc(7, 1000, 1_050_000, 500));
    let baseline = bench_file("alloc-ok-base", &base);
    let candidate = bench_file("alloc-ok-cand", &cand);
    let report = run_gate(&baseline, &candidate, 0.25, 0.10).expect("gate runs");
    assert!(report.passed());
    assert!(report
        .render_human()
        .contains("render.all: 1000000 B -> 1050000 B allocated"));
}

#[test]
fn alloc_regression_on_ungated_stage_is_logged_not_gated() {
    // merge is not in GATED_STAGES: even a 10x allocation jump only logs.
    let base = entry_with_alloc(7, 1000, 1_000_000, 500);
    let cand = format!("{base}{}", entry_with_alloc(7, 1000, 1_000_000, 5000));
    let baseline = bench_file("alloc-ungated-base", &base);
    let candidate = bench_file("alloc-ungated-cand", &cand);
    let report = run_gate(&baseline, &candidate, 0.25, 0.10).expect("gate runs");
    assert!(report.passed());
    assert!(report
        .render_human()
        .contains("merge: 500 B -> 5000 B allocated"));
}

#[test]
fn entries_without_stage_alloc_are_tolerated() {
    // Committed baselines that predate the memory plane carry no
    // `stage_alloc`; the gate must not demand it the way it demands
    // `rendered_bytes`.
    let base = entry(7, "1", 1000, "\"render.all\": 10");
    let cand = format!("{base}{}", entry_with_alloc(7, 1000, 1_000_000, 500));
    let baseline = bench_file("alloc-miss-base", &base);
    let candidate = bench_file("alloc-miss-cand", &cand);
    let report = run_gate(&baseline, &candidate, 0.25, 0.10).expect("gate runs");
    assert!(report.passed());
}
