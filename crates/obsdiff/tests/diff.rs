//! Bundle diff engine: synthetic pairs covering the verdict space, plus a
//! real-audit round-trip.

use alexa_audit::{AuditConfig, AuditRun};
use alexa_obs::bundle::{write_bundle, BundleSpec, MANIFEST_FILE};
use alexa_obs::{Json, Recorder};
use alexa_obsdiff::{diff_bundles, load_bundle, BundleError, DiffOptions, Severity};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "obsdiff-test-{}-{tag}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec(seed: u64) -> BundleSpec {
    BundleSpec {
        seed,
        fault_profile: "none".into(),
        defense: None,
        campaign: None,
        observations_digest: 0x1234_5678 ^ seed,
        coverage: None,
    }
}

/// A tiny synthetic run: one stage, one shard, configurable work.
fn synthetic(dir: &Path, seed: u64, install_work: u64, extra_stage: bool) {
    let rec = Recorder::new();
    rec.stage("persona.shards", || {
        let mut log = rec.shard("persona", 0, "Vanilla");
        log.span("install", |l| l.work(install_work));
        log.add("crawl.visits", 40 + install_work / 100);
        rec.submit(log);
    });
    if extra_stage {
        rec.stage("policy.download", || {});
    }
    write_bundle(dir, &spec(seed), &rec.report()).expect("bundle write");
}

#[test]
fn identical_bundles_diff_clean_with_zero_findings() {
    let (da, db) = (fresh_dir("id-a"), fresh_dir("id-b"));
    synthetic(&da, 7, 100, true);
    synthetic(&db, 7, 100, true);
    let a = load_bundle(&da).expect("load a");
    let b = load_bundle(&db).expect("load b");
    let report = diff_bundles(&a, &b, &DiffOptions::default());
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.clean());
    assert!(report.render_human().contains("bundles equivalent"));
}

#[test]
fn growth_beyond_threshold_is_a_regression() {
    let (da, db) = (fresh_dir("reg-a"), fresh_dir("reg-b"));
    synthetic(&da, 7, 100, false);
    synthetic(&db, 7, 200, false); // +100% work
    let a = load_bundle(&da).expect("load a");
    let b = load_bundle(&db).expect("load b");
    let report = diff_bundles(&a, &b, &DiffOptions::default());
    assert!(report.has_regression());
    assert!(report
        .findings
        .iter()
        .any(|f| f.category == "stage-work" && f.severity == Severity::Regression));
    // The digest differs with identical seed/profile: a determinism break.
    // (The synthetic specs share the digest for equal seeds, so none here.)
    assert!(!report.findings.iter().any(|f| f.category == "determinism"));
}

#[test]
fn growth_within_threshold_is_drift_not_regression() {
    let (da, db) = (fresh_dir("drift-a"), fresh_dir("drift-b"));
    synthetic(&da, 7, 100, false);
    synthetic(&db, 7, 110, false); // +10% < 25%
    let a = load_bundle(&da).expect("load a");
    let b = load_bundle(&db).expect("load b");
    let report = diff_bundles(&a, &b, &DiffOptions::default());
    assert!(!report.clean(), "drift must not be clean");
    assert!(!report.has_regression(), "{:?}", report.findings);
    // The same pair under a tighter threshold regresses.
    let tight = diff_bundles(
        &a,
        &b,
        &DiffOptions {
            max_regress_pct: 5.0,
            ..DiffOptions::default()
        },
    );
    assert!(tight.has_regression());
}

#[test]
fn removed_stage_is_a_regression() {
    let (da, db) = (fresh_dir("gone-a"), fresh_dir("gone-b"));
    synthetic(&da, 7, 100, true); // has policy.download
    synthetic(&db, 7, 100, false); // lost it
    let a = load_bundle(&da).expect("load a");
    let b = load_bundle(&db).expect("load b");
    let report = diff_bundles(&a, &b, &DiffOptions::default());
    assert!(report.findings.iter().any(|f| f.category == "stage-work"
        && f.severity == Severity::Regression
        && f.subject == "policy.download"));
    // The reverse direction reports an addition as a note only.
    let reverse = diff_bundles(&b, &a, &DiffOptions::default());
    assert!(reverse
        .findings
        .iter()
        .any(|f| f.subject == "policy.download" && f.severity == Severity::Note));
}

#[test]
fn digest_mismatch_with_equal_seed_is_a_determinism_regression() {
    let (da, db) = (fresh_dir("det-a"), fresh_dir("det-b"));
    let rec = Recorder::new();
    write_bundle(&da, &spec(7), &rec.report()).expect("write a");
    let mut other = spec(7);
    other.observations_digest ^= 1;
    write_bundle(&db, &other, &rec.report()).expect("write b");
    let a = load_bundle(&da).expect("load a");
    let b = load_bundle(&db).expect("load b");
    let report = diff_bundles(&a, &b, &DiffOptions::default());
    assert!(report
        .findings
        .iter()
        .any(|f| f.category == "determinism" && f.severity == Severity::Regression));
    // Different seeds: the same digest mismatch is only a note.
    let (dc, dd) = (fresh_dir("det-c"), fresh_dir("det-d"));
    write_bundle(&dc, &spec(7), &rec.report()).expect("write c");
    write_bundle(&dd, &spec(8), &rec.report()).expect("write d");
    let c = load_bundle(&dc).expect("load c");
    let d = load_bundle(&dd).expect("load d");
    let cross = diff_bundles(&c, &d, &DiffOptions::default());
    assert!(cross.clean(), "{:?}", cross.findings);
}

#[test]
fn coverage_ratio_drop_is_a_regression() {
    let cov = |observed: u64| {
        Json::Obj(vec![
            ("profile".to_string(), Json::Str("flaky".to_string())),
            (
                "sections".to_string(),
                Json::Obj(vec![(
                    "skill.installs".to_string(),
                    Json::Obj(vec![
                        ("observed".to_string(), Json::Int(observed)),
                        ("expected".to_string(), Json::Int(50)),
                    ]),
                )]),
            ),
            (
                "injected".to_string(),
                Json::Obj(vec![("install".to_string(), Json::Int(3))]),
            ),
            ("retries".to_string(), Json::Int(4)),
            ("backoff_ms".to_string(), Json::Int(100)),
            ("losses".to_string(), Json::Int(0)),
            ("degraded_shards".to_string(), Json::Arr(vec![])),
        ])
    };
    let (da, db) = (fresh_dir("cov-a"), fresh_dir("cov-b"));
    let rec = Recorder::new();
    let mut sa = spec(7);
    sa.fault_profile = "flaky".into();
    sa.coverage = Some(cov(50));
    let mut sb = sa.clone();
    sb.coverage = Some(cov(44));
    write_bundle(&da, &sa, &rec.report()).expect("write a");
    write_bundle(&db, &sb, &rec.report()).expect("write b");
    let a = load_bundle(&da).expect("load a");
    let b = load_bundle(&db).expect("load b");
    let report = diff_bundles(&a, &b, &DiffOptions::default());
    assert!(report
        .findings
        .iter()
        .any(|f| f.category == "coverage" && f.severity == Severity::Regression));
}

#[test]
fn malformed_manifest_is_a_typed_load_error() {
    let dir = fresh_dir("bad-manifest");
    synthetic(&dir, 7, 100, false);
    std::fs::write(dir.join(MANIFEST_FILE), "{\"seed\": 7,,}").expect("corrupt");
    match load_bundle(&dir) {
        Err(BundleError::Malformed { path, .. }) => {
            assert!(path.ends_with(MANIFEST_FILE));
        }
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn missing_bundle_file_is_unreadable() {
    let dir = fresh_dir("absent");
    match load_bundle(&dir) {
        Err(BundleError::Unreadable { path, .. }) => {
            assert!(path.ends_with(MANIFEST_FILE));
        }
        other => panic!("expected Unreadable, got {other:?}"),
    }
}

#[test]
fn manifest_without_required_fields_is_rejected() {
    let dir = fresh_dir("no-seed");
    synthetic(&dir, 7, 100, false);
    std::fs::write(
        dir.join(MANIFEST_FILE),
        "{\"schema\": 1, \"fault_profile\": \"none\", \"observations_digest\": \"00\"}\n",
    )
    .expect("rewrite");
    match load_bundle(&dir) {
        Err(BundleError::MissingField { field, .. }) => assert_eq!(field, "seed"),
        other => panic!("expected MissingField, got {other:?}"),
    }
}

#[test]
fn future_schema_versions_are_rejected() {
    let dir = fresh_dir("future");
    synthetic(&dir, 7, 100, false);
    std::fs::write(
        dir.join(MANIFEST_FILE),
        "{\"schema\": 99, \"seed\": 7, \"fault_profile\": \"none\", \"observations_digest\": \"00\"}\n",
    )
    .expect("rewrite");
    match load_bundle(&dir) {
        Err(BundleError::SchemaMismatch { found, .. }) => assert_eq!(found, 99),
        other => panic!("expected SchemaMismatch, got {other:?}"),
    }
}

#[test]
fn json_report_format_is_parseable_and_complete() {
    let (da, db) = (fresh_dir("json-a"), fresh_dir("json-b"));
    synthetic(&da, 7, 100, true);
    synthetic(&db, 7, 300, false);
    let a = load_bundle(&da).expect("load a");
    let b = load_bundle(&db).expect("load b");
    let report = diff_bundles(&a, &b, &DiffOptions::default());
    let rendered = report.to_json().render();
    let parsed = Json::parse(&rendered).expect("report JSON parses");
    assert_eq!(parsed.get("clean").and_then(Json::as_bool), Some(false));
    assert!(
        parsed
            .get("regressions")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1
    );
    assert!(!parsed
        .get("findings")
        .and_then(Json::as_arr)
        .expect("findings array")
        .is_empty());
}

/// The full loop the CI determinism job runs: a real (small) audit, traced,
/// written as a bundle, reloaded, and diffed against a second run at a
/// different worker count — must come back byte-identical and diff-clean.
#[test]
fn real_audit_bundle_round_trips_clean_across_worker_counts() {
    let run = |jobs: usize, tag: &str| {
        let rec = Recorder::new();
        let obs = AuditRun::execute_with(AuditConfig::small(7).with_jobs(Some(jobs)), &rec);
        let dir = fresh_dir(tag);
        let spec = BundleSpec {
            seed: 7,
            fault_profile: "none".into(),
            defense: None,
            campaign: None,
            observations_digest: obs.digest(),
            coverage: Some(obs.coverage.to_json()),
        };
        write_bundle(&dir, &spec, &rec.report()).expect("bundle write");
        dir
    };
    let (da, db) = (run(1, "real-j1"), run(4, "real-j4"));
    // Byte-identical bundle files across worker counts.
    for file in [
        "manifest.json",
        "metrics.json",
        "trace.json",
        "profile.folded",
    ] {
        let fa = std::fs::read(da.join(file)).expect("read a");
        let fb = std::fs::read(db.join(file)).expect("read b");
        assert_eq!(fa, fb, "{file} differs between jobs=1 and jobs=4");
    }
    // And the diff engine agrees: zero findings.
    let a = load_bundle(&da).expect("load a");
    let b = load_bundle(&db).expect("load b");
    let report = diff_bundles(&a, &b, &DiffOptions::default());
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}
