//! Property-based tests for the platform simulation.

use alexa_platform::storepage::{parse_invocation, parse_sample_utterances, render_store_page};
use alexa_platform::voice::{VoiceConfig, VoicePipeline};
use alexa_platform::{AlexaCloud, Marketplace, SkillCategory};
use proptest::prelude::*;

proptest! {
    // Marketplace generation is expensive; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn catalog_invariants_hold_for_any_seed(seed in 0u64..1_000_000) {
        let m = Marketplace::generate(seed);
        prop_assert_eq!(m.all().len(), 450);
        // Exactly 4 failures, never a pinned (backend-carrying) skill.
        let fails: Vec<_> = m.all().iter().filter(|s| s.fails_to_load).collect();
        prop_assert_eq!(fails.len(), 4);
        prop_assert!(fails.iter().all(|s| s.backends.is_empty()));
        // Policy marginals are seed-independent.
        prop_assert_eq!(m.all().iter().filter(|s| s.policy.has_link).count(), 214);
        prop_assert_eq!(m.all().iter().filter(|s| s.policy.has_document()).count(), 188);
        // Every category is exactly 50 strong.
        for cat in SkillCategory::ALL {
            prop_assert_eq!(m.all().iter().filter(|s| s.category == cat).count(), 50);
        }
        // Ids unique.
        let mut ids: Vec<&str> = m.all().iter().map(|s| s.id.0.as_str()).collect();
        ids.sort();
        let n = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), n);
    }

    #[test]
    fn store_pages_roundtrip_for_every_skill(seed in 0u64..100_000) {
        let m = Marketplace::generate(seed);
        for s in m.all().iter().take(40) {
            let page = render_store_page(s);
            let invocation = parse_invocation(&page);
            prop_assert_eq!(invocation.as_deref(), Some(s.invocation.as_str()));
            prop_assert_eq!(&parse_sample_utterances(&page), &s.sample_utterances);
        }
    }

    #[test]
    fn wake_word_phrases_always_wake(seed in 0u64..100_000, prefix in "[a-z ]{0,20}", suffix in "[a-z ]{0,20}") {
        let mut p = VoicePipeline::new(seed);
        let phrase = format!("{prefix} alexa {suffix}");
        prop_assert!(p.wakes(&phrase));
    }

    #[test]
    fn transcription_preserves_word_count(seed in 0u64..100_000, words in prop::collection::vec("[a-z]{1,8}", 1..12)) {
        let mut p = VoicePipeline::with_config(
            seed,
            VoiceConfig { word_error_rate: 0.5, ..VoiceConfig::default() },
        );
        let utterance = words.join(" ");
        let transcript = p.transcribe(&utterance);
        prop_assert_eq!(transcript.split_whitespace().count(), words.len());
    }

    #[test]
    fn session_traffic_is_deterministic_and_monotone(seed in 0u64..50_000) {
        let m = Marketplace::generate(seed);
        let skill = m.top_skills(SkillCategory::ConnectedCar, 1)[0];
        let gen = || {
            let mut cloud = AlexaCloud::new();
            cloud.session_traffic(
                "acct",
                "cid",
                skill,
                &alexa_platform::cloud::InteractionKind::Utterance("hello".into()),
                false,
            )
        };
        let a = gen();
        let b = gen();
        prop_assert_eq!(&a, &b);
        for w in a.windows(2) {
            prop_assert!(w[0].ts_ms <= w[1].ts_ms);
        }
    }
}
