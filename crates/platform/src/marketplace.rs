//! The Alexa skill marketplace: a deterministic 450-skill catalog.
//!
//! The paper audits the top-50 skills (by review count) of nine categories.
//! We reconstruct that catalog: every skill the paper names (Tables 1, 4,
//! 14, §5.3, §7.2) is **pinned** with its documented endpoints and policy
//! behaviour; the remaining slots are filled with synthetic skills whose
//! behaviour is sampled (seeded) so the catalog's marginals match the
//! paper's measurements:
//!
//! * 446 skills contact Amazon, 4 fail to load (Table 1);
//! * only Garmin and the YouVersion skills send traffic to vendor-owned
//!   domains (Table 1);
//! * ~32 skills contact non-Amazon endpoints at all (Table 14), with the
//!   per-persona advertising/tracking vs functional domain counts of
//!   Table 3;
//! * 326 skills collect persistent identifiers, 434 user preferences, 385
//!   device events (Table 13);
//! * 214 skills link a privacy policy, 188 retrievable, 59 mention
//!   Amazon/Alexa, 10 link Amazon's own policy (§7.1);
//! * per-data-type clear/vague disclosure counts of Table 13.

use crate::category::SkillCategory;
use crate::skill::{DisclosureLevel, Permission, PolicySpec, Skill, SkillId};
use alexa_net::{DataType, Domain, OrgMap};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Policy shape for a pinned skill.
#[derive(Clone, Copy, Debug)]
enum PinPolicy {
    /// No privacy-policy link on the marketplace page.
    None,
    /// Linked and retrievable, but generic: never mentions Amazon/Alexa.
    Generic,
    /// Linked, retrievable and mentions the platform.
    Platform {
        /// Links to Amazon's own privacy policy.
        links: bool,
        /// Quality of the disclosure of Amazon's data collection.
        amazon: DisclosureLevel,
    },
    /// Linked but the download fails (dead link).
    Broken,
}

/// A pinned (paper-named) skill.
struct Pin {
    name: &'static str,
    cat: SkillCategory,
    vendor: &'static str,
    backends: &'static [&'static str],
    streaming: bool,
    reviews: u32,
    policy: PinPolicy,
}

use DisclosureLevel::{Clear, Vague};
use PinPolicy::{Broken, Generic, None as NoPol, Platform};
use SkillCategory::*;

/// Every skill the paper names, with its documented behaviour.
const PINNED: &[Pin] = &[
    // ----- Connected Car ---------------------------------------------------
    Pin {
        name: "Garmin",
        cat: ConnectedCar,
        vendor: "Garmin International",
        backends: &[
            "static.garmincdn.com",
            "chtbl.com",
            "traffic.omny.fm",
            "dts.podtrac.com",
            "turnernetworksales.mc.tritondigital.com",
        ],
        streaming: true,
        reviews: 2143,
        policy: Platform {
            links: false,
            amazon: Vague,
        },
    },
    Pin {
        name: "My Tesla (Unofficial)",
        cat: ConnectedCar,
        vendor: "Apps4Autos",
        backends: &["chtbl.com", "traffic.megaphone.fm"],
        streaming: false,
        reviews: 812,
        policy: NoPol,
    },
    Pin {
        name: "Genesis",
        cat: ConnectedCar,
        vendor: "Genesis Motors USA",
        backends: &["play.podtrac.com", "ads.spotify.com"],
        streaming: false,
        reviews: 398,
        policy: Generic,
    },
    Pin {
        name: "FordPass",
        cat: ConnectedCar,
        vendor: "Ford Motor Company",
        backends: &[],
        streaming: false,
        reviews: 1650,
        policy: Generic,
    },
    Pin {
        name: "Jeep",
        cat: ConnectedCar,
        vendor: "FCA US LLC",
        backends: &[],
        streaming: false,
        reviews: 912,
        policy: Generic,
    },
    Pin {
        name: "AAA Road Service",
        cat: ConnectedCar,
        vendor: "AAA",
        backends: &[],
        streaming: false,
        reviews: 510,
        policy: NoPol,
    },
    // ----- Dating -----------------------------------------------------------
    Pin {
        name: "Dating and Relationship Tips and advices",
        cat: Dating,
        vendor: "Aaron Spelling",
        backends: &[
            "play.podtrac.com",
            "dcs.megaphone.fm",
            "traffic.megaphone.fm",
        ],
        streaming: true,
        reviews: 96,
        policy: NoPol,
    },
    Pin {
        name: "Love Trouble",
        cat: Dating,
        vendor: "Xeline Development",
        backends: &[
            "dts.podtrac.com",
            "audio-ads.spotify.com",
            "dcs.megaphone.fm",
        ],
        streaming: false,
        reviews: 61,
        policy: NoPol,
    },
    Pin {
        name: "Angry Girlfriend",
        cat: Dating,
        vendor: "GagWorks",
        backends: &["discovery.meethue.com"],
        streaming: false,
        reviews: 44,
        policy: NoPol,
    },
    Pin {
        name: "Crush Calculator",
        cat: Dating,
        vendor: "FunVoice Labs",
        backends: &["traffic.megaphone.fm"],
        streaming: true,
        reviews: 38,
        policy: NoPol,
    },
    Pin {
        name: "Date Night Ideas",
        cat: Dating,
        vendor: "FunVoice Labs",
        backends: &["dcs.megaphone.fm"],
        streaming: true,
        reviews: 29,
        policy: Generic,
    },
    // ----- Fashion & Style --------------------------------------------------
    Pin {
        name: "Makeup of the Day",
        cat: FashionStyle,
        vendor: "Xeline Development",
        backends: &[
            "dcs.megaphone.fm",
            "traffic.megaphone.fm",
            "play.podtrac.com",
            "chtbl.com",
            "play.pod.npr.org",
            "audio-sdk.spotify.com",
        ],
        streaming: true,
        reviews: 187,
        policy: NoPol,
    },
    Pin {
        name: "Men's Finest Daily Fashion Tip",
        cat: FashionStyle,
        vendor: "Men's Finest",
        backends: &[
            "play.podtrac.com",
            "dcs.megaphone.fm",
            "traffic.megaphone.fm",
            "ondemand.pod.npr.org",
            "analytics.spotify.com",
        ],
        streaming: false,
        reviews: 13,
        policy: NoPol,
    },
    Pin {
        name: "Gwynnie Bee",
        cat: FashionStyle,
        vendor: "Gwynnie Bee Inc",
        backends: &["dts.podtrac.com", "ads.spotify.com", "traffic.megaphone.fm"],
        streaming: false,
        reviews: 154,
        policy: Generic,
    },
    Pin {
        name: "Daily Style Report",
        cat: FashionStyle,
        vendor: "StyleMedia",
        backends: &[
            "dcs.megaphone.fm",
            "img.fashioncdn.net",
            "tips.fashioncdn.net",
        ],
        streaming: false,
        reviews: 77,
        policy: NoPol,
    },
    Pin {
        name: "Outfit Check!",
        cat: FashionStyle,
        vendor: "StyleCo",
        backends: &[],
        streaming: false,
        reviews: 208,
        policy: NoPol,
    },
    // ----- Pets & Animals ---------------------------------------------------
    Pin {
        name: "VCA Animal Hospitals",
        cat: PetsAnimals,
        vendor: "VCA Animal Hospitals",
        backends: &[
            "dillilabs.com",
            "wellness.petmedia.net",
            "locations.petmedia.net",
        ],
        streaming: false,
        reviews: 320,
        policy: Platform {
            links: false,
            amazon: Vague,
        },
    },
    Pin {
        name: "EcoSmart Live",
        cat: PetsAnimals,
        vendor: "EcoSmart",
        backends: &["dillilabs.com", "api.ecosmartlive.net"],
        streaming: false,
        reviews: 150,
        policy: NoPol,
    },
    Pin {
        name: "Dog Squeaky Toy",
        cat: PetsAnimals,
        vendor: "PetApps Co",
        backends: &["dillilabs.com", "sounds.squeakcdn.net"],
        streaming: false,
        reviews: 540,
        policy: Generic,
    },
    Pin {
        name: "Relax My Pet",
        cat: PetsAnimals,
        vendor: "PetApps Co",
        backends: &["dillilabs.com"],
        streaming: false,
        reviews: 410,
        policy: Generic,
    },
    Pin {
        name: "Dinosaur Sounds",
        cat: PetsAnimals,
        vendor: "PetApps Co",
        backends: &["dillilabs.com", "roar.soundlibrary.net"],
        streaming: false,
        reviews: 290,
        policy: NoPol,
    },
    Pin {
        name: "Cat Sounds",
        cat: PetsAnimals,
        vendor: "PetApps Co",
        backends: &["dillilabs.com"],
        streaming: false,
        reviews: 233,
        policy: NoPol,
    },
    Pin {
        name: "Hush Puppy",
        cat: PetsAnimals,
        vendor: "PetApps Co",
        backends: &["dillilabs.com"],
        streaming: false,
        reviews: 160,
        policy: NoPol,
    },
    Pin {
        name: "Calm My Dog",
        cat: PetsAnimals,
        vendor: "PetApps Co",
        backends: &["dillilabs.com"],
        streaming: false,
        reviews: 602,
        policy: Generic,
    },
    Pin {
        name: "Calm My Pet",
        cat: PetsAnimals,
        vendor: "PetApps Co",
        backends: &["dillilabs.com", "cdn.libsyn.com", "media.libsyn.com"],
        streaming: true,
        reviews: 488,
        policy: Generic,
    },
    Pin {
        name: "Al's Dog Training Tips",
        cat: PetsAnimals,
        vendor: "Al's Dog Training",
        backends: &[
            "cdn.libsyn.com",
            "media.libsyn.com",
            "traffic.megaphone.fm",
            "content.dogtrainingtips.net",
        ],
        streaming: true,
        reviews: 122,
        policy: NoPol,
    },
    Pin {
        name: "Relaxing Sounds: Spa Music",
        cat: PetsAnimals,
        vendor: "Invoked Apps LLC",
        backends: &["1432239411.rsc.cdn77.org", "spa-audio.cdnstream.net"],
        streaming: true,
        reviews: 1900,
        policy: Generic,
    },
    Pin {
        name: "Comfort My Dog",
        cat: PetsAnimals,
        vendor: "Invoked Apps LLC",
        backends: &["1432239411.rsc.cdn77.org", "calm.petwave.net"],
        streaming: true,
        reviews: 415,
        policy: Generic,
    },
    Pin {
        name: "Calm My Cat",
        cat: PetsAnimals,
        vendor: "Invoked Apps LLC",
        backends: &["1432239411.rsc.cdn77.org", "purr.petwave.net"],
        streaming: true,
        reviews: 260,
        policy: Generic,
    },
    Pin {
        name: "My Dog",
        cat: PetsAnimals,
        vendor: "PetVoice",
        backends: &[],
        streaming: false,
        reviews: 190,
        policy: NoPol,
    },
    Pin {
        name: "My Cat",
        cat: PetsAnimals,
        vendor: "PetVoice",
        backends: &[],
        streaming: false,
        reviews: 165,
        policy: NoPol,
    },
    Pin {
        name: "Pet Buddy",
        cat: PetsAnimals,
        vendor: "PetVoice",
        backends: &[],
        streaming: false,
        reviews: 105,
        policy: NoPol,
    },
    // ----- Religion & Spirituality -------------------------------------------
    Pin {
        name: "Charles Stanley Radio",
        cat: ReligionSpirituality,
        vendor: "In Touch Ministries",
        backends: &[
            "primary.streamtheworld.com",
            "backup.streamtheworld.com",
            "cdn2.voiceapps.com",
        ],
        streaming: true,
        reviews: 231,
        policy: Platform {
            links: false,
            amazon: Vague,
        },
    },
    Pin {
        name: "Gospel Radio Live",
        cat: ReligionSpirituality,
        vendor: "FaithStream",
        backends: &["live.streamtheworld.com", "primary.streamtheworld.com"],
        streaming: true,
        reviews: 98,
        policy: NoPol,
    },
    Pin {
        name: "Morning Praise Radio",
        cat: ReligionSpirituality,
        vendor: "FaithStream",
        backends: &["backup.streamtheworld.com"],
        streaming: true,
        reviews: 54,
        policy: NoPol,
    },
    Pin {
        name: "YouVersion Bible",
        cat: ReligionSpirituality,
        vendor: "Life Covenant Church, Inc.",
        backends: &["api.youversionapi.com", "cdn.youversionapi.com"],
        streaming: false,
        reviews: 3120,
        policy: Platform {
            links: true,
            amazon: Clear,
        },
    },
    Pin {
        name: "Lords Prayer",
        cat: ReligionSpirituality,
        vendor: "Life Covenant Church, Inc.",
        backends: &["api.youversionapi.com"],
        streaming: false,
        reviews: 220,
        policy: Generic,
    },
    Pin {
        name: "Say a Prayer",
        cat: ReligionSpirituality,
        vendor: "DailyGrace",
        backends: &["discovery.meethue.com"],
        streaming: false,
        reviews: 330,
        policy: NoPol,
    },
    Pin {
        name: "Prayer Time",
        cat: ReligionSpirituality,
        vendor: "Daily Devotion Co",
        backends: &["cdn2.voiceapps.com", "api.prayertimes.org"],
        streaming: false,
        reviews: 480,
        policy: Generic,
    },
    Pin {
        name: "Morning Bible Inspiration",
        cat: ReligionSpirituality,
        vendor: "Daily Devotion Co",
        backends: &["cdn2.voiceapps.com", "verses.scripturecdn.net"],
        streaming: false,
        reviews: 240,
        policy: NoPol,
    },
    Pin {
        name: "Holy Rosary",
        cat: ReligionSpirituality,
        vendor: "Daily Devotion Co",
        backends: &["cdn2.voiceapps.com", "audio.rosarycdn.net"],
        streaming: false,
        reviews: 410,
        policy: Generic,
    },
    Pin {
        name: "meal prayer",
        cat: ReligionSpirituality,
        vendor: "Daily Devotion Co",
        backends: &["cdn2.voiceapps.com", "content.graceprayers.net"],
        streaming: false,
        reviews: 130,
        policy: NoPol,
    },
    Pin {
        name: "Halloween Sounds",
        cat: ReligionSpirituality,
        vendor: "Daily Devotion Co",
        backends: &["cdn2.voiceapps.com", "spooky.soundlibrary.net"],
        streaming: false,
        reviews: 85,
        policy: NoPol,
    },
    Pin {
        name: "Bible Trivia",
        cat: ReligionSpirituality,
        vendor: "Daily Devotion Co",
        backends: &["cdn2.voiceapps.com", "questions.bibletrivia.net"],
        streaming: false,
        reviews: 505,
        policy: Generic,
    },
    Pin {
        name: "Single Decade Short Rosary",
        cat: ReligionSpirituality,
        vendor: "DailyGrace",
        backends: &[],
        streaming: false,
        reviews: 66,
        policy: NoPol,
    },
    Pin {
        name: "Islamic Prayer Times",
        cat: ReligionSpirituality,
        vendor: "Ummah Apps",
        backends: &[],
        streaming: false,
        reviews: 301,
        policy: NoPol,
    },
    Pin {
        name: "Salah Time",
        cat: ReligionSpirituality,
        vendor: "Ummah Apps",
        backends: &[],
        streaming: false,
        reviews: 147,
        policy: NoPol,
    },
    Pin {
        name: "Rain Storm by Healing FM",
        cat: ReligionSpirituality,
        vendor: "Healing FM",
        backends: &[],
        streaming: true,
        reviews: 710,
        policy: NoPol,
    },
    // ----- Smart Home ---------------------------------------------------------
    Pin {
        name: "Sonos",
        cat: SmartHome,
        vendor: "Sonos Inc",
        backends: &[],
        streaming: false,
        reviews: 2900,
        policy: Platform {
            links: true,
            amazon: Clear,
        },
    },
    Pin {
        name: "Dyson",
        cat: SmartHome,
        vendor: "Dyson Limited",
        backends: &[],
        streaming: false,
        reviews: 860,
        policy: Generic,
    },
    Pin {
        name: "Harmony",
        cat: SmartHome,
        vendor: "Logitech",
        backends: &[],
        streaming: false,
        reviews: 4100,
        policy: Platform {
            links: false,
            amazon: Vague,
        },
    },
    Pin {
        name: "Hue",
        cat: SmartHome,
        vendor: "Philips International B.V.",
        backends: &[],
        streaming: false,
        reviews: 3300,
        policy: Generic,
    },
    Pin {
        name: "SimpliSafe",
        cat: SmartHome,
        vendor: "SimpliSafe",
        backends: &[],
        streaming: false,
        reviews: 690,
        policy: Generic,
    },
    Pin {
        name: "SmartThings",
        cat: SmartHome,
        vendor: "Samsung",
        backends: &[],
        streaming: false,
        reviews: 2200,
        policy: Generic,
    },
    Pin {
        name: "LG ThinQ",
        cat: SmartHome,
        vendor: "LG",
        backends: &[],
        streaming: false,
        reviews: 540,
        policy: Generic,
    },
    Pin {
        name: "Xbox",
        cat: SmartHome,
        vendor: "Microsoft",
        backends: &[],
        streaming: false,
        reviews: 1700,
        policy: Generic,
    },
    Pin {
        name: "iRobot Home",
        cat: SmartHome,
        vendor: "iRobot",
        backends: &[],
        streaming: false,
        reviews: 980,
        policy: Generic,
    },
    // ----- Health & Fitness ---------------------------------------------------
    Pin {
        name: "Air Quality Report",
        cat: HealthFitness,
        vendor: "ICM",
        backends: &["data.airquality.net"],
        streaming: false,
        reviews: 410,
        policy: Broken,
    },
    Pin {
        name: "Essential Oil Benefits",
        cat: HealthFitness,
        vendor: "ttm",
        backends: &[],
        streaming: false,
        reviews: 175,
        policy: NoPol,
    },
];

/// Thematic noun pools for synthetic skill names, per category.
fn name_pool(cat: SkillCategory) -> (&'static [&'static str], &'static [&'static str]) {
    match cat {
        ConnectedCar => (
            &[
                "Road", "Drive", "Garage", "Fuel", "Traffic", "Auto", "Motor", "Highway",
            ],
            &[
                "Assistant",
                "Companion",
                "Tracker",
                "Alerts",
                "Facts",
                "Check",
                "Buddy",
                "Report",
            ],
        ),
        Dating => (
            &[
                "Romance", "Crush", "Flirt", "Heart", "Match", "Love", "Charm", "Spark",
            ],
            &[
                "Advice", "Quiz", "Lines", "Coach", "Tips", "Stories", "Helper", "Facts",
            ],
        ),
        FashionStyle => (
            &[
                "Style", "Trend", "Chic", "Wardrobe", "Glam", "Runway", "Couture", "Vogue",
            ],
            &[
                "Tips", "Daily", "Advisor", "Check", "Guide", "Facts", "Coach", "Quiz",
            ],
        ),
        PetsAnimals => (
            &[
                "Puppy", "Kitten", "Bird", "Animal", "Wildlife", "Horse", "Fish", "Hamster",
            ],
            &[
                "Sounds", "Facts", "Trivia", "Care", "Stories", "Friend", "Guide", "Quiz",
            ],
        ),
        ReligionSpirituality => (
            &[
                "Daily", "Peaceful", "Sacred", "Blessed", "Gospel", "Spirit", "Faith", "Grace",
            ],
            &[
                "Verse",
                "Devotion",
                "Meditation",
                "Hymns",
                "Psalms",
                "Reflection",
                "Wisdom",
                "Prayers",
            ],
        ),
        SmartHome => (
            &[
                "Home",
                "Light",
                "Thermostat",
                "Garage",
                "Plug",
                "Sensor",
                "Camera",
                "Blind",
            ],
            &[
                "Control", "Manager", "Helper", "Hub", "Scenes", "Routines", "Switch", "Monitor",
            ],
        ),
        WineBeverages => (
            &[
                "Wine", "Vineyard", "Cellar", "Brew", "Cocktail", "Coffee", "Tea", "Whiskey",
            ],
            &[
                "Pairing", "Facts", "Guide", "Journal", "Finder", "Tips", "Trivia", "Notes",
            ],
        ),
        HealthFitness => (
            &[
                "Workout",
                "Fitness",
                "Wellness",
                "Sleep",
                "Yoga",
                "Cardio",
                "Mindful",
                "Nutrition",
            ],
            &[
                "Coach", "Timer", "Tracker", "Tips", "Guide", "Routine", "Facts", "Helper",
            ],
        ),
        NavigationTripPlanners => (
            &[
                "Trip", "Route", "Commute", "Transit", "Flight", "Journey", "City", "Travel",
            ],
            &[
                "Planner", "Tracker", "Guide", "Times", "Alerts", "Finder", "Helper", "Facts",
            ],
        ),
    }
}

/// Sample utterances for synthetic skills, themed per category.
fn utterance_pool(cat: SkillCategory) -> &'static [&'static str] {
    match cat {
        ConnectedCar => &["where is my car", "lock the doors", "what is my fuel level"],
        Dating => &[
            "give me a dating tip",
            "tell me a pickup line",
            "rate my date idea",
        ],
        FashionStyle => &[
            "what should i wear today",
            "give me a fashion tip",
            "what is trending",
        ],
        PetsAnimals => &["play dog sounds", "tell me an animal fact", "calm my pet"],
        ReligionSpirituality => &["read the verse of the day", "say a prayer", "play a hymn"],
        SmartHome => &[
            "turn on the lights",
            "set the thermostat",
            "is the door locked",
        ],
        WineBeverages => &[
            "pair a wine with dinner",
            "tell me a wine fact",
            "how do i brew coffee",
        ],
        HealthFitness => &["start a workout", "give me a health tip", "track my steps"],
        NavigationTripPlanners => &[
            "plan my commute",
            "when is the next bus",
            "find a route home",
        ],
    }
}

/// The generated marketplace.
#[derive(Debug, Clone)]
pub struct Marketplace {
    skills: Vec<Skill>,
    music_skills: Vec<Skill>,
}

/// Number of skills installed per category (the paper's top-50).
pub const SKILLS_PER_CATEGORY: usize = 50;

impl Marketplace {
    /// Generate the full catalog from a seed. The same seed always yields an
    /// identical catalog.
    ///
    /// ```
    /// use alexa_platform::{Marketplace, SkillCategory};
    /// let market = Marketplace::generate(42);
    /// assert_eq!(market.all().len(), 450);
    /// let top = market.top_skills(SkillCategory::ConnectedCar, 50);
    /// assert_eq!(top[0].name, "Garmin"); // the paper's most-reviewed car skill
    /// ```
    pub fn generate(seed: u64) -> Marketplace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6d61726b6574);
        let mut skills: Vec<Skill> = Vec::with_capacity(450);

        for pin in PINNED {
            skills.push(skill_from_pin(pin));
        }

        // Fill every category to SKILLS_PER_CATEGORY with synthetic skills.
        for cat in SkillCategory::ALL {
            let have = skills.iter().filter(|s| s.category == cat).count();
            let (adjectives, nouns) = name_pool(cat);
            let mut made = 0usize;
            let mut salt = 0usize;
            while made < SKILLS_PER_CATEGORY - have {
                let adj = adjectives[(made + salt) % adjectives.len()];
                let noun = nouns[(made + salt) / adjectives.len() % nouns.len()];
                let name = if (made + salt) < adjectives.len() * nouns.len() {
                    format!("{adj} {noun}")
                } else {
                    format!("{adj} {noun} Plus")
                };
                if skills.iter().any(|s| s.name == name) {
                    salt += 1;
                    continue;
                }
                let reviews = rng.gen_range(5..400);
                skills.push(Skill {
                    id: SkillId(slugify(&name, cat)),
                    name,
                    vendor: format!("{} Studios", adj),
                    category: cat,
                    invocation: String::new(), // filled below from the name
                    sample_utterances: utterance_pool(cat).iter().map(|s| s.to_string()).collect(),
                    reviews,
                    streaming: false,
                    fails_to_load: false,
                    requires_account_linking: false,
                    permissions: vec![],
                    backends: vec![],
                    collects: vec![],
                    policy: PolicySpec::none(),
                });
                made += 1;
            }
        }

        // Invocation = lower-cased name for everything that lacks one.
        for s in &mut skills {
            if s.invocation.is_empty() {
                s.invocation = s.name.to_ascii_lowercase();
            }
        }

        // Mark 4 synthetic skills as failing to load (Table 1: 4 / 450).
        let mut synthetic_idx: Vec<usize> = skills
            .iter()
            .enumerate()
            .filter(|(_, s)| s.backends.is_empty() && !is_pinned(&s.name))
            .map(|(i, _)| i)
            .collect();
        synthetic_idx.shuffle(&mut rng);
        for &i in synthetic_idx.iter().take(4) {
            skills[i].fails_to_load = true;
        }

        // iRobot requires account linking (§3.1.1).
        if let Some(s) = skills.iter_mut().find(|s| s.name == "iRobot Home") {
            s.requires_account_linking = true;
        }

        assign_permissions(&mut skills, &mut rng);
        assign_data_collection(&mut skills, &mut rng);
        assign_policies(&mut skills, &mut rng);

        let music_skills = music_catalog();
        Marketplace {
            skills,
            music_skills,
        }
    }

    /// All 450 catalog skills.
    pub fn all(&self) -> &[Skill] {
        &self.skills
    }

    /// The audio-streaming skills used for the audio-ad experiment
    /// (Amazon Music, Spotify, Pandora) — outside the nine categories.
    pub fn music_skills(&self) -> &[Skill] {
        &self.music_skills
    }

    /// Top-`n` skills of a category by review count (the paper's selection).
    pub fn top_skills(&self, cat: SkillCategory, n: usize) -> Vec<&Skill> {
        let mut in_cat: Vec<&Skill> = self.skills.iter().filter(|s| s.category == cat).collect();
        in_cat.sort_by(|a, b| b.reviews.cmp(&a.reviews).then(a.name.cmp(&b.name)));
        in_cat.truncate(n);
        in_cat
    }

    /// Look up a skill by id.
    pub fn get(&self, id: &SkillId) -> Option<&Skill> {
        self.skills
            .iter()
            .chain(self.music_skills.iter())
            .find(|s| &s.id == id)
    }

    /// Look up a skill by display name.
    pub fn by_name(&self, name: &str) -> Option<&Skill> {
        self.skills
            .iter()
            .chain(self.music_skills.iter())
            .find(|s| s.name == name)
    }

    /// Register every vendor / content organization this catalog references
    /// into an [`OrgMap`], mirroring the paper's WHOIS/Crunchbase resolution.
    pub fn register_orgs(&self, orgs: &mut OrgMap) {
        for (dom, org) in [
            ("fashioncdn.net", "Fashion CDN"),
            ("petmedia.net", "PetMedia Networks"),
            ("ecosmartlive.net", "EcoSmart Hosting"),
            ("squeakcdn.net", "SqueakCDN"),
            ("soundlibrary.net", "Sound Library"),
            ("cdnstream.net", "CDNStream"),
            ("petwave.net", "PetWave"),
            ("dogtrainingtips.net", "Dog Training Tips Media"),
            ("prayertimes.org", "PrayerTimes.org"),
            ("scripturecdn.net", "Scripture CDN"),
            ("rosarycdn.net", "Rosary CDN"),
            ("graceprayers.net", "Grace Prayers"),
            ("bibletrivia.net", "Bible Trivia Networks"),
            ("airquality.net", "AirQuality Data"),
        ] {
            orgs.register(dom, org);
        }
    }
}

fn is_pinned(name: &str) -> bool {
    PINNED.iter().any(|p| p.name == name)
}

fn slugify(name: &str, cat: SkillCategory) -> String {
    let base: String = name
        .to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let squeezed = base
        .split('-')
        .filter(|p| !p.is_empty())
        .collect::<Vec<_>>()
        .join("-");
    format!("{}-{}", cat.slug(), squeezed)
}

fn skill_from_pin(pin: &Pin) -> Skill {
    let policy = match pin.policy {
        PinPolicy::None => PolicySpec::none(),
        PinPolicy::Broken => PolicySpec {
            has_link: true,
            ..PolicySpec::none()
        },
        PinPolicy::Generic => PolicySpec {
            has_link: true,
            retrievable: true,
            ..PolicySpec::none()
        },
        PinPolicy::Platform { links, amazon } => {
            let mut spec = PolicySpec {
                has_link: true,
                retrievable: true,
                mentions_platform: true,
                links_platform_policy: links,
                ..PolicySpec::none()
            };
            spec.endpoint_disclosures
                .insert(crate::cloud::AMAZON_ORG.to_string(), amazon);
            spec
        }
    };
    Skill {
        id: SkillId(slugify(pin.name, pin.cat)),
        name: pin.name.to_string(),
        vendor: pin.vendor.to_string(),
        category: pin.cat,
        invocation: pin.name.to_ascii_lowercase(),
        sample_utterances: utterance_pool(pin.cat)
            .iter()
            .map(|s| s.to_string())
            .collect(),
        reviews: pin.reviews,
        streaming: pin.streaming,
        fails_to_load: false,
        requires_account_linking: false,
        permissions: vec![],
        backends: pin
            .backends
            .iter()
            .map(|b| Domain::parse(b).unwrap_or_else(|_| Domain::invalid_sentinel()))
            .collect(),
        collects: vec![],
        policy,
    }
}

/// ~20% of skills request the email permission; a handful location.
fn assign_permissions(skills: &mut [Skill], rng: &mut StdRng) {
    for s in skills.iter_mut() {
        if rng.gen_bool(0.2) {
            s.permissions.push(Permission::Email);
        }
        if s.category == NavigationTripPlanners && rng.gen_bool(0.4) {
            s.permissions.push(Permission::Location);
        }
    }
}

/// Assign collected data types to match Table 13 marginals.
fn assign_data_collection(skills: &mut [Skill], rng: &mut StdRng) {
    let active: Vec<usize> = skills
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.fails_to_load)
        .map(|(i, _)| i)
        .collect();

    // Everyone active sends voice recordings (installing + enabling a skill
    // necessarily involves voice interaction).
    for &i in &active {
        skills[i].collects.push(DataType::VoiceRecording);
    }

    // Targets from Table 13 (counts over the 450-skill catalog).
    let targets: &[(DataType, usize)] = &[
        (DataType::SkillId, 326),
        (DataType::CustomerId, 142),
        (DataType::Language, 18),
        (DataType::Timezone, 18),
        (DataType::Preference, 434),
        (DataType::AudioPlayerEvent, 385),
    ];

    for &(dt, count) in targets {
        let mut pool = active.clone();
        // Skills that talk to third parties always collect persistent IDs
        // (the paper: 8.59% of persistent-ID collectors contact third
        // parties). Put them first so shuffling can't exclude them.
        pool.sort_by_key(|&i| usize::from(skills[i].backends.is_empty()));
        let keep_first = if matches!(dt, DataType::SkillId | DataType::CustomerId) {
            pool.iter()
                .take_while(|&&i| !skills[i].backends.is_empty())
                .count()
        } else {
            0
        };
        pool[keep_first..].shuffle(rng);
        for &i in pool.iter().take(count.min(pool.len())) {
            skills[i].collects.push(dt);
        }
    }
    // Note: DataType::DeviceMetric is deliberately NOT a skill-level
    // collection — device metrics are platform telemetry emitted by the
    // cloud model for a hash-selected subset of sessions (Table 1: 123
    // skills observed contacting device-metrics-us-2.amazon.com).
}

/// Assign privacy-policy ground truth to match §7.1 and Table 13 marginals.
fn assign_policies(skills: &mut [Skill], rng: &mut StdRng) {
    // Pinned skills already carry their documented policy shape. Distribute
    // the remainder over synthetic skills to hit the global marginals:
    // 214 links, 188 retrievable, 59 mention platform, 10 link its policy.
    let have_link = skills.iter().filter(|s| s.policy.has_link).count();
    let have_doc = skills.iter().filter(|s| s.policy.has_document()).count();
    let have_mention = skills.iter().filter(|s| s.policy.mentions_platform).count();
    let have_plat_link = skills
        .iter()
        .filter(|s| s.policy.links_platform_policy)
        .count();

    let mut synth: Vec<usize> = skills
        .iter()
        .enumerate()
        .filter(|(_, s)| !is_pinned(&s.name) && !s.fails_to_load)
        .map(|(i, _)| i)
        .collect();
    synth.shuffle(rng);

    let need_link = 214usize.saturating_sub(have_link);
    let need_doc = 188usize.saturating_sub(have_doc);
    let need_mention = 59usize.saturating_sub(have_mention);
    let need_plat_link = 10usize.saturating_sub(have_plat_link);

    for (k, &i) in synth.iter().take(need_link).enumerate() {
        let s = &mut skills[i];
        s.policy.has_link = true;
        // The first `need_doc` of the linkers are retrievable; the rest are
        // dead links (the paper: 214 links, 188 retrievable).
        if k < need_doc {
            s.policy.retrievable = true;
            if k < need_mention {
                s.policy.mentions_platform = true;
                if k < need_plat_link {
                    s.policy.links_platform_policy = true;
                }
            }
        }
    }

    assign_data_disclosures(skills, rng);
    assign_endpoint_disclosures(skills, rng);
}

/// Per-data-type clear/vague targets from Table 13; everything else omitted.
fn assign_data_disclosures(skills: &mut [Skill], rng: &mut StdRng) {
    let targets: &[(DataType, usize, usize)] = &[
        (DataType::VoiceRecording, 20, 18),
        (DataType::CustomerId, 11, 9),
        (DataType::SkillId, 0, 11),
        (DataType::Language, 0, 3),
        (DataType::Timezone, 0, 3),
        (DataType::Preference, 0, 40),
        (DataType::AudioPlayerEvent, 0, 60),
    ];
    for &(dt, clear_n, vague_n) in targets {
        let mut holders: Vec<usize> = skills
            .iter()
            .enumerate()
            .filter(|(_, s)| s.policy.has_document() && s.collects_type(dt))
            .map(|(i, _)| i)
            .collect();
        holders.shuffle(rng);
        for (k, &i) in holders.iter().enumerate() {
            let level = if k < clear_n {
                DisclosureLevel::Clear
            } else if k < clear_n + vague_n {
                DisclosureLevel::Vague
            } else {
                DisclosureLevel::Omitted
            };
            skills[i].policy.data_disclosures.insert(dt, level);
        }
    }

    // A handful of policies actively LIE: they deny collecting voice
    // recordings while their traffic shows them (PoliCheck's "incorrect"
    // class; the original tool found such contradictions in mobile apps).
    let mut deniers: Vec<usize> = skills
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            s.policy.has_document()
                && s.collects_type(DataType::VoiceRecording)
                && s.policy.data_disclosures.get(&DataType::VoiceRecording)
                    == Some(&DisclosureLevel::Omitted)
        })
        .map(|(i, _)| i)
        .collect();
    deniers.shuffle(rng);
    for &i in deniers.iter().take(6) {
        skills[i]
            .policy
            .data_disclosures
            .insert(DataType::VoiceRecording, DisclosureLevel::Denied);
    }
}

/// Endpoint disclosure ground truth (§7.2.1): 10 clear / 136 vague about
/// Amazon; Garmin & YouVersion clear about their own orgs; a few skills
/// vague about third parties, the rest omitted.
fn assign_endpoint_disclosures(skills: &mut [Skill], rng: &mut StdRng) {
    use crate::cloud::AMAZON_ORG;
    // Pinned Platform{..} skills already disclose Amazon. Count them.
    let have_clear = skills
        .iter()
        .filter(|s| s.policy.endpoint_disclosures.get(AMAZON_ORG) == Some(&DisclosureLevel::Clear))
        .count();
    let have_vague = skills
        .iter()
        .filter(|s| s.policy.endpoint_disclosures.get(AMAZON_ORG) == Some(&DisclosureLevel::Vague))
        .count();

    // Clear Amazon disclosures name Amazon in the rendered text, so they
    // must come from policies that mention the platform at all (the 59 of
    // §7.1) — otherwise the mention count would drift upward. Vague
    // disclosures use category phrases ("analytics tool", "voice partner")
    // that never name Amazon, so any document qualifies.
    let mut mentioners: Vec<usize> = skills
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            s.policy.has_document()
                && s.policy.mentions_platform
                && !s.policy.endpoint_disclosures.contains_key(AMAZON_ORG)
        })
        .map(|(i, _)| i)
        .collect();
    mentioners.shuffle(rng);
    let need_clear = 10usize.saturating_sub(have_clear);
    for &i in mentioners.iter().take(need_clear) {
        skills[i]
            .policy
            .endpoint_disclosures
            .insert(AMAZON_ORG.to_string(), DisclosureLevel::Clear);
    }

    let mut doc_holders: Vec<usize> = skills
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            s.policy.has_document() && !s.policy.endpoint_disclosures.contains_key(AMAZON_ORG)
        })
        .map(|(i, _)| i)
        .collect();
    doc_holders.shuffle(rng);
    let need_vague = 136usize.saturating_sub(have_vague);
    for (k, &i) in doc_holders.iter().enumerate() {
        let level = if k < need_vague {
            DisclosureLevel::Vague
        } else {
            DisclosureLevel::Omitted
        };
        skills[i]
            .policy
            .endpoint_disclosures
            .insert(AMAZON_ORG.to_string(), level);
    }

    // First-party disclosures: Garmin and the YouVersion skills clearly name
    // their own organizations (§7.2.1).
    for name in ["Garmin", "YouVersion Bible"] {
        if let Some(s) = skills.iter_mut().find(|s| s.name == name) {
            let vendor = s.vendor.clone();
            s.policy
                .endpoint_disclosures
                .insert(vendor, DisclosureLevel::Clear);
        }
    }

    // Third-party disclosures: Charles Stanley Radio and VCA use vague
    // blanket terms; every other document omits its third parties.
    for skill in skills.iter_mut() {
        if !skill.policy.has_document() {
            continue;
        }
        let orgs: Vec<String> = skill
            .backends
            .iter()
            .filter_map(|b| third_party_org(b, &skill.vendor))
            .collect();
        let vague_all = matches!(
            skill.name.as_str(),
            "Charles Stanley Radio" | "VCA Animal Hospitals"
        );
        for org in orgs {
            let level = if vague_all {
                DisclosureLevel::Vague
            } else {
                DisclosureLevel::Omitted
            };
            skill
                .policy
                .endpoint_disclosures
                .entry(org)
                .or_insert(level);
        }
    }
    let _ = rng;
}

/// Resolve a backend's organization unless it belongs to the skill's vendor.
fn third_party_org(backend: &Domain, vendor: &str) -> Option<String> {
    let orgs = OrgMap::new();
    let org = orgs.org_of(backend).map(str::to_string).unwrap_or_else(|| {
        backend
            .registrable()
            .map(|d| d.as_str().to_string())
            .unwrap_or_default()
    });
    if org == vendor {
        None
    } else {
        Some(org)
    }
}

/// The three audio-streaming skills of the audio-ad experiment (§3.3).
fn music_catalog() -> Vec<Skill> {
    let mk = |name: &str, vendor: &str, id: &str| Skill {
        id: SkillId(id.to_string()),
        name: name.to_string(),
        vendor: vendor.to_string(),
        category: SkillCategory::SmartHome, // placeholder; not part of the 9-category study
        invocation: name.to_ascii_lowercase(),
        sample_utterances: vec!["play top hits".to_string()],
        reviews: 10_000,
        streaming: true,
        fails_to_load: false,
        requires_account_linking: false,
        permissions: vec![],
        backends: vec![],
        collects: vec![
            DataType::VoiceRecording,
            DataType::AudioPlayerEvent,
            DataType::CustomerId,
        ],
        policy: PolicySpec {
            has_link: true,
            retrievable: true,
            mentions_platform: true,
            links_platform_policy: false,
            ..PolicySpec::none()
        },
    };
    vec![
        mk(
            "Amazon Music",
            "Amazon Technologies, Inc.",
            "music-amazon-music",
        ),
        mk("Spotify", "Spotify AB", "music-spotify"),
        mk("Pandora", "Pandora Media, LLC", "music-pandora"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market() -> Marketplace {
        Marketplace::generate(42)
    }

    #[test]
    fn catalog_has_450_skills() {
        let m = market();
        assert_eq!(m.all().len(), 450);
        for cat in SkillCategory::ALL {
            assert_eq!(
                m.all().iter().filter(|s| s.category == cat).count(),
                SKILLS_PER_CATEGORY,
                "category {cat}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Marketplace::generate(7);
        let b = Marketplace::generate(7);
        for (x, y) in a.all().iter().zip(b.all()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.collects, y.collects);
            assert_eq!(x.policy, y.policy);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Marketplace::generate(1);
        let b = Marketplace::generate(2);
        let fails_a: Vec<&str> = a
            .all()
            .iter()
            .filter(|s| s.fails_to_load)
            .map(|s| s.name.as_str())
            .collect();
        let fails_b: Vec<&str> = b
            .all()
            .iter()
            .filter(|s| s.fails_to_load)
            .map(|s| s.name.as_str())
            .collect();
        assert_ne!(fails_a, fails_b);
    }

    #[test]
    fn exactly_four_skills_fail_to_load() {
        let m = market();
        assert_eq!(m.all().iter().filter(|s| s.fails_to_load).count(), 4);
        // Pinned skills never fail.
        assert!(m
            .all()
            .iter()
            .filter(|s| s.fails_to_load)
            .all(|s| s.backends.is_empty()));
    }

    #[test]
    fn table13_marginals() {
        let m = market();
        let count = |dt: DataType| m.all().iter().filter(|s| s.collects_type(dt)).count();
        assert_eq!(count(DataType::SkillId), 326);
        assert_eq!(count(DataType::CustomerId), 142);
        assert_eq!(count(DataType::Preference), 434);
        assert_eq!(count(DataType::AudioPlayerEvent), 385);
        assert_eq!(count(DataType::Language), 18);
        assert_eq!(count(DataType::VoiceRecording), 446);
    }

    #[test]
    fn policy_marginals() {
        let m = market();
        let links = m.all().iter().filter(|s| s.policy.has_link).count();
        let docs = m.all().iter().filter(|s| s.policy.has_document()).count();
        let mentions = m
            .all()
            .iter()
            .filter(|s| s.policy.mentions_platform)
            .count();
        let plat_links = m
            .all()
            .iter()
            .filter(|s| s.policy.links_platform_policy)
            .count();
        assert_eq!(links, 214);
        assert_eq!(docs, 188);
        assert_eq!(mentions, 59);
        assert_eq!(plat_links, 10);
    }

    #[test]
    fn only_garmin_and_youversion_have_vendor_domains() {
        let m = market();
        let orgs = {
            let mut o = OrgMap::new();
            m.register_orgs(&mut o);
            o
        };
        let mut vendor_skills: Vec<&str> = m
            .all()
            .iter()
            .filter(|s| {
                s.backends
                    .iter()
                    .any(|b| orgs.org_of(b).map(|org| org == s.vendor).unwrap_or(false))
            })
            .map(|s| s.name.as_str())
            .collect();
        vendor_skills.sort();
        assert_eq!(
            vendor_skills,
            vec!["Garmin", "Lords Prayer", "YouVersion Bible"]
        );
    }

    #[test]
    fn top_skills_sorted_by_reviews() {
        let m = market();
        let top = m.top_skills(SkillCategory::ConnectedCar, 50);
        assert_eq!(top.len(), 50);
        for w in top.windows(2) {
            assert!(w[0].reviews >= w[1].reviews);
        }
        // Garmin (2143 reviews) must rank first in Connected Car.
        assert_eq!(top[0].name, "Garmin");
    }

    #[test]
    fn pinned_skills_present_with_backends() {
        let m = market();
        let garmin = m.by_name("Garmin").unwrap();
        assert_eq!(garmin.backends.len(), 5);
        assert!(garmin.streaming);
        let makeup = m.by_name("Makeup of the Day").unwrap();
        assert!(makeup.backends.iter().any(|b| b.as_str() == "chtbl.com"));
    }

    #[test]
    fn music_skills_are_streaming() {
        let m = market();
        assert_eq!(m.music_skills().len(), 3);
        assert!(m.music_skills().iter().all(|s| s.streaming));
        assert!(m.by_name("Spotify").is_some());
    }

    #[test]
    fn ids_are_unique() {
        let m = market();
        let mut ids: Vec<&str> = m.all().iter().map(|s| s.id.0.as_str()).collect();
        ids.sort();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn smart_home_wine_navigation_have_no_third_party_backends() {
        // §6.2: these personas contact no non-Amazon services.
        let m = market();
        for cat in [SmartHome, WineBeverages, NavigationTripPlanners] {
            assert!(
                m.all()
                    .iter()
                    .filter(|s| s.category == cat)
                    .all(|s| s.backends.is_empty()),
                "{cat}"
            );
        }
    }

    #[test]
    fn third_party_contacting_skills_collect_persistent_ids() {
        let m = market();
        let orgs = OrgMap::new();
        for s in m.all().iter().filter(|s| {
            s.backends.iter().any(|b| {
                orgs.org_of(b)
                    .map(|o| o != s.vendor && o != crate::cloud::AMAZON_ORG)
                    .unwrap_or(true)
            })
        }) {
            assert!(
                s.collects_type(DataType::SkillId),
                "{} should collect skill id",
                s.name
            );
        }
    }

    #[test]
    fn irobot_requires_account_linking() {
        let m = market();
        assert!(m.by_name("iRobot Home").unwrap().requires_account_linking);
    }

    #[test]
    fn six_nonstreaming_skills_embed_ad_services() {
        // §4.2: six non-streaming skills contact A&T services — a potential
        // Alexa advertising-policy violation.
        let m = market();
        let fl = alexa_net::FilterList::new();
        let violators: Vec<&str> = m
            .all()
            .iter()
            .filter(|s| !s.streaming && s.backends.iter().any(|b| fl.is_ad_tracking(b)))
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(violators.len(), 6, "violators: {violators:?}");
    }
}
