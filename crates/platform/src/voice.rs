//! The voice pipeline: wake word, transcription, intent routing.
//!
//! Models the audible front half of every interaction. Three behaviours the
//! paper depends on are reproduced:
//!
//! * recording starts only after a wake word — but with a small
//!   **misactivation** rate (prior work the paper cites measured smart
//!   speakers waking on similar-sounding phrases);
//! * transcription is a noisy channel: occasionally a word is mangled;
//! * routing sends the utterance to the in-session skill, but a small
//!   fraction of generic utterances **fall through to the built-in
//!   assistant** (§3.1.1 observed this for a "minute chunk" of samples).

use crate::skill::{Skill, SkillId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where an utterance was routed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutedIntent {
    /// Delivered to the named skill's backend session.
    Skill(SkillId),
    /// Handled by the built-in assistant (fell through).
    BuiltIn,
}

/// Configuration of the voice pipeline's noise processes.
#[derive(Debug, Clone, Copy)]
pub struct VoiceConfig {
    /// Probability that a non-wake phrase still wakes the device.
    pub misactivation_rate: f64,
    /// Probability that a word is mis-transcribed.
    pub word_error_rate: f64,
    /// Probability that an in-session utterance falls through to the
    /// built-in assistant instead of the skill.
    pub fallthrough_rate: f64,
}

impl Default for VoiceConfig {
    fn default() -> VoiceConfig {
        VoiceConfig {
            misactivation_rate: 0.01,
            word_error_rate: 0.02,
            fallthrough_rate: 0.04,
        }
    }
}

/// The wake-word → transcript → intent pipeline.
#[derive(Debug)]
pub struct VoicePipeline {
    config: VoiceConfig,
    rng: StdRng,
}

/// The wake word recognized by the pipeline.
pub const WAKE_WORD: &str = "alexa";

impl VoicePipeline {
    /// Create a pipeline with the default noise configuration.
    pub fn new(seed: u64) -> VoicePipeline {
        VoicePipeline::with_config(seed, VoiceConfig::default())
    }

    /// Create a pipeline with an explicit configuration.
    pub fn with_config(seed: u64, config: VoiceConfig) -> VoicePipeline {
        VoicePipeline {
            config,
            rng: StdRng::seed_from_u64(seed ^ 0x766f696365),
        }
    }

    /// Decide whether a spoken phrase wakes the device.
    ///
    /// The phrase wakes the device if it contains the wake word, or — with
    /// the misactivation probability — even when it does not.
    pub fn wakes(&mut self, phrase: &str) -> bool {
        let spoken = phrase.to_ascii_lowercase();
        if spoken
            .split(|c: char| !c.is_ascii_alphanumeric())
            .any(|w| w == WAKE_WORD)
        {
            return true;
        }
        self.rng.gen_bool(self.config.misactivation_rate)
    }

    /// Transcribe a spoken utterance into text, with word-level noise.
    pub fn transcribe(&mut self, utterance: &str) -> String {
        let words: Vec<String> = utterance
            .split_whitespace()
            .map(|w| {
                if self.rng.gen_bool(self.config.word_error_rate) {
                    garble(w)
                } else {
                    w.to_string()
                }
            })
            .collect();
        words.join(" ")
    }

    /// Route a transcript uttered during a skill session.
    pub fn route(&mut self, transcript: &str, session_skill: &Skill) -> RoutedIntent {
        // Explicit invocations always reach the skill.
        let invoked = transcript
            .to_ascii_lowercase()
            .contains(&session_skill.invocation);
        if invoked || !self.rng.gen_bool(self.config.fallthrough_rate) {
            RoutedIntent::Skill(session_skill.id.clone())
        } else {
            RoutedIntent::BuiltIn
        }
    }
}

/// Deterministically mangle a word (vowel swap), simulating an ASR error.
fn garble(word: &str) -> String {
    let mut out = String::with_capacity(word.len());
    let mut swapped = false;
    for c in word.chars() {
        if !swapped && matches!(c, 'a' | 'e' | 'i' | 'o' | 'u') {
            out.push(match c {
                'a' => 'o',
                'e' => 'i',
                'i' => 'e',
                'o' => 'u',
                _ => 'a',
            });
            swapped = true;
        } else {
            out.push(c);
        }
    }
    if !swapped {
        out.push('s');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::SkillCategory;
    use crate::skill::PolicySpec;

    fn skill() -> Skill {
        Skill {
            id: SkillId("s1".into()),
            name: "Garmin".into(),
            vendor: "Garmin International".into(),
            category: SkillCategory::ConnectedCar,
            invocation: "garmin".into(),
            sample_utterances: vec![],
            reviews: 1,
            streaming: false,
            fails_to_load: false,
            requires_account_linking: false,
            permissions: vec![],
            backends: vec![],
            collects: vec![],
            policy: PolicySpec::none(),
        }
    }

    #[test]
    fn wake_word_always_wakes() {
        let mut p = VoicePipeline::new(1);
        assert!(p.wakes("Alexa, open Garmin"));
        assert!(p.wakes("alexa stop"));
    }

    #[test]
    fn misactivation_rate_is_low_but_nonzero() {
        let mut p = VoicePipeline::new(2);
        let wakes = (0..10_000).filter(|_| p.wakes("i like pizza")).count();
        assert!(wakes > 20, "misactivations: {wakes}");
        assert!(wakes < 300, "misactivations: {wakes}");
    }

    #[test]
    fn wake_word_must_be_its_own_word() {
        let mut p = VoicePipeline::with_config(
            3,
            VoiceConfig {
                misactivation_rate: 0.0,
                ..VoiceConfig::default()
            },
        );
        assert!(!p.wakes("alexandria is a city"));
        assert!(p.wakes("hey alexa what time is it"));
    }

    #[test]
    fn transcription_mostly_faithful() {
        let mut p = VoicePipeline::new(4);
        let exact = (0..1000)
            .filter(|_| p.transcribe("open garmin") == "open garmin")
            .count();
        assert!(exact > 900, "exact transcriptions: {exact}");
        assert!(exact < 1000, "noise never fired");
    }

    #[test]
    fn transcription_with_zero_error_is_identity() {
        let mut p = VoicePipeline::with_config(
            5,
            VoiceConfig {
                word_error_rate: 0.0,
                ..VoiceConfig::default()
            },
        );
        assert_eq!(
            p.transcribe("give me a fashion tip"),
            "give me a fashion tip"
        );
    }

    #[test]
    fn invocations_never_fall_through() {
        let mut p = VoicePipeline::new(6);
        let s = skill();
        for _ in 0..500 {
            assert_eq!(
                p.route("open garmin", &s),
                RoutedIntent::Skill(s.id.clone())
            );
        }
    }

    #[test]
    fn generic_utterances_sometimes_fall_through() {
        let mut p = VoicePipeline::new(7);
        let s = skill();
        let fallthroughs = (0..5000)
            .filter(|_| p.route("give me hosting tips", &s) == RoutedIntent::BuiltIn)
            .count();
        // fallthrough_rate = 4%: expect roughly 200 of 5000.
        assert!(fallthroughs > 100, "{fallthroughs}");
        assert!(fallthroughs < 400, "{fallthroughs}");
    }

    #[test]
    fn garble_changes_word() {
        assert_ne!(garble("garmin"), "garmin");
        assert_ne!(garble("xyz"), "xyz"); // no vowels: suffix fallback
    }

    #[test]
    fn pipeline_is_deterministic_per_seed() {
        let mut a = VoicePipeline::new(9);
        let mut b = VoicePipeline::new(9);
        for _ in 0..100 {
            assert_eq!(
                a.transcribe("alexa tell me a story"),
                b.transcribe("alexa tell me a story")
            );
        }
    }
}
