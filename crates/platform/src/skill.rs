//! The skill model: behaviour and policy ground truth for one skill.
//!
//! A [`Skill`] bundles everything the simulation knows about a marketplace
//! skill: its vendor, invocation phrases, backend endpoints, collected data
//! types, and a [`PolicySpec`] describing its privacy policy's ground-truth
//! disclosure quality. The policy *text* is rendered from the spec by
//! `alexa-policy`; the PoliCheck reimplementation then analyzes only the
//! text, so the spec doubles as the validation label set.

use crate::category::SkillCategory;
use alexa_net::{DataType, Domain};
use std::collections::BTreeMap;

/// Unique skill identifier on the marketplace.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SkillId(pub String);

impl std::fmt::Display for SkillId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Permissions a skill may request at install time (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Permission {
    /// Access to the account email address.
    Email,
    /// Access to the account phone number.
    Phone,
    /// Access to the device location.
    Location,
}

/// Ground-truth disclosure quality of one fact in a privacy policy.
///
/// Matches the classification PoliCheck produces, so planted ground truth
/// and recovered classification share a vocabulary. `NoPolicy` is represented
/// structurally (a skill without a retrievable policy), not as a level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DisclosureLevel {
    /// The policy names the data type / organization exactly.
    Clear,
    /// The policy uses a category term or "third party".
    Vague,
    /// The policy explicitly **denies** the flow ("we never collect …")
    /// even though the traffic shows it — PoliCheck's *incorrect*
    /// disclosure class.
    Denied,
    /// The policy does not mention the flow at all.
    Omitted,
}

impl std::fmt::Display for DisclosureLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DisclosureLevel::Clear => "clear",
            DisclosureLevel::Vague => "vague",
            DisclosureLevel::Denied => "denied",
            DisclosureLevel::Omitted => "omitted",
        };
        f.write_str(s)
    }
}

/// Ground truth describing a skill's privacy policy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PolicySpec {
    /// Whether the marketplace page links a privacy policy at all
    /// (214 of 450 skills in the paper).
    pub has_link: bool,
    /// Whether the linked policy can actually be downloaded
    /// (188 of the 214 in the paper).
    pub retrievable: bool,
    /// Whether the text mentions Amazon or Alexa at all (59 of 188).
    pub mentions_platform: bool,
    /// Whether the text links to Amazon's own privacy policy (10 of 59).
    pub links_platform_policy: bool,
    /// Disclosure quality for each collected data type.
    pub data_disclosures: BTreeMap<DataType, DisclosureLevel>,
    /// Disclosure quality for each contacted endpoint organization.
    pub endpoint_disclosures: BTreeMap<String, DisclosureLevel>,
}

impl PolicySpec {
    /// A skill with no policy link at all.
    pub fn none() -> PolicySpec {
        PolicySpec::default()
    }

    /// Whether a policy document exists to analyze.
    pub fn has_document(&self) -> bool {
        self.has_link && self.retrievable
    }
}

/// One skill in the marketplace, with planted behavioural ground truth.
#[derive(Debug, Clone)]
pub struct Skill {
    /// Marketplace identifier.
    pub id: SkillId,
    /// Display name.
    pub name: String,
    /// Vendor organization name (matched against `alexa-net`'s OrgMap).
    pub vendor: String,
    /// Marketplace category.
    pub category: SkillCategory,
    /// Invocation name, e.g. "garmin" in "Alexa, open Garmin".
    pub invocation: String,
    /// Sample utterances from the skill description (§3.1.1).
    pub sample_utterances: Vec<String>,
    /// Review count — the paper ranks top-50 by reviews.
    pub reviews: u32,
    /// Whether this is an audio-streaming skill (music/radio/podcast).
    /// Amazon's advertising policy only allows audio ads on streaming skills.
    pub streaming: bool,
    /// Whether the skill fails to load (4 of 450 in the paper).
    pub fails_to_load: bool,
    /// Whether the skill requires account linking (skipped by the paper).
    pub requires_account_linking: bool,
    /// Permissions requested at install time.
    pub permissions: Vec<Permission>,
    /// Non-Amazon endpoints the skill causes the device to contact.
    /// (All skills additionally talk to Amazon, which mediates everything.)
    pub backends: Vec<Domain>,
    /// Data types the skill's interactions send off-device.
    pub collects: Vec<DataType>,
    /// Privacy-policy ground truth.
    pub policy: PolicySpec,
}

impl Skill {
    /// Whether the skill collects a given data type.
    pub fn collects_type(&self, dt: DataType) -> bool {
        self.collects.contains(&dt)
    }

    /// Whether any backend is a non-Amazon endpoint.
    pub fn has_non_amazon_backend(&self) -> bool {
        !self.backends.is_empty()
    }

    /// Utterances to replay during interaction: the invocation phrase plus
    /// every sample utterance from the description.
    pub fn interaction_script(&self) -> Vec<String> {
        let mut script = vec![format!("open {}", self.invocation)];
        script.extend(self.sample_utterances.iter().cloned());
        script
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_skill() -> Skill {
        Skill {
            id: SkillId("skill-test".into()),
            name: "Test Skill".into(),
            vendor: "Test Vendor".into(),
            category: SkillCategory::SmartHome,
            invocation: "test skill".into(),
            sample_utterances: vec!["turn on the lights".into()],
            reviews: 42,
            streaming: false,
            fails_to_load: false,
            requires_account_linking: false,
            permissions: vec![Permission::Email],
            backends: vec![],
            collects: vec![DataType::VoiceRecording, DataType::SkillId],
            policy: PolicySpec::none(),
        }
    }

    #[test]
    fn collects_type_checks_membership() {
        let s = sample_skill();
        assert!(s.collects_type(DataType::SkillId));
        assert!(!s.collects_type(DataType::AudioPlayerEvent));
    }

    #[test]
    fn interaction_script_starts_with_invocation() {
        let s = sample_skill();
        let script = s.interaction_script();
        assert_eq!(script[0], "open test skill");
        assert_eq!(script.len(), 2);
    }

    #[test]
    fn policy_document_requires_link_and_retrievability() {
        let mut p = PolicySpec::none();
        assert!(!p.has_document());
        p.has_link = true;
        assert!(!p.has_document());
        p.retrievable = true;
        assert!(p.has_document());
    }

    #[test]
    fn non_amazon_backend_detection() {
        let mut s = sample_skill();
        assert!(!s.has_non_amazon_backend());
        s.backends.push(Domain::parse("play.podtrac.com").unwrap());
        assert!(s.has_non_amazon_backend());
    }

    #[test]
    fn disclosure_levels_are_ordered() {
        assert!(DisclosureLevel::Clear < DisclosureLevel::Vague);
        assert!(DisclosureLevel::Vague < DisclosureLevel::Omitted);
    }
}
