//! Device models: the commercial Echo and the instrumented AVS Echo.
//!
//! Two devices, mirroring the paper's §3.2 exactly:
//!
//! * [`EchoDevice`] — a certified 4th-generation Echo. Talks to Amazon *and*
//!   skill backends; its traffic is only observable encrypted (the
//!   `RouterTap` opacifies payloads).
//! * [`AvsEcho`] — the AVS Device SDK instrumented on a Raspberry Pi. Logs
//!   payloads before encryption, but is **uncertified**: streaming skills
//!   are unsupported, and it only communicates with Amazon.
//!
//! Both run the same [`VoicePipeline`] (wake word → transcript → routing),
//! so the occasional fall-through of generic utterances to the built-in
//! assistant (§3.1.1) happens on both.

use crate::cloud::{AlexaCloud, InteractionKind};
use crate::skill::{Skill, SkillId};
use crate::voice::{RoutedIntent, VoicePipeline};
use alexa_fault::{FaultChannel, FaultPlane};
use alexa_net::Packet;
use std::collections::{BTreeMap, BTreeSet};

/// Errors surfaced by device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The skill's backend did not respond at install time (4 skills).
    SkillFailedToLoad(SkillId),
    /// Interaction attempted with a skill that is not installed.
    NotInstalled(SkillId),
    /// Streaming skills are unsupported on the uncertified AVS Echo (§3.2).
    StreamingUnsupported(SkillId),
    /// The spoken phrase did not wake the device.
    NotAwake,
    /// Injected fault: skill enablement timed out. Transient — worth a
    /// retry.
    InstallTimeout(SkillId),
    /// Injected fault: the voice service gave no response. Transient.
    ServiceUnavailable(SkillId),
}

impl DeviceError {
    /// Whether a retry can plausibly succeed. Only the injected transient
    /// faults qualify; modeled failures (broken skill, wrong device, no
    /// wake) are permanent or behavioral.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            DeviceError::InstallTimeout(_) | DeviceError::ServiceUnavailable(_)
        )
    }
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::SkillFailedToLoad(id) => write!(f, "skill {id} failed to load"),
            DeviceError::NotInstalled(id) => write!(f, "skill {id} is not installed"),
            DeviceError::StreamingUnsupported(id) => {
                write!(f, "streaming skill {id} unsupported on AVS Echo")
            }
            DeviceError::NotAwake => write!(f, "device did not wake"),
            DeviceError::InstallTimeout(id) => write!(f, "skill {id} enablement timed out"),
            DeviceError::ServiceUnavailable(id) => {
                write!(f, "voice service unavailable for skill {id}")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// Shared device state and interaction logic.
#[derive(Debug)]
struct DeviceCore {
    account: String,
    customer_id: String,
    installed: BTreeSet<SkillId>,
    pipeline: VoicePipeline,
    avs: bool,
    fault: FaultPlane,
    /// Per-(skill, operation) call counts: each call gets a fresh fault
    /// decision, so a retried operation can succeed. Only populated when
    /// the plane is active.
    fault_attempts: BTreeMap<(String, &'static str), u32>,
}

impl DeviceCore {
    fn new(account: &str, seed: u64, avs: bool) -> DeviceCore {
        // Customer IDs look like Amazon's directed IDs; derived from the
        // account so captures can be correlated per persona.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in account.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        DeviceCore {
            account: account.to_string(),
            customer_id: format!("amzn1.account.{h:016X}"),
            installed: BTreeSet::new(),
            pipeline: VoicePipeline::new(seed),
            avs,
            fault: FaultPlane::disabled(),
            fault_attempts: BTreeMap::new(),
        }
    }

    /// Does an injected fault fire for this call? Keys are structural
    /// (`account/skill/op#call-number`), and the call number makes every
    /// retry an independent decision. Inactive planes cost one branch.
    fn fault_fires(&mut self, channel: FaultChannel, op: &'static str, skill: &SkillId) -> bool {
        if !self.fault.is_active() {
            return false;
        }
        let n = {
            let n = self
                .fault_attempts
                .entry((skill.0.clone(), op))
                .or_insert(0);
            *n += 1;
            *n
        };
        let key = format!("{}/{}/{op}#{n}", self.account, skill.0);
        self.fault.fires(channel, &key)
    }

    fn install(
        &mut self,
        cloud: &mut AlexaCloud,
        skill: &Skill,
    ) -> Result<Vec<Packet>, DeviceError> {
        if skill.fails_to_load {
            return Err(DeviceError::SkillFailedToLoad(skill.id.clone()));
        }
        if self.avs && skill.streaming {
            return Err(DeviceError::StreamingUnsupported(skill.id.clone()));
        }
        if self.fault_fires(FaultChannel::InstallFailure, "install", &skill.id) {
            return Err(DeviceError::InstallTimeout(skill.id.clone()));
        }
        self.installed.insert(skill.id.clone());
        Ok(cloud.session_traffic(
            &self.account,
            &self.customer_id,
            skill,
            &InteractionKind::Install,
            self.avs,
        ))
    }

    fn interact(
        &mut self,
        cloud: &mut AlexaCloud,
        skill: &Skill,
        spoken: &str,
    ) -> Result<Vec<Packet>, DeviceError> {
        if !self.installed.contains(&skill.id) {
            return Err(DeviceError::NotInstalled(skill.id.clone()));
        }
        if self.avs && skill.streaming {
            return Err(DeviceError::StreamingUnsupported(skill.id.clone()));
        }
        // Fault check precedes the wake roll so injected outages never
        // consume the pipeline's RNG stream.
        if self.fault_fires(FaultChannel::InteractionFailure, "interact", &skill.id) {
            return Err(DeviceError::ServiceUnavailable(skill.id.clone()));
        }
        if !self.pipeline.wakes(spoken) {
            return Err(DeviceError::NotAwake);
        }
        let transcript = self.pipeline.transcribe(strip_wake_word(spoken));
        let kind = match self.pipeline.route(&transcript, skill) {
            RoutedIntent::Skill(_) => InteractionKind::Utterance(transcript),
            RoutedIntent::BuiltIn => InteractionKind::BuiltInUtterance(transcript),
        };
        Ok(cloud.session_traffic(&self.account, &self.customer_id, skill, &kind, self.avs))
    }

    fn uninstall(&mut self, cloud: &mut AlexaCloud, skill: &Skill) -> Vec<Packet> {
        self.installed.remove(&skill.id);
        cloud.session_traffic(
            &self.account,
            &self.customer_id,
            skill,
            &InteractionKind::Uninstall,
            self.avs,
        )
    }
}

/// Remove a leading wake word ("alexa," / "alexa") from a spoken phrase.
fn strip_wake_word(spoken: &str) -> &str {
    let trimmed = spoken.trim_start();
    for prefix in ["alexa,", "Alexa,", "alexa", "Alexa"] {
        if let Some(rest) = trimmed.strip_prefix(prefix) {
            return rest.trim_start();
        }
    }
    trimmed
}

/// A certified 4th-generation Amazon Echo.
#[derive(Debug)]
pub struct EchoDevice {
    core: DeviceCore,
}

impl EchoDevice {
    /// Provision an Echo bound to an Amazon account.
    pub fn new(account: &str, seed: u64) -> EchoDevice {
        EchoDevice {
            core: DeviceCore::new(account, seed, false),
        }
    }

    /// The bound account name.
    pub fn account(&self) -> &str {
        &self.core.account
    }

    /// The directed customer ID the device transmits.
    pub fn customer_id(&self) -> &str {
        &self.core.customer_id
    }

    /// Route this device's install/interact paths through a fault plane.
    /// An inactive plane leaves behavior untouched.
    pub fn set_fault_plane(&mut self, plane: FaultPlane) {
        self.core.fault = plane;
    }

    /// Install (enable) a skill. Returns the traffic of the enablement.
    pub fn install(
        &mut self,
        cloud: &mut AlexaCloud,
        skill: &Skill,
    ) -> Result<Vec<Packet>, DeviceError> {
        self.core.install(cloud, skill)
    }

    /// Speak to the device during a skill session.
    pub fn interact(
        &mut self,
        cloud: &mut AlexaCloud,
        skill: &Skill,
        spoken: &str,
    ) -> Result<Vec<Packet>, DeviceError> {
        self.core.interact(cloud, skill, spoken)
    }

    /// Uninstall a skill.
    pub fn uninstall(&mut self, cloud: &mut AlexaCloud, skill: &Skill) -> Vec<Packet> {
        self.core.uninstall(cloud, skill)
    }

    /// Whether a skill is currently installed.
    pub fn has_skill(&self, id: &SkillId) -> bool {
        self.core.installed.contains(id)
    }
}

/// The instrumented AVS Device SDK build ("AVS Echo").
#[derive(Debug)]
pub struct AvsEcho {
    core: DeviceCore,
}

impl AvsEcho {
    /// Provision an AVS Echo bound to an Amazon account.
    pub fn new(account: &str, seed: u64) -> AvsEcho {
        AvsEcho {
            core: DeviceCore::new(account, seed, true),
        }
    }

    /// The bound account name.
    pub fn account(&self) -> &str {
        &self.core.account
    }

    /// Route this device's install/interact paths through a fault plane.
    /// An inactive plane leaves behavior untouched.
    pub fn set_fault_plane(&mut self, plane: FaultPlane) {
        self.core.fault = plane;
    }

    /// Install (enable) a skill. Streaming skills are rejected.
    pub fn install(
        &mut self,
        cloud: &mut AlexaCloud,
        skill: &Skill,
    ) -> Result<Vec<Packet>, DeviceError> {
        self.core.install(cloud, skill)
    }

    /// Speak to the device during a skill session.
    pub fn interact(
        &mut self,
        cloud: &mut AlexaCloud,
        skill: &Skill,
        spoken: &str,
    ) -> Result<Vec<Packet>, DeviceError> {
        self.core.interact(cloud, skill, spoken)
    }

    /// Uninstall a skill.
    pub fn uninstall(&mut self, cloud: &mut AlexaCloud, skill: &Skill) -> Vec<Packet> {
        self.core.uninstall(cloud, skill)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::SkillCategory;
    use crate::skill::PolicySpec;
    use alexa_net::{DataType, Domain};

    fn skill(streaming: bool, backends: &[&str]) -> Skill {
        Skill {
            id: SkillId("skill-y".into()),
            name: "Skill Y".into(),
            vendor: "Vendor".into(),
            category: SkillCategory::PetsAnimals,
            invocation: "skill y".into(),
            sample_utterances: vec!["play dog sounds".into()],
            reviews: 9,
            streaming,
            fails_to_load: false,
            requires_account_linking: false,
            permissions: vec![],
            backends: backends.iter().map(|b| Domain::parse(b).unwrap()).collect(),
            collects: vec![DataType::VoiceRecording, DataType::SkillId],
            policy: PolicySpec::none(),
        }
    }

    #[test]
    fn echo_installs_and_interacts() {
        let mut cloud = AlexaCloud::new();
        let mut echo = EchoDevice::new("persona-pets", 11);
        let s = skill(false, &["dillilabs.com"]);
        let install = echo.install(&mut cloud, &s).unwrap();
        assert!(!install.is_empty());
        assert!(echo.has_skill(&s.id));
        let traffic = echo
            .interact(&mut cloud, &s, "Alexa, open skill y")
            .unwrap();
        assert!(traffic.iter().any(|p| p.remote.as_str() == "dillilabs.com"));
    }

    #[test]
    fn interact_requires_install() {
        let mut cloud = AlexaCloud::new();
        let mut echo = EchoDevice::new("p", 1);
        let s = skill(false, &[]);
        assert_eq!(
            echo.interact(&mut cloud, &s, "Alexa, hello"),
            Err(DeviceError::NotInstalled(s.id.clone()))
        );
    }

    #[test]
    fn avs_rejects_streaming_skills() {
        let mut cloud = AlexaCloud::new();
        let mut avs = AvsEcho::new("p", 2);
        let s = skill(true, &[]);
        assert_eq!(
            avs.install(&mut cloud, &s),
            Err(DeviceError::StreamingUnsupported(s.id.clone()))
        );
    }

    #[test]
    fn avs_traffic_is_amazon_only_even_with_backends() {
        let mut cloud = AlexaCloud::new();
        let mut avs = AvsEcho::new("p", 3);
        let s = skill(false, &["play.podtrac.com"]);
        avs.install(&mut cloud, &s).unwrap();
        let traffic = avs.interact(&mut cloud, &s, "Alexa, open skill y").unwrap();
        let orgs = alexa_net::OrgMap::new();
        for p in &traffic {
            assert_eq!(orgs.org_of(&p.remote), Some(alexa_net::orgmap::AMAZON));
        }
    }

    #[test]
    fn failing_skill_install_errors() {
        let mut cloud = AlexaCloud::new();
        let mut echo = EchoDevice::new("p", 4);
        let mut s = skill(false, &[]);
        s.fails_to_load = true;
        assert_eq!(
            echo.install(&mut cloud, &s),
            Err(DeviceError::SkillFailedToLoad(s.id.clone()))
        );
    }

    #[test]
    fn phrases_without_wake_word_usually_ignored() {
        let mut cloud = AlexaCloud::new();
        let mut echo = EchoDevice::new("p", 5);
        let s = skill(false, &[]);
        echo.install(&mut cloud, &s).unwrap();
        let ignored = (0..200)
            .filter(|_| {
                echo.interact(&mut cloud, &s, "play dog sounds") == Err(DeviceError::NotAwake)
            })
            .count();
        assert!(ignored > 180, "ignored {ignored}/200");
    }

    #[test]
    fn customer_ids_are_stable_and_distinct() {
        let a1 = EchoDevice::new("persona-a", 1);
        let a2 = EchoDevice::new("persona-a", 99);
        let b = EchoDevice::new("persona-b", 1);
        assert_eq!(a1.customer_id(), a2.customer_id());
        assert_ne!(a1.customer_id(), b.customer_id());
    }

    #[test]
    fn uninstall_removes_skill() {
        let mut cloud = AlexaCloud::new();
        let mut echo = EchoDevice::new("p", 6);
        let s = skill(false, &[]);
        echo.install(&mut cloud, &s).unwrap();
        echo.uninstall(&mut cloud, &s);
        assert!(!echo.has_skill(&s.id));
    }

    #[test]
    fn injected_install_fault_is_transient_and_retryable() {
        use alexa_fault::FaultProfile;
        let s = skill(false, &[]);
        // Scan for a seed where the first install attempt faults but a
        // retry succeeds — proving per-call fault decisions.
        let mut proved = false;
        for seed in 0..64u64 {
            let mut echo = EchoDevice::new("p", 7);
            echo.set_fault_plane(FaultPlane::new(seed, FaultProfile::uniform(0.5)));
            let mut cloud = AlexaCloud::new();
            let first = echo.install(&mut cloud, &s);
            if let Err(e) = &first {
                assert_eq!(*e, DeviceError::InstallTimeout(s.id.clone()));
                assert!(e.is_transient());
                assert!(
                    !echo.has_skill(&s.id),
                    "faulted install must not mutate state"
                );
                if echo.install(&mut cloud, &s).is_ok() {
                    assert!(echo.has_skill(&s.id));
                    proved = true;
                    break;
                }
            }
        }
        assert!(proved, "no seed produced fault-then-success in 64 tries");
    }

    #[test]
    fn full_fault_rate_blocks_every_interaction() {
        use alexa_fault::FaultProfile;
        let mut cloud = AlexaCloud::new();
        let mut echo = EchoDevice::new("p", 8);
        let s = skill(false, &[]);
        echo.install(&mut cloud, &s).unwrap();
        echo.set_fault_plane(FaultPlane::new(3, FaultProfile::uniform(1.0)));
        for _ in 0..5 {
            let err = echo
                .interact(&mut cloud, &s, "Alexa, open skill y")
                .unwrap_err();
            assert_eq!(err, DeviceError::ServiceUnavailable(s.id.clone()));
            assert!(err.is_transient());
        }
    }

    #[test]
    fn modeled_failures_are_not_transient() {
        let s = skill(false, &[]);
        assert!(!DeviceError::SkillFailedToLoad(s.id.clone()).is_transient());
        assert!(!DeviceError::NotAwake.is_transient());
        assert!(!DeviceError::StreamingUnsupported(s.id.clone()).is_transient());
        assert!(!DeviceError::NotInstalled(s.id).is_transient());
    }

    #[test]
    fn strip_wake_word_variants() {
        assert_eq!(strip_wake_word("Alexa, open garmin"), "open garmin");
        assert_eq!(strip_wake_word("alexa stop"), "stop");
        assert_eq!(strip_wake_word("open garmin"), "open garmin");
    }
}
