//! Skill store pages and their scraping.
//!
//! §3.1.1: the paper's Selenium crawler visits each skill's marketplace
//! page, installs the skill, and "parse[s] skill descriptions to extract
//! additional invocation utterances provided by the skill developer". This
//! module renders the store page a skill would have and provides the parser
//! the audit uses — so the experiment's utterance list comes from the same
//! observable surface the paper scraped, not from simulation ground truth.

use crate::skill::Skill;

/// Render the marketplace page for a skill (the crawl target).
pub fn render_store_page(skill: &Skill) -> String {
    let mut page = String::new();
    page.push_str(&format!("# {}\n", skill.name));
    page.push_str(&format!("by {}\n", skill.vendor));
    page.push_str(&format!("Category: {}\n", skill.category));
    page.push_str(&format!("{} customer reviews\n\n", skill.reviews));
    page.push_str(&format!(
        "{} brings {} right to your Echo device.\n\n",
        skill.name,
        skill.category.label().to_ascii_lowercase()
    ));
    page.push_str(&format!("Say: \"Alexa, open {}\"\n", skill.invocation));
    for utterance in &skill.sample_utterances {
        page.push_str(&format!("Try saying: \"Alexa, {utterance}\"\n"));
    }
    if skill.requires_account_linking {
        page.push_str("\nAccount linking required.\n");
    }
    if skill.policy.has_link {
        page.push_str(&format!(
            "\nPrivacy policy: https://{}.example.com/privacy\n",
            skill
                .vendor
                .to_ascii_lowercase()
                .replace([' ', ',', '.', '\''], "")
        ));
    }
    page
}

/// Extract the invocation phrase from a store page (`Say: "Alexa, open …"`).
pub fn parse_invocation(page: &str) -> Option<String> {
    for line in page.lines() {
        if let Some(rest) = line.trim().strip_prefix("Say: \"Alexa, open ") {
            return Some(rest.trim_end_matches('"').to_string());
        }
    }
    None
}

/// Extract the developer-listed sample utterances from a store page.
pub fn parse_sample_utterances(page: &str) -> Vec<String> {
    page.lines()
        .filter_map(|line| {
            line.trim()
                .strip_prefix("Try saying: \"Alexa, ")
                .map(|rest| rest.trim_end_matches('"').to_string())
        })
        .collect()
}

/// Whether the store page advertises a privacy-policy link.
pub fn has_policy_link(page: &str) -> bool {
    page.lines()
        .any(|l| l.trim_start().starts_with("Privacy policy:"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::SkillCategory;
    use crate::skill::{PolicySpec, SkillId};

    fn skill() -> Skill {
        Skill {
            id: SkillId("s".into()),
            name: "Garmin".into(),
            vendor: "Garmin International".into(),
            category: SkillCategory::ConnectedCar,
            invocation: "garmin".into(),
            sample_utterances: vec!["where is my car".into(), "lock the doors".into()],
            reviews: 2143,
            streaming: true,
            fails_to_load: false,
            requires_account_linking: false,
            permissions: vec![],
            backends: vec![],
            collects: vec![],
            policy: PolicySpec {
                has_link: true,
                retrievable: true,
                ..PolicySpec::none()
            },
        }
    }

    #[test]
    fn page_lists_everything() {
        let page = render_store_page(&skill());
        assert!(page.contains("# Garmin"));
        assert!(page.contains("2143 customer reviews"));
        assert!(page.contains("Try saying: \"Alexa, where is my car\""));
        assert!(has_policy_link(&page));
    }

    #[test]
    fn scrape_roundtrips_utterances() {
        let s = skill();
        let page = render_store_page(&s);
        assert_eq!(parse_sample_utterances(&page), s.sample_utterances);
        assert_eq!(parse_invocation(&page).as_deref(), Some("garmin"));
    }

    #[test]
    fn page_without_policy_has_no_link() {
        let mut s = skill();
        s.policy = PolicySpec::none();
        assert!(!has_policy_link(&render_store_page(&s)));
    }

    #[test]
    fn account_linking_notice() {
        let mut s = skill();
        s.requires_account_linking = true;
        assert!(render_store_page(&s).contains("Account linking required"));
    }

    #[test]
    fn parser_tolerates_unrelated_lines() {
        let page = "random text\nTry saying: \"Alexa, do the thing\"\nmore text";
        assert_eq!(parse_sample_utterances(page), vec!["do the thing"]);
        assert_eq!(parse_invocation(page), None);
    }
}
