//! Amazon's interest-inference model and the DSAR export interface.
//!
//! The paper's §6 requests each persona's data from Amazon three times
//! (after skill installation, and twice after interaction) and reads the
//! *advertising interests* files in the export. Two separate views exist:
//!
//! * **Internal targeting segments** — what Amazon's ad stack actually uses.
//!   In the simulation, every category a persona installs/interacts with
//!   becomes a targeting segment (this is what drives the bid uplift the
//!   paper measures for *all nine* interest personas).
//! * **DSAR-visible interests** — what the data export reveals. The paper
//!   found this view partial and flaky: only some personas' interest files
//!   are present (Table 12), and repeated requests sometimes return *no*
//!   advertising-interest file at all. Both behaviours are reproduced.
//!
//! The gap between the two views is itself a finding of the paper ("Amazon
//! cannot be reliably trusted to provide transparency").

use crate::category::SkillCategory;
use crate::skill::Skill;
use std::collections::{BTreeMap, BTreeSet};

/// An advertising interest as it appears in Amazon's DSAR export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Interest {
    /// "Electronics".
    Electronics,
    /// "Home & Garden: DIY & Tools".
    DiyTools,
    /// "Home & Garden: Home & Kitchen".
    HomeKitchen,
    /// "Beauty & Personal Care".
    BeautyPersonalCare,
    /// "Fashion".
    Fashion,
    /// "Video Entertainment".
    VideoEntertainment,
    /// "Pet Supplies".
    PetSupplies,
}

impl Interest {
    /// The label as printed in the export (and in Table 12).
    pub fn label(self) -> &'static str {
        match self {
            Interest::Electronics => "Electronics",
            Interest::DiyTools => "Home & Garden: DIY & Tools",
            Interest::HomeKitchen => "Home & Garden: Home & Kitchen",
            Interest::BeautyPersonalCare => "Beauty & Personal Care",
            Interest::Fashion => "Fashion",
            Interest::VideoEntertainment => "Video Entertainment",
            Interest::PetSupplies => "Pet Supplies",
        }
    }
}

impl std::fmt::Display for Interest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The experiment phase at which a DSAR is issued (§6.1 requests thrice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DsarPhase {
    /// After skill installation, before any interaction.
    AfterInstall,
    /// First request after skill interaction.
    AfterInteraction1,
    /// Second request after skill interaction.
    AfterInteraction2,
}

/// One data export returned to a DSAR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsarExport {
    /// Account the export belongs to.
    pub account: String,
    /// Advertising interests file. `None` models the file being absent from
    /// the export (observed by the paper for five personas on the second
    /// post-interaction request).
    pub advertising_interests: Option<Vec<Interest>>,
    /// Alexa interaction history (utterance transcripts) — always present.
    pub interaction_history: Vec<String>,
}

/// Amazon's profiling engine.
///
/// Account maps are `BTreeMap`s so any rendered view (Debug dumps, future
/// exports) iterates in account order, never insertion order.
#[derive(Debug, Default)]
pub struct Profiler {
    installs: BTreeMap<String, BTreeMap<SkillCategory, usize>>,
    interactions: BTreeMap<String, BTreeMap<SkillCategory, usize>>,
    history: BTreeMap<String, Vec<String>>,
}

impl Profiler {
    /// Create an empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Record a skill installation on an account.
    pub fn record_install(&mut self, account: &str, skill: &Skill) {
        *self
            .installs
            .entry(account.to_string())
            .or_default()
            .entry(skill.category)
            .or_insert(0) += 1;
    }

    /// Record one voice interaction with a skill.
    pub fn record_interaction(&mut self, account: &str, skill: &Skill, transcript: &str) {
        *self
            .interactions
            .entry(account.to_string())
            .or_default()
            .entry(skill.category)
            .or_insert(0) += 1;
        self.history
            .entry(account.to_string())
            .or_default()
            .push(transcript.to_string());
    }

    /// The account's dominant skill category, if any.
    pub fn dominant_category(&self, account: &str) -> Option<SkillCategory> {
        let installs = self.installs.get(account)?;
        installs.iter().max_by_key(|&(_, &n)| n).map(|(&c, _)| c)
    }

    /// **Internal** targeting segments: every category the account has
    /// *interacted* with. Installation alone creates no targeting segment —
    /// the paper's Figure 3a shows no bid difference before interaction,
    /// even though all skills were already installed (and Table 12 shows
    /// install-time inference exists in the DSAR view). The ad stack only
    /// consumes interaction-derived segments.
    pub fn targeting_segments(&self, account: &str) -> BTreeSet<SkillCategory> {
        let mut segs = BTreeSet::new();
        if let Some(m) = self.interactions.get(account) {
            segs.extend(m.keys().copied());
        }
        segs
    }

    /// Whether the account has interacted with skills at all.
    pub fn has_interacted(&self, account: &str) -> bool {
        self.interactions
            .get(account)
            .map(|m| !m.is_empty())
            .unwrap_or(false)
    }

    /// Produce the DSAR export for an account at a given phase, reproducing
    /// Table 12's inference evolution and the missing-file flakiness.
    pub fn dsar_export(&self, account: &str, phase: DsarPhase) -> DsarExport {
        let dominant = self.dominant_category(account);
        let interacted = self.has_interacted(account);
        let advertising_interests = dominant.and_then(|cat| match phase {
            DsarPhase::AfterInstall => match cat {
                // Install-time inference exists only for Health & Fitness
                // (Table 12, "Installation" row).
                SkillCategory::HealthFitness => {
                    Some(vec![Interest::Electronics, Interest::DiyTools])
                }
                _ => Some(vec![]), // file present but empty: nothing inferred yet
            },
            DsarPhase::AfterInteraction1 if interacted => match cat {
                SkillCategory::HealthFitness => Some(vec![Interest::DiyTools]),
                SkillCategory::FashionStyle => Some(vec![
                    Interest::BeautyPersonalCare,
                    Interest::Fashion,
                    Interest::VideoEntertainment,
                ]),
                SkillCategory::SmartHome => Some(vec![
                    Interest::Electronics,
                    Interest::DiyTools,
                    Interest::HomeKitchen,
                ]),
                _ => Some(vec![]),
            },
            DsarPhase::AfterInteraction2 if interacted => match cat {
                SkillCategory::FashionStyle => {
                    Some(vec![Interest::Fashion, Interest::VideoEntertainment])
                }
                SkillCategory::SmartHome => Some(vec![
                    Interest::PetSupplies,
                    Interest::DiyTools,
                    Interest::HomeKitchen,
                ]),
                // The paper observed the advertising-interest file *absent*
                // for Health & Fitness, Wine & Beverages, Religion &
                // Spirituality and Dating on the second request.
                SkillCategory::HealthFitness
                | SkillCategory::WineBeverages
                | SkillCategory::ReligionSpirituality
                | SkillCategory::Dating => None,
                _ => Some(vec![]),
            },
            _ => Some(vec![]),
        });
        // Vanilla persona (no installs): interest file absent on the second
        // post-interaction request, like the paper observed.
        let advertising_interests = if dominant.is_none() {
            match phase {
                DsarPhase::AfterInteraction2 => None,
                _ => Some(vec![]),
            }
        } else {
            advertising_interests
        };
        DsarExport {
            account: account.to_string(),
            advertising_interests,
            interaction_history: self.history.get(account).cloned().unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skill::{PolicySpec, SkillId};

    fn skill_in(cat: SkillCategory, n: &str) -> Skill {
        Skill {
            id: SkillId(n.into()),
            name: n.into(),
            vendor: "V".into(),
            category: cat,
            invocation: n.to_ascii_lowercase(),
            sample_utterances: vec![],
            reviews: 1,
            streaming: false,
            fails_to_load: false,
            requires_account_linking: false,
            permissions: vec![],
            backends: vec![],
            collects: vec![],
            policy: PolicySpec::none(),
        }
    }

    fn primed(cat: SkillCategory) -> Profiler {
        let mut p = Profiler::new();
        for i in 0..50 {
            let s = skill_in(cat, &format!("s{i}"));
            p.record_install("acct", &s);
            p.record_interaction("acct", &s, "open skill");
        }
        p
    }

    #[test]
    fn install_only_infers_for_health() {
        let mut p = Profiler::new();
        for i in 0..50 {
            p.record_install(
                "acct",
                &skill_in(SkillCategory::HealthFitness, &format!("s{i}")),
            );
        }
        let e = p.dsar_export("acct", DsarPhase::AfterInstall);
        assert_eq!(
            e.advertising_interests,
            Some(vec![Interest::Electronics, Interest::DiyTools])
        );
        // Fashion install-only: file present but empty.
        let mut q = Profiler::new();
        for i in 0..50 {
            q.record_install(
                "b",
                &skill_in(SkillCategory::FashionStyle, &format!("s{i}")),
            );
        }
        assert_eq!(
            q.dsar_export("b", DsarPhase::AfterInstall)
                .advertising_interests,
            Some(vec![])
        );
    }

    #[test]
    fn interaction_unlocks_fashion_and_smarthome_interests() {
        let p = primed(SkillCategory::FashionStyle);
        let e = p.dsar_export("acct", DsarPhase::AfterInteraction1);
        assert_eq!(
            e.advertising_interests.unwrap(),
            vec![
                Interest::BeautyPersonalCare,
                Interest::Fashion,
                Interest::VideoEntertainment
            ]
        );
        let p = primed(SkillCategory::SmartHome);
        let e = p.dsar_export("acct", DsarPhase::AfterInteraction2);
        assert_eq!(
            e.advertising_interests.unwrap(),
            vec![
                Interest::PetSupplies,
                Interest::DiyTools,
                Interest::HomeKitchen
            ]
        );
    }

    #[test]
    fn second_request_files_go_missing() {
        for cat in [
            SkillCategory::HealthFitness,
            SkillCategory::WineBeverages,
            SkillCategory::ReligionSpirituality,
            SkillCategory::Dating,
        ] {
            let p = primed(cat);
            let e = p.dsar_export("acct", DsarPhase::AfterInteraction2);
            assert_eq!(e.advertising_interests, None, "{cat}");
        }
    }

    #[test]
    fn vanilla_account_has_no_interests_then_missing_file() {
        let p = Profiler::new();
        assert_eq!(
            p.dsar_export("v", DsarPhase::AfterInstall)
                .advertising_interests,
            Some(vec![])
        );
        assert_eq!(
            p.dsar_export("v", DsarPhase::AfterInteraction2)
                .advertising_interests,
            None
        );
    }

    #[test]
    fn targeting_segments_are_broader_than_dsar() {
        // Wine persona: DSAR shows nothing, but the internal segment exists —
        // this gap drives the bid uplift the paper measures.
        let p = primed(SkillCategory::WineBeverages);
        assert!(p
            .targeting_segments("acct")
            .contains(&SkillCategory::WineBeverages));
        let e = p.dsar_export("acct", DsarPhase::AfterInteraction1);
        assert_eq!(e.advertising_interests, Some(vec![]));
    }

    #[test]
    fn installs_alone_never_create_targeting_segments() {
        // Figure 3a: no bid uplift before interaction, even with 50 skills
        // installed. Only interaction creates a targeting segment.
        let mut p = Profiler::new();
        for i in 0..50 {
            p.record_install("a", &skill_in(SkillCategory::Dating, &format!("s{i}")));
        }
        assert!(p.targeting_segments("a").is_empty());
        p.record_interaction("a", &skill_in(SkillCategory::Dating, "s0"), "hi");
        assert!(p.targeting_segments("a").contains(&SkillCategory::Dating));
    }

    #[test]
    fn interaction_history_is_returned() {
        let mut p = Profiler::new();
        let s = skill_in(SkillCategory::Dating, "s");
        p.record_interaction("a", &s, "give me a dating tip");
        let e = p.dsar_export("a", DsarPhase::AfterInteraction1);
        assert_eq!(e.interaction_history, vec!["give me a dating tip"]);
    }

    #[test]
    fn debug_dump_is_insertion_order_independent() {
        // Regression test for the HashMap → BTreeMap conversion: the
        // rendered profiler state must depend only on its contents, never
        // on the order accounts were first seen in.
        let mut a = Profiler::new();
        a.record_install("zoe", &skill_in(SkillCategory::Dating, "d"));
        a.record_interaction("amy", &skill_in(SkillCategory::SmartHome, "s"), "hi");
        let mut b = Profiler::new();
        b.record_interaction("amy", &skill_in(SkillCategory::SmartHome, "s"), "hi");
        b.record_install("zoe", &skill_in(SkillCategory::Dating, "d"));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn dominant_category_follows_installs() {
        let mut p = Profiler::new();
        for i in 0..3 {
            p.record_install("a", &skill_in(SkillCategory::Dating, &format!("d{i}")));
        }
        p.record_install("a", &skill_in(SkillCategory::SmartHome, "s"));
        assert_eq!(p.dominant_category("a"), Some(SkillCategory::Dating));
        assert_eq!(p.dominant_category("nobody"), None);
    }
}
