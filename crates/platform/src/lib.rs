//! Simulation of the Amazon smart-speaker platform.
//!
//! The paper audits a black-box ecosystem: Echo devices, the Alexa cloud,
//! and a marketplace of ~200K third-party skills. Since none of that is
//! accessible to a reproduction, this crate implements a deterministic,
//! seeded model of the ecosystem with **planted ground truth** — which
//! endpoints each skill contacts, which data types it collects, what its
//! privacy policy discloses, and which advertising interests Amazon infers.
//!
//! The audit framework in `alexa-audit` never reads that ground truth: it
//! only sees what the paper's authors saw (captured packets, DSAR exports,
//! policy documents, ads). Ground truth exists so tests can verify that the
//! audit *recovers* it.
//!
//! Main components:
//!
//! * [`SkillCategory`] / [`Skill`] / [`Marketplace`] — the 450-skill catalog
//!   (9 categories × top-50), with the paper's named skills pinned to their
//!   documented endpoints (Tables 1, 4 and 14) and the remainder sampled to
//!   match the paper's measured marginals.
//! * [`VoicePipeline`] — wake-word detection, utterance transcription and
//!   intent routing, including the paper's observed misrouting of a small
//!   fraction of utterances to the built-in assistant.
//! * [`EchoDevice`] / [`AvsEcho`] — a certified Echo (encrypted traffic, any
//!   endpoint) and the instrumented AVS SDK build (plaintext visibility, but
//!   Amazon-only endpoints and no streaming skills).
//! * [`AlexaCloud`] — mediates every interaction, relays to skill backends,
//!   emits device metrics, and feeds the [`Profiler`].
//! * [`Profiler`] — Amazon's interest-inference model, its internal targeting
//!   segments, and the DSAR export interface with its observed flakiness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod category;
pub mod certification;
pub mod cloud;
pub mod device;
pub mod marketplace;
pub mod profiler;
pub mod skill;
pub mod storepage;
pub mod voice;

pub use category::SkillCategory;
pub use certification::{dynamic_review, static_review, Review, Violation};
pub use cloud::AlexaCloud;
pub use device::{AvsEcho, DeviceError, EchoDevice};
pub use marketplace::Marketplace;
pub use profiler::{DsarExport, DsarPhase, Interest, Profiler};
pub use skill::{DisclosureLevel, Permission, PolicySpec, Skill, SkillId};
pub use voice::{RoutedIntent, VoicePipeline};
