//! Skill certification: Amazon's review process, static and dynamic.
//!
//! §2.2: Amazon certifies every skill before publication, enforcing (among
//! others) the advertising policy that restricts audio ads to streaming
//! skills. §4.2 finds six *non-streaming* skills that embed advertising &
//! tracking services anyway and asks "why these skills were not flagged
//! during skill certification".
//!
//! This module reproduces the mechanism behind that finding: the
//! certification pipeline reviews **declared metadata** ([`static_review`]),
//! and a skill's runtime backends are not declared — so embedded trackers
//! pass unnoticed. A traffic-based review ([`dynamic_review`]), like the
//! paper's own audit, catches them. Prior work the paper cites (Cheng et
//! al., SkillDetective) made the same static-vs-dynamic point for policy
//! violations generally.

use crate::skill::{Permission, Skill};
use alexa_net::FilterList;

/// A certification finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Non-streaming skill embeds advertising/tracking services
    /// (the Alexa advertising policy restricts ads to streaming skills).
    AdPolicyViolation {
        /// A&T endpoints observed.
        endpoints: Vec<String>,
    },
    /// Skill requests personal-information permissions without providing a
    /// privacy policy (marketplace requirement).
    PermissionsWithoutPolicy {
        /// The permissions requested.
        permissions: Vec<Permission>,
    },
    /// Skill collects persistent identifiers but provides no privacy
    /// policy at all.
    UndisclosedIdentifierCollection,
}

/// Result of reviewing one skill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Review {
    /// Skill id reviewed.
    pub skill_id: String,
    /// Violations found.
    pub violations: Vec<Violation>,
}

impl Review {
    /// Whether the skill passes certification.
    pub fn passes(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Static review: what Amazon's certification pipeline can see — the
/// declared metadata (streaming flag, permissions, policy link). Runtime
/// backends are **not** part of a skill's submission, so tracker embedding
/// is invisible here. This is why the paper's six violators were certified.
pub fn static_review(skill: &Skill) -> Review {
    let mut violations = Vec::new();
    if !skill.permissions.is_empty() && !skill.policy.has_link {
        violations.push(Violation::PermissionsWithoutPolicy {
            permissions: skill.permissions.clone(),
        });
    }
    Review {
        skill_id: skill.id.0.clone(),
        violations,
    }
}

/// Dynamic review: certification informed by observed traffic — what the
/// paper's auditing framework enables. `observed_endpoints` is the set of
/// endpoint names captured while exercising the skill.
pub fn dynamic_review(skill: &Skill, observed_endpoints: &[alexa_net::Domain]) -> Review {
    let mut review = static_review(skill);
    let fl = FilterList::new();
    let orgs = alexa_net::OrgMap::new();
    // The advertising policy concerns third-party ad services embedded by
    // the skill; the platform's own telemetry endpoints (e.g.
    // device-metrics-us-2.amazon.com) are not the skill's doing.
    let at: Vec<String> = observed_endpoints
        .iter()
        .filter(|d| fl.is_ad_tracking(d) && orgs.org_of(d) != Some(alexa_net::orgmap::AMAZON))
        .map(|d| d.as_str().to_string())
        .collect();
    if !skill.streaming && !at.is_empty() {
        review
            .violations
            .push(Violation::AdPolicyViolation { endpoints: at });
    }
    if !skill.policy.has_link
        && !observed_endpoints.is_empty()
        && skill.collects_type(alexa_net::DataType::CustomerId)
        && skill.has_non_amazon_backend()
    {
        review
            .violations
            .push(Violation::UndisclosedIdentifierCollection);
    }
    review
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marketplace::Marketplace;
    use alexa_net::Domain;

    fn market() -> Marketplace {
        Marketplace::generate(42)
    }

    #[test]
    fn static_review_misses_all_six_ad_violators() {
        // The paper's core observation: certification passed these skills.
        let m = market();
        let fl = FilterList::new();
        let violators: Vec<&crate::skill::Skill> = m
            .all()
            .iter()
            .filter(|s| !s.streaming && s.backends.iter().any(|b| fl.is_ad_tracking(b)))
            .collect();
        assert_eq!(violators.len(), 6);
        for s in &violators {
            let review = static_review(s);
            assert!(
                !review
                    .violations
                    .iter()
                    .any(|v| matches!(v, Violation::AdPolicyViolation { .. })),
                "{} should pass static review",
                s.name
            );
        }
    }

    #[test]
    fn dynamic_review_catches_all_six() {
        let m = market();
        let fl = FilterList::new();
        let mut caught = 0;
        for s in m.all() {
            let review = dynamic_review(s, &s.backends);
            let flagged = review
                .violations
                .iter()
                .any(|v| matches!(v, Violation::AdPolicyViolation { .. }));
            let truth = !s.streaming && s.backends.iter().any(|b| fl.is_ad_tracking(b));
            assert_eq!(flagged, truth, "{}", s.name);
            if flagged {
                caught += 1;
            }
        }
        assert_eq!(caught, 6);
    }

    #[test]
    fn streaming_skills_may_embed_ad_services() {
        // Garmin streams content: its A&T endpoints are policy-compliant.
        let m = market();
        let garmin = m.by_name("Garmin").unwrap();
        let review = dynamic_review(garmin, &garmin.backends);
        assert!(!review
            .violations
            .iter()
            .any(|v| matches!(v, Violation::AdPolicyViolation { .. })));
    }

    #[test]
    fn permissions_require_policy_link() {
        let m = market();
        let offenders = m
            .all()
            .iter()
            .filter(|s| !s.permissions.is_empty() && !s.policy.has_link)
            .count();
        let flagged = m
            .all()
            .iter()
            .filter(|s| {
                static_review(s)
                    .violations
                    .iter()
                    .any(|v| matches!(v, Violation::PermissionsWithoutPolicy { .. }))
            })
            .count();
        assert_eq!(offenders, flagged);
    }

    #[test]
    fn clean_skill_passes_both_reviews() {
        let m = market();
        let sonos = m.by_name("Sonos").unwrap();
        assert!(static_review(sonos).passes());
        let endpoints: Vec<Domain> = vec![Domain::parse("api.amazon.com").unwrap()];
        // Sonos may carry the permissions-without-policy case only if it has
        // permissions and no link; it has a policy, so both reviews pass
        // unless it requests permissions (policy link present regardless).
        let dynamic = dynamic_review(sonos, &endpoints);
        assert!(!dynamic
            .violations
            .iter()
            .any(|v| matches!(v, Violation::AdPolicyViolation { .. })));
    }
}
