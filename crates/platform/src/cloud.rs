//! The Alexa cloud: mediator of every interaction.
//!
//! The paper's central structural finding (§4.1) is that **Amazon mediates
//! everything**: every voice input is interpreted by Amazon before any skill
//! sees it, most skills are hosted on Amazon infrastructure, and the device
//! additionally streams telemetry to Amazon endpoints. This module generates
//! the network traffic of one interaction session accordingly:
//!
//! * device → Amazon voice endpoints (one of the 11 `amazon.com` subdomains
//!   of Table 1) carrying the voice recording and identifiers;
//! * device → auxiliary Amazon endpoints (`prod.amcs-tachyon.com`,
//!   `api.amazonalexa.com`, CloudFront, AWS, the `a2z.com` ingestion
//!   endpoint, captive portals) — which subset a skill session touches is a
//!   deterministic function of the skill, calibrated to Table 1's per-domain
//!   skill counts;
//! * device → `device-metrics-us-2.amazon.com` telemetry (the most prominent
//!   tracking domain of §4.2);
//! * device → the skill's own backends (commercial Echo only) — including
//!   the advertising & tracking services embedded by the nine skills of
//!   Tables 3/4, with persistent identifiers attached when the skill
//!   collects them.
//!
//! Every interaction is also fed to the [`Profiler`].

use crate::profiler::Profiler;
use crate::skill::Skill;
use alexa_net::{DataType, DnsTable, Domain, Packet, Payload, Record};

/// Amazon's organization name (shared with `alexa-net`'s [`alexa_net::OrgMap`]).
pub const AMAZON_ORG: &str = alexa_net::orgmap::AMAZON;

/// The 11 `amazon.com` voice/infrastructure subdomains of Table 1.
const AMAZON_SUBDOMAINS: &[&str] = &[
    "avs-alexa-na.amazon.com",
    "api.amazon.com",
    "latinum.amazon.com",
    "dcape-na.amazon.com",
    "unagi-na.amazon.com",
    "device-artifacts-us.amazon.com",
    "todo-ta-g7g.amazon.com",
    "kindle-time.amazon.com",
    "arcus-uswest.amazon.com",
    "dp-gw-na.amazon.com",
    "msh.amazon.com",
];

/// The 7 CloudFront distribution hosts of Table 1.
const CLOUDFRONT_HOSTS: &[&str] = &[
    "d3p8zr0ffa9t17.cloudfront.net",
    "d1s31zyz7dcc2d.cloudfront.net",
    "dtjsystab.cloudfront.net",
    "d2c1wpa0t2hcer.cloudfront.net",
    "d38u2vnjldleoq.cloudfront.net",
    "d27xjbyqh4pibl.cloudfront.net",
    "d1g1zj4l2ac3sw.cloudfront.net",
];

/// The 4 AWS hosts of Table 1.
const AWS_HOSTS: &[&str] = &[
    "alexa-skill-hosted.s3.amazonaws.com",
    "lambda.us-east-1.amazonaws.com",
    "polly.us-east-1.amazonaws.com",
    "dynamodb.us-east-1.amazonaws.com",
];

/// Kind of interaction generating a session's traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InteractionKind {
    /// Skill installation / enablement (via the web companion app).
    Install,
    /// A voice utterance delivered to the skill (already transcribed).
    Utterance(String),
    /// A voice utterance that fell through to the built-in assistant.
    BuiltInUtterance(String),
    /// Skill uninstallation.
    Uninstall,
}

/// FNV-1a hash used for all deterministic per-skill decisions.
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// FNV-1a over the concatenation of `parts` — byte-equivalent to hashing
/// the `format!`-joined string, but allocation-free on the session path.
fn fnv_parts(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for part in parts {
        for b in part.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// A deterministic pseudo-Bernoulli draw from a skill id and a salt.
fn skill_chance(skill_id: &str, salt: &str, p: f64) -> bool {
    let h = fnv_parts(&[skill_id, ":", salt]);
    (h % 10_000) as f64 / 10_000.0 < p
}

/// The Alexa cloud simulation.
#[derive(Debug)]
pub struct AlexaCloud {
    dns: DnsTable,
    /// Amazon's profiling engine (interest inference, DSAR).
    pub profiler: Profiler,
    clock_ms: u64,
    /// Parsed-and-resolved endpoint cache: the same few dozen endpoint
    /// names are hit by every session, and `Domain::parse` re-validates
    /// the name each time. Both steps are pure functions of the name, so
    /// caching them is invisible to the generated traffic.
    // analyzer:allow(AD03) -- lookup-only cache of a pure function; iteration order never reaches an output
    endpoints: std::collections::HashMap<String, (Domain, std::net::Ipv4Addr)>,
}

impl AlexaCloud {
    /// Create a cloud instance.
    pub fn new() -> AlexaCloud {
        AlexaCloud {
            dns: DnsTable::new(),
            profiler: Profiler::new(),
            clock_ms: 0,
            // analyzer:allow(AD03) -- lookup-only cache, see the field's rationale
            endpoints: std::collections::HashMap::new(),
        }
    }

    /// Current simulation time in milliseconds.
    pub fn now(&self) -> u64 {
        self.clock_ms
    }

    /// Advance the simulation clock.
    pub fn advance(&mut self, ms: u64) {
        self.clock_ms += ms;
    }

    /// Access the DNS table (for reverse resolution in analyses).
    pub fn dns(&self) -> &DnsTable {
        &self.dns
    }

    fn endpoint(&mut self, name: &str) -> (Domain, std::net::Ipv4Addr) {
        if let Some(cached) = self.endpoints.get(name) {
            return cached.clone();
        }
        let d = Domain::parse(name).unwrap_or_else(|_| Domain::invalid_sentinel());
        let ip = self.dns.resolve(&d);
        self.endpoints.insert(name.to_string(), (d.clone(), ip));
        (d, ip)
    }

    fn push_out(&mut self, packets: &mut Vec<Packet>, name: &str, records: Vec<Record>) {
        let (d, ip) = self.endpoint(name);
        self.clock_ms += 3;
        packets.push(Packet::outgoing(
            self.clock_ms,
            d,
            ip,
            Payload::Plain(records),
        ));
    }

    fn push_in(&mut self, packets: &mut Vec<Packet>, name: &str, bytes: usize) {
        let (d, ip) = self.endpoint(name);
        self.clock_ms += 5;
        packets.push(Packet::incoming(
            self.clock_ms,
            d,
            ip,
            Payload::Encrypted { len: bytes },
        ));
    }

    /// Generate all traffic for one interaction session.
    ///
    /// `avs` selects the AVS Echo behaviour: the device only talks to
    /// Amazon-organization endpoints, so skill backends are never contacted.
    /// Device-model constraints (streaming unsupported on AVS) are enforced
    /// by the caller in `device.rs`.
    pub fn session_traffic(
        &mut self,
        account: &str,
        customer_id: &str,
        skill: &Skill,
        kind: &InteractionKind,
        avs: bool,
    ) -> Vec<Packet> {
        let mut packets = Vec::new();
        if skill.fails_to_load {
            // The session dies before producing traffic (4 skills, Table 1).
            return packets;
        }
        let sid = skill.id.0.as_str();

        match kind {
            InteractionKind::Install => {
                self.profiler.record_install(account, skill);
                let mut records = vec![Record::new(
                    DataType::VoiceRecording,
                    format!("alexa enable {}", skill.invocation),
                )];
                if skill.collects_type(DataType::CustomerId) {
                    records.push(Record::new(DataType::CustomerId, customer_id));
                }
                if skill.collects_type(DataType::SkillId) {
                    records.push(Record::new(DataType::SkillId, sid));
                }
                if skill.collects_type(DataType::Language) {
                    records.push(Record::new(DataType::Language, "en-US"));
                }
                if skill.collects_type(DataType::Timezone) {
                    records.push(Record::new(DataType::Timezone, "America/Los_Angeles"));
                }
                if skill.collects_type(DataType::Preference) {
                    records.push(Record::new(DataType::Preference, "units=imperial"));
                }
                self.push_out(&mut packets, "api.amazon.com", records);
                self.push_in(&mut packets, "api.amazon.com", 640);
            }
            InteractionKind::Utterance(text) | InteractionKind::BuiltInUtterance(text) => {
                let to_skill = matches!(kind, InteractionKind::Utterance(_));
                if to_skill {
                    self.profiler.record_interaction(account, skill, text);
                }
                // Voice upstream: recording + identifiers to an AVS endpoint.
                let avs_host = AMAZON_SUBDOMAINS
                    [(fnv_parts(&[sid, ":", text]) % AMAZON_SUBDOMAINS.len() as u64) as usize];
                let mut records = vec![Record::new(DataType::VoiceRecording, text.clone())];
                if to_skill && skill.collects_type(DataType::CustomerId) {
                    records.push(Record::new(DataType::CustomerId, customer_id));
                }
                if to_skill && skill.collects_type(DataType::SkillId) {
                    records.push(Record::new(DataType::SkillId, sid));
                }
                if to_skill && skill.collects_type(DataType::Preference) {
                    records.push(Record::new(DataType::Preference, "interaction-settings"));
                }
                if to_skill && skill.collects_type(DataType::AudioPlayerEvent) {
                    records.push(Record::new(DataType::AudioPlayerEvent, "PlaybackStarted"));
                }
                self.push_out(&mut packets, avs_host, records);
                self.push_in(&mut packets, avs_host, 2_048);

                // Auxiliary Amazon endpoints, hash-selected per skill with
                // probabilities calibrated to Table 1's skill counts / 446.
                if skill_chance(sid, "tachyon", 305.0 / 446.0) {
                    self.push_out(
                        &mut packets,
                        "prod.amcs-tachyon.com",
                        vec![Record::new(DataType::Preference, "sync-state")],
                    );
                }
                if skill_chance(sid, "alexa-api", 173.0 / 446.0) {
                    // The Alexa API call carries the skill identifier only
                    // when the skill's session actually transmits it;
                    // otherwise it is plain session telemetry.
                    let rec = if skill.collects_type(DataType::SkillId) {
                        Record::new(DataType::SkillId, sid)
                    } else {
                        Record::new(DataType::DeviceMetric, "alexa-api-sync")
                    };
                    self.push_out(&mut packets, "api.amazonalexa.com", vec![rec]);
                }
                if skill_chance(sid, "cloudfront", 144.0 / 446.0) {
                    let host =
                        CLOUDFRONT_HOSTS[(fnv(sid) % CLOUDFRONT_HOSTS.len() as u64) as usize];
                    self.push_in(&mut packets, host, 16_384);
                }
                if skill_chance(sid, "metrics", 123.0 / 446.0) {
                    self.push_out(
                        &mut packets,
                        "device-metrics-us-2.amazon.com",
                        vec![Record::new(DataType::DeviceMetric, "session-metrics")],
                    );
                }
                if skill_chance(sid, "aws", 52.0 / 446.0) {
                    let host = AWS_HOSTS[(fnv(sid) % AWS_HOSTS.len() as u64) as usize];
                    self.push_in(&mut packets, host, 4_096);
                }
                if skill_chance(sid, "arteries", 7.0 / 446.0) {
                    self.push_out(
                        &mut packets,
                        "ingestion.us-east-1.prod.arteries.alexa.a2z.com",
                        vec![Record::new(DataType::DeviceMetric, "arteries-ingest")],
                    );
                }
                if skill_chance(sid, "acs-portal", 27.0 / 446.0) {
                    self.push_in(&mut packets, "acsechocaptiveportal.com", 128);
                }
                if skill_chance(sid, "fireos-portal", 20.0 / 446.0) {
                    self.push_in(&mut packets, "fireoscaptiveportal.com", 128);
                }
                if skill_chance(sid, "dss", 2.0 / 446.0) {
                    self.push_in(&mut packets, "ffs-provisioner-config.amazon-dss.com", 256);
                }

                // Skill backends: only the commercial Echo, and only when the
                // utterance actually reached the skill.
                if !avs && to_skill {
                    for backend in &skill.backends {
                        let mut recs = Vec::new();
                        // §4.1: 8.59% of persistent-ID collectors also send
                        // data to third-party domains — modelled as the ID
                        // records accompanying the content request.
                        if skill.collects_type(DataType::SkillId) {
                            recs.push(Record::new(DataType::SkillId, sid));
                        }
                        if skill.collects_type(DataType::CustomerId) {
                            recs.push(Record::new(DataType::CustomerId, customer_id));
                        }
                        if skill.collects_type(DataType::AudioPlayerEvent) {
                            recs.push(Record::new(DataType::AudioPlayerEvent, "progress"));
                        }
                        let name = backend.as_str().to_string();
                        self.push_out(&mut packets, &name, recs);
                        self.push_in(&mut packets, &name, 8_192);
                    }
                }
            }
            InteractionKind::Uninstall => {
                let rec = if skill.collects_type(DataType::CustomerId) {
                    Record::new(DataType::CustomerId, customer_id)
                } else {
                    Record::new(DataType::DeviceMetric, "skill-disable")
                };
                self.push_out(&mut packets, "api.amazon.com", vec![rec]);
            }
        }
        packets
    }
}

impl Default for AlexaCloud {
    fn default() -> AlexaCloud {
        AlexaCloud::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::SkillCategory;
    use crate::skill::{PolicySpec, SkillId};

    fn skill(backends: &[&str], collects: &[DataType]) -> Skill {
        Skill {
            id: SkillId("skill-x".into()),
            name: "Skill X".into(),
            vendor: "Vendor X".into(),
            category: SkillCategory::FashionStyle,
            invocation: "skill x".into(),
            sample_utterances: vec![],
            reviews: 1,
            streaming: false,
            fails_to_load: false,
            requires_account_linking: false,
            permissions: vec![],
            backends: backends.iter().map(|b| Domain::parse(b).unwrap()).collect(),
            collects: collects.to_vec(),
            policy: PolicySpec::none(),
        }
    }

    #[test]
    fn utterance_always_reaches_amazon() {
        let mut cloud = AlexaCloud::new();
        let s = skill(&[], &[DataType::VoiceRecording]);
        let kind = InteractionKind::Utterance("what should i wear".into());
        let pkts = cloud.session_traffic("acct", "AMZN1", &s, &kind, false);
        assert!(!pkts.is_empty());
        assert!(pkts[0].remote.as_str().ends_with("amazon.com"));
        // Voice recording present in the plaintext.
        let recs = pkts[0].payload.records().unwrap();
        assert!(recs.iter().any(|r| r.data_type == DataType::VoiceRecording));
    }

    #[test]
    fn skill_backends_contacted_with_ids() {
        let mut cloud = AlexaCloud::new();
        let s = skill(
            &["play.podtrac.com"],
            &[
                DataType::VoiceRecording,
                DataType::SkillId,
                DataType::CustomerId,
            ],
        );
        let kind = InteractionKind::Utterance("tip please".into());
        let pkts = cloud.session_traffic("acct", "AMZN1", &s, &kind, false);
        let backend_pkt = pkts
            .iter()
            .find(|p| p.remote.as_str() == "play.podtrac.com" && p.payload.records().is_some())
            .expect("backend contacted");
        let recs = backend_pkt.payload.records().unwrap();
        assert!(recs.iter().any(|r| r.data_type == DataType::SkillId));
        assert!(recs.iter().any(|r| r.data_type == DataType::CustomerId));
    }

    #[test]
    fn avs_echo_never_contacts_non_amazon() {
        let mut cloud = AlexaCloud::new();
        let s = skill(&["play.podtrac.com", "chtbl.com"], &[DataType::SkillId]);
        let kind = InteractionKind::Utterance("hello".into());
        let pkts = cloud.session_traffic("acct", "AMZN1", &s, &kind, true);
        let orgs = alexa_net::OrgMap::new();
        for p in &pkts {
            assert_eq!(
                orgs.org_of(&p.remote),
                Some(AMAZON_ORG),
                "leaked to {}",
                p.remote
            );
        }
    }

    #[test]
    fn builtin_utterances_skip_skill_backends() {
        let mut cloud = AlexaCloud::new();
        let s = skill(&["play.podtrac.com"], &[DataType::SkillId]);
        let kind = InteractionKind::BuiltInUtterance("what time is it".into());
        let pkts = cloud.session_traffic("acct", "AMZN1", &s, &kind, false);
        assert!(pkts.iter().all(|p| p.remote.as_str() != "play.podtrac.com"));
    }

    #[test]
    fn failing_skill_produces_no_traffic() {
        let mut cloud = AlexaCloud::new();
        let mut s = skill(&[], &[]);
        s.fails_to_load = true;
        let pkts = cloud.session_traffic(
            "acct",
            "AMZN1",
            &s,
            &InteractionKind::Utterance("x".into()),
            false,
        );
        assert!(pkts.is_empty());
    }

    #[test]
    fn install_records_in_profiler_and_sends_settings() {
        let mut cloud = AlexaCloud::new();
        let s = skill(
            &[],
            &[
                DataType::Language,
                DataType::Timezone,
                DataType::Preference,
                DataType::SkillId,
            ],
        );
        let pkts = cloud.session_traffic("acct", "AMZN1", &s, &InteractionKind::Install, false);
        let recs = pkts[0].payload.records().unwrap();
        for dt in [DataType::Language, DataType::Timezone, DataType::Preference] {
            assert!(recs.iter().any(|r| r.data_type == dt), "{dt:?} missing");
        }
        assert_eq!(
            cloud.profiler.dominant_category("acct"),
            Some(SkillCategory::FashionStyle)
        );
    }

    #[test]
    fn sessions_are_deterministic() {
        let run = || {
            let mut cloud = AlexaCloud::new();
            let s = skill(&["chtbl.com"], &[DataType::SkillId]);
            cloud.session_traffic(
                "a",
                "c",
                &s,
                &InteractionKind::Utterance("hello".into()),
                false,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn timestamps_increase_monotonically() {
        let mut cloud = AlexaCloud::new();
        let s = skill(&["chtbl.com", "play.podtrac.com"], &[DataType::SkillId]);
        let pkts =
            cloud.session_traffic("a", "c", &s, &InteractionKind::Utterance("x".into()), false);
        for w in pkts.windows(2) {
            assert!(w[0].ts_ms < w[1].ts_ms);
        }
    }
}
