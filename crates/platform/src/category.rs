//! The nine skill categories the paper's interest personas are built from.

/// Skill categories studied by the paper (§3.1.1). Each interest persona
/// installs and interacts with the top-50 skills of exactly one category and
/// is referred to by the category name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SkillCategory {
    /// Vehicle companion skills (Garmin, FordPass, …).
    ConnectedCar,
    /// Dating and relationship advice skills.
    Dating,
    /// Fashion, makeup and style skills.
    FashionStyle,
    /// Pet sounds, pet care and animal facts skills.
    PetsAnimals,
    /// Prayer, scripture and religious radio skills.
    ReligionSpirituality,
    /// Device-vendor smart-home control skills.
    SmartHome,
    /// Wine pairing and beverage skills.
    WineBeverages,
    /// Workout, wellness and health-information skills.
    HealthFitness,
    /// Navigation and trip-planning skills.
    NavigationTripPlanners,
}

impl SkillCategory {
    /// All nine categories, in the paper's table order.
    pub const ALL: [SkillCategory; 9] = [
        SkillCategory::ConnectedCar,
        SkillCategory::Dating,
        SkillCategory::FashionStyle,
        SkillCategory::PetsAnimals,
        SkillCategory::ReligionSpirituality,
        SkillCategory::SmartHome,
        SkillCategory::WineBeverages,
        SkillCategory::HealthFitness,
        SkillCategory::NavigationTripPlanners,
    ];

    /// The marketplace category name as the paper prints it.
    pub fn label(self) -> &'static str {
        match self {
            SkillCategory::ConnectedCar => "Connected Car",
            SkillCategory::Dating => "Dating",
            SkillCategory::FashionStyle => "Fashion & Style",
            SkillCategory::PetsAnimals => "Pets & Animals",
            SkillCategory::ReligionSpirituality => "Religion & Spirituality",
            SkillCategory::SmartHome => "Smart Home",
            SkillCategory::WineBeverages => "Wine & Beverages",
            SkillCategory::HealthFitness => "Health & Fitness",
            SkillCategory::NavigationTripPlanners => "Navigation & Trip Planners",
        }
    }

    /// A short slug used in identifiers.
    pub fn slug(self) -> &'static str {
        match self {
            SkillCategory::ConnectedCar => "car",
            SkillCategory::Dating => "dating",
            SkillCategory::FashionStyle => "fashion",
            SkillCategory::PetsAnimals => "pets",
            SkillCategory::ReligionSpirituality => "religion",
            SkillCategory::SmartHome => "smarthome",
            SkillCategory::WineBeverages => "wine",
            SkillCategory::HealthFitness => "health",
            SkillCategory::NavigationTripPlanners => "navigation",
        }
    }
}

impl std::fmt::Display for SkillCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_distinct_categories() {
        let set: std::collections::HashSet<_> = SkillCategory::ALL.iter().collect();
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn labels_and_slugs_are_unique() {
        let labels: std::collections::HashSet<_> =
            SkillCategory::ALL.iter().map(|c| c.label()).collect();
        let slugs: std::collections::HashSet<_> =
            SkillCategory::ALL.iter().map(|c| c.slug()).collect();
        assert_eq!(labels.len(), 9);
        assert_eq!(slugs.len(), 9);
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(SkillCategory::FashionStyle.to_string(), "Fashion & Style");
    }
}
