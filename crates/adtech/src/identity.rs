//! Browser profiles and cookies.
//!
//! Each persona gets a **fresh browser profile** logged into its own Amazon
//! account, and a **unique IP address** (§3.1.1) so personas cannot
//! contaminate each other. Cookies are the client-side identifiers the
//! cookie-syncing machinery (§5.5) exchanges.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// One cookie set by an organization's domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cookie {
    /// Organization (registrable domain) owning the cookie.
    pub org: Arc<str>,
    /// Opaque identifier value. Shared (`Arc`): the same identifier appears
    /// in every sync event the cookie participates in, so cloning it must
    /// not copy the string each time.
    pub value: Arc<str>,
}

/// A persona's browser profile: cookie jar, login state, and source IP.
#[derive(Debug, Clone)]
pub struct BrowserProfile {
    /// Persona name this profile belongs to.
    pub persona: String,
    /// Unique source address assigned to the persona.
    pub ip: Ipv4Addr,
    /// Whether the profile is logged into the persona's Amazon account
    /// (true for Echo personas; the web-control personas browse logged in
    /// too, per §3.3's crawl setup).
    pub amazon_login: Option<String>,
    jar: BTreeMap<Arc<str>, Cookie>,
    /// Single-entry cache of the bidder roster's knowledge facts about this
    /// profile's user, keyed on whether the user held Echo segments when it
    /// was computed. The cached value is a pure function of (persona, key),
    /// so hits and misses are indistinguishable in results — and because
    /// the cache lives on the shard-owned profile rather than the shared
    /// crawler, hit/miss patterns (and thus allocation accounting) are a
    /// deterministic function of the shard alone, not of scheduling.
    pub(crate) view_cache: Option<(bool, Arc<crate::bidding::UserView>)>,
}

impl BrowserProfile {
    /// Create a fresh profile for a persona, with a deterministic unique IP.
    pub fn fresh(persona: &str, index: u8, amazon_account: Option<&str>) -> BrowserProfile {
        BrowserProfile {
            persona: persona.to_string(),
            ip: Ipv4Addr::new(192, 168, 10, index.max(1)),
            amazon_login: amazon_account.map(str::to_string),
            jar: BTreeMap::new(),
            view_cache: None,
        }
    }

    /// Get or mint the cookie for an organization. Cookie values are a
    /// deterministic function of (persona, org) — stable across visits,
    /// distinct across personas, exactly what sync detection relies on.
    pub fn cookie(&mut self, org: &str) -> Cookie {
        if let Some(c) = self.jar.get(org) {
            return c.clone();
        }
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self
            .persona
            .bytes()
            .chain(b":".iter().copied())
            .chain(org.bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let c = Cookie {
            org: Arc::from(org),
            value: format!("uid-{h:016x}").into(),
        };
        self.jar.insert(c.org.clone(), c.clone());
        c
    }

    /// Whether a cookie for the organization exists without minting one.
    pub fn has_cookie(&self, org: &str) -> bool {
        self.jar.contains_key(org)
    }

    /// Number of cookies in the jar.
    pub fn cookie_count(&self) -> usize {
        self.jar.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cookies_are_stable_within_profile() {
        let mut p = BrowserProfile::fresh("fashion", 1, Some("acct-fashion"));
        let a = p.cookie("criteo.com");
        let b = p.cookie("criteo.com");
        assert_eq!(a, b);
        assert_eq!(p.cookie_count(), 1);
    }

    #[test]
    fn cookies_differ_across_personas() {
        let mut a = BrowserProfile::fresh("fashion", 1, None);
        let mut b = BrowserProfile::fresh("dating", 2, None);
        assert_ne!(a.cookie("criteo.com").value, b.cookie("criteo.com").value);
    }

    #[test]
    fn cookies_differ_across_orgs() {
        let mut p = BrowserProfile::fresh("fashion", 1, None);
        assert_ne!(p.cookie("criteo.com").value, p.cookie("pubmatic.com").value);
    }

    #[test]
    fn fresh_profiles_have_unique_ips() {
        let a = BrowserProfile::fresh("a", 1, None);
        let b = BrowserProfile::fresh("b", 2, None);
        assert_ne!(a.ip, b.ip);
    }

    #[test]
    fn has_cookie_does_not_mint() {
        let p = BrowserProfile::fresh("a", 1, None);
        assert!(!p.has_cookie("criteo.com"));
        assert_eq!(p.cookie_count(), 0);
    }

    #[test]
    fn login_state_recorded() {
        let p = BrowserProfile::fresh("vanilla", 3, Some("acct-vanilla"));
        assert_eq!(p.amazon_login.as_deref(), Some("acct-vanilla"));
    }
}
