//! Audio advertising on streaming skills.
//!
//! §3.3/§5.4: the paper streams six hours of top-hit music per skill
//! (Amazon Music, Spotify, Pandora) per persona (Connected Car, Fashion &
//! Style, vanilla), records the audio in insulated rooms, transcribes it,
//! and manually extracts ads from the transcripts (289 ads total). The
//! planted ground truth reproduces the paper's findings:
//!
//! * ad load differs by persona on the same service (advertiser interest):
//!   Spotify streams a *fifth* as many ads to Connected Car as to the other
//!   personas (Table 9);
//! * some brands are persona-exclusive (Ashley and Ross on Spotify, Swiffer
//!   Wet Jet on Pandora — all for Fashion & Style; Febreeze Car on Pandora
//!   for Connected Car);
//! * Burlington and Kohl's skew heavily toward Fashion & Style on Pandora;
//! * ~16.6% of Amazon Music / Spotify ads are self-promotion (premium
//!   upsell).

use alexa_platform::SkillCategory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three audio-streaming skills of the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StreamingService {
    /// Amazon Music (the platform operator's own service).
    AmazonMusic,
    /// Spotify.
    Spotify,
    /// Pandora.
    Pandora,
}

impl StreamingService {
    /// All services in Table 9 column order.
    pub const ALL: [StreamingService; 3] = [
        StreamingService::AmazonMusic,
        StreamingService::Spotify,
        StreamingService::Pandora,
    ];

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            StreamingService::AmazonMusic => "Amazon Music",
            StreamingService::Spotify => "Spotify",
            StreamingService::Pandora => "Pandora",
        }
    }
}

impl std::fmt::Display for StreamingService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The audio-ad experiment's persona axis: two interest personas and the
/// vanilla control (`None`).
pub type AudioPersona = Option<SkillCategory>;

/// One event in a streaming session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AudioEvent {
    /// A song plays (title).
    Song(String),
    /// An ad break plays (brand, full spoken script).
    Ad {
        /// Advertiser brand.
        brand: String,
        /// The spoken ad script (what ends up in the recording).
        script: String,
    },
}

/// A recorded streaming session.
#[derive(Debug, Clone)]
pub struct StreamingSession {
    /// Service streamed.
    pub service: StreamingService,
    /// Session length in hours.
    pub hours: f64,
    /// Ordered events.
    pub events: Vec<AudioEvent>,
}

/// Expected ad count for a 6-hour session (calibrated to Table 9's counts:
/// Amazon Music 31/32/30, Spotify 8/45/36, Pandora 28/47/32 for Connected
/// Car / Fashion & Style / vanilla).
fn target_ads_per_6h(service: StreamingService, persona: AudioPersona) -> usize {
    use SkillCategory::{ConnectedCar, FashionStyle};
    match (service, persona) {
        (StreamingService::AmazonMusic, Some(ConnectedCar)) => 31,
        (StreamingService::AmazonMusic, Some(FashionStyle)) => 32,
        (StreamingService::AmazonMusic, _) => 30,
        (StreamingService::Spotify, Some(ConnectedCar)) => 8,
        (StreamingService::Spotify, Some(FashionStyle)) => 45,
        (StreamingService::Spotify, _) => 36,
        (StreamingService::Pandora, Some(ConnectedCar)) => 28,
        (StreamingService::Pandora, Some(FashionStyle)) => 47,
        (StreamingService::Pandora, _) => 32,
    }
}

/// Brand pool entry: (brand, weight for Connected Car, Fashion & Style,
/// vanilla). Weight 0 = never shown to that persona.
type BrandRow = (&'static str, f64, f64, f64);

fn brand_pool(service: StreamingService) -> &'static [BrandRow] {
    match service {
        StreamingService::AmazonMusic => &[
            ("Amazon Music Unlimited", 5.0, 5.0, 5.0), // self-promotion
            ("GEICO", 3.0, 3.0, 3.0),
            ("McDonald's", 3.0, 3.0, 3.0),
            ("T-Mobile", 2.0, 2.0, 2.0),
            ("Coca-Cola", 2.0, 2.0, 2.0),
            ("Home Depot", 2.0, 2.0, 2.0),
            ("Walgreens", 1.5, 1.5, 1.5),
        ],
        StreamingService::Spotify => &[
            ("Spotify Premium", 5.0, 5.0, 5.0), // self-promotion
            ("Ashley", 0.0, 3.0, 0.0),          // Fashion & Style exclusive
            ("Ross", 0.0, 3.0, 0.0),            // Fashion & Style exclusive
            ("Samsung", 2.0, 2.0, 2.0),
            ("State Farm", 2.0, 2.0, 2.0),
            ("Dunkin", 1.5, 1.5, 1.5),
            ("Uber", 1.0, 1.0, 1.0),
        ],
        StreamingService::Pandora => &[
            ("Swiffer Wet Jet", 0.0, 2.5, 0.0), // Fashion & Style exclusive
            ("Febreeze Car", 2.0, 0.0, 0.0),    // Connected Car exclusive
            ("Burlington", 0.5, 4.0, 0.7),      // heavily FS-skewed
            ("Kohl's", 0.5, 4.0, 0.7),          // heavily FS-skewed
            ("Taco Bell", 2.0, 2.0, 2.0),
            ("AT&T", 2.0, 2.0, 2.0),
            ("Liberty Mutual", 1.5, 1.5, 1.5),
        ],
    }
}

fn persona_weight(row: &BrandRow, persona: AudioPersona) -> f64 {
    match persona {
        Some(SkillCategory::ConnectedCar) => row.1,
        Some(SkillCategory::FashionStyle) => row.2,
        _ => row.3,
    }
}

const SONG_TITLES: &[&str] = &[
    "Midnight Drive",
    "Golden Hour",
    "Paper Hearts",
    "Neon Skyline",
    "Wildflower",
    "Gravity Falls",
    "Silver Lining",
    "Echo Chamber",
    "Summer Static",
    "Violet Rain",
];

/// Simulate one recorded streaming session.
pub fn simulate_session(
    service: StreamingService,
    persona: AudioPersona,
    hours: f64,
    seed: u64,
) -> StreamingSession {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x617564696f);
    let target = (target_ads_per_6h(service, persona) as f64 * hours / 6.0).round() as usize;
    // Songs: one every ~3.5 minutes.
    let songs = (hours * 60.0 / 3.5).round() as usize;
    let pool = brand_pool(service);
    let total_w: f64 = pool.iter().map(|r| persona_weight(r, persona)).sum();

    let mut events = Vec::with_capacity(songs + target);
    // Distribute ad breaks uniformly between songs.
    let every = if target > 0 {
        songs.max(1) / target.max(1)
    } else {
        usize::MAX
    };
    let mut ads_placed = 0usize;
    for i in 0..songs {
        events.push(AudioEvent::Song(
            SONG_TITLES[rng.gen_range(0..SONG_TITLES.len())].to_string(),
        ));
        if ads_placed < target && every != usize::MAX && (i + 1) % every.max(1) == 0 {
            // Weighted brand choice.
            let mut pick = rng.gen_range(0.0..total_w);
            let mut brand = pool[pool.len() - 1].0;
            for row in pool {
                let w = persona_weight(row, persona);
                if pick < w {
                    brand = row.0;
                    break;
                }
                pick -= w;
            }
            let script = format!(
                "{brand}. Shop now at {} dot com. Limited time offer, terms apply.",
                brand.to_ascii_lowercase().replace([' ', '\''], "")
            );
            events.push(AudioEvent::Ad {
                brand: brand.to_string(),
                script,
            });
            ads_placed += 1;
        }
    }
    StreamingSession {
        service,
        hours,
        events,
    }
}

impl StreamingSession {
    /// Number of ad events in the session (ground truth).
    pub fn ad_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, AudioEvent::Ad { .. }))
            .count()
    }
}

/// Speech-to-text with a word-error model (the paper transcribed recordings
/// with Adobe Premiere Pro and then manually cleaned them).
#[derive(Debug, Clone, Copy)]
pub struct Transcriber {
    /// Word error rate.
    pub wer: f64,
}

impl Default for Transcriber {
    fn default() -> Transcriber {
        Transcriber { wer: 0.03 }
    }
}

impl Transcriber {
    /// Transcribe a session into one line of text per event.
    pub fn transcribe(&self, session: &StreamingSession, seed: u64) -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x747478);
        session
            .events
            .iter()
            .map(|e| {
                let text = match e {
                    AudioEvent::Song(title) => format!("la la {title} ooh yeah {title}"),
                    AudioEvent::Ad { script, .. } => script.clone(),
                };
                text.split_whitespace()
                    .map(|w| {
                        if rng.gen_bool(self.wer) {
                            "[inaudible]".to_string()
                        } else {
                            w.to_string()
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect()
    }
}

/// Extracts ads from transcripts — the automated stand-in for the paper's
/// human coder, keyed on promotional phrases.
#[derive(Debug, Clone, Copy, Default)]
pub struct AudioAdExtractor;

/// Phrases that mark a transcript line as an advertisement.
const AD_MARKERS: &[&str] = &["shop now at", "limited time offer", "terms apply"];

impl AudioAdExtractor {
    /// Create an extractor.
    pub fn new() -> AudioAdExtractor {
        AudioAdExtractor
    }

    /// Extract advertised brands from transcript lines. The brand is the
    /// leading sentence of the ad script.
    pub fn extract(&self, transcripts: &[String]) -> Vec<String> {
        transcripts
            .iter()
            .filter(|line| {
                let lower = line.to_ascii_lowercase();
                AD_MARKERS.iter().any(|m| lower.contains(m))
            })
            .filter_map(|line| line.split('.').next().map(|brand| brand.trim().to_string()))
            .filter(|b| !b.is_empty() && !b.contains("[inaudible]"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use SkillCategory::{ConnectedCar, FashionStyle};

    #[test]
    fn six_hour_sessions_hit_table9_counts() {
        for service in StreamingService::ALL {
            for persona in [Some(ConnectedCar), Some(FashionStyle), None] {
                let s = simulate_session(service, persona, 6.0, 1);
                let want = target_ads_per_6h(service, persona);
                assert_eq!(s.ad_count(), want, "{service} {persona:?}");
            }
        }
    }

    #[test]
    fn spotify_starves_connected_car() {
        let cc = simulate_session(StreamingService::Spotify, Some(ConnectedCar), 6.0, 2);
        let fs = simulate_session(StreamingService::Spotify, Some(FashionStyle), 6.0, 2);
        assert!(
            cc.ad_count() * 5 <= fs.ad_count(),
            "{} vs {}",
            cc.ad_count(),
            fs.ad_count()
        );
    }

    #[test]
    fn exclusive_brands_respect_personas() {
        let brands = |persona| {
            let s = simulate_session(StreamingService::Pandora, persona, 60.0, 3);
            s.events
                .iter()
                .filter_map(|e| match e {
                    AudioEvent::Ad { brand, .. } => Some(brand.clone()),
                    _ => None,
                })
                .collect::<std::collections::BTreeSet<_>>()
        };
        let fs = brands(Some(FashionStyle));
        let cc = brands(Some(ConnectedCar));
        let v = brands(None);
        assert!(fs.contains("Swiffer Wet Jet"));
        assert!(!cc.contains("Swiffer Wet Jet"));
        assert!(!v.contains("Swiffer Wet Jet"));
        assert!(cc.contains("Febreeze Car"));
        assert!(!fs.contains("Febreeze Car"));
    }

    #[test]
    fn transcription_preserves_most_words() {
        let s = simulate_session(StreamingService::AmazonMusic, None, 6.0, 4);
        let t = Transcriber::default().transcribe(&s, 4);
        assert_eq!(t.len(), s.events.len());
        let garbled: usize = t.iter().map(|l| l.matches("[inaudible]").count()).sum();
        let total: usize = t.iter().map(|l| l.split_whitespace().count()).sum();
        assert!((garbled as f64) < 0.08 * total as f64);
    }

    #[test]
    fn extractor_recovers_most_ads() {
        let s = simulate_session(StreamingService::Pandora, Some(FashionStyle), 6.0, 5);
        let transcripts = Transcriber::default().transcribe(&s, 5);
        let ads = AudioAdExtractor::new().extract(&transcripts);
        let truth = s.ad_count();
        assert!(
            ads.len() >= truth * 8 / 10,
            "extracted {} of {truth}",
            ads.len()
        );
        assert!(ads.len() <= truth);
    }

    #[test]
    fn extractor_ignores_songs() {
        let session = StreamingSession {
            service: StreamingService::Spotify,
            hours: 0.1,
            events: vec![AudioEvent::Song("Paper Hearts".into())],
        };
        let transcripts = Transcriber { wer: 0.0 }.transcribe(&session, 1);
        assert!(AudioAdExtractor::new().extract(&transcripts).is_empty());
    }

    #[test]
    fn self_promotion_share_noticeable() {
        let s = simulate_session(StreamingService::Spotify, None, 60.0, 6);
        let ads: Vec<&str> = s
            .events
            .iter()
            .filter_map(|e| match e {
                AudioEvent::Ad { brand, .. } => Some(brand.as_str()),
                _ => None,
            })
            .collect();
        let promo = ads.iter().filter(|b| **b == "Spotify Premium").count();
        let share = promo as f64 / ads.len() as f64;
        assert!((0.1..0.5).contains(&share), "self-promo share {share}");
    }

    #[test]
    fn sessions_are_deterministic() {
        let a = simulate_session(StreamingService::Pandora, None, 6.0, 7);
        let b = simulate_session(StreamingService::Pandora, None, 6.0, 7);
        assert_eq!(a.events, b.events);
    }
}
