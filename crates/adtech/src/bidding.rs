//! Header bidding: slots, bidders and the CPM model.
//!
//! The paper's key inference channel: **bid values reflect advertiser
//! knowledge of the user** (established by the prior work the paper builds
//! on: Olejnik et al., Papadopoulos et al., Cook et al.). The CPM a bidder
//! quotes for an impression is modelled as
//!
//! ```text
//! cpm = base · slot_quality · season(iteration) · targeting_uplift · noise
//! ```
//!
//! * `base` — per-bidder log-normal demand (heavy-tailed, like real CPMs);
//! * `slot_quality` — per-slot multiplier (shared across personas, so
//!   common-slot filtering controls for it, §3.3);
//! * `season(iteration)` — the holiday effect the paper had to control for
//!   in Table 6 (their pre-interaction crawls ran just before Christmas);
//! * `targeting_uplift` — the causal link under audit: a bidder that *knows*
//!   the user's interest segments (because Amazon shares them with its
//!   cookie-sync partners, §5.5, or because a partner re-shared downstream)
//!   bids higher. Per-category strength is planted so that the recovered
//!   pattern matches Table 5/7 (six personas significantly above vanilla,
//!   Smart Home / Wine & Beverages / Health & Fitness not).

use alexa_platform::SkillCategory;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::sync::Arc;

/// One ad slot on a publisher page.
#[derive(Debug, Clone, PartialEq)]
pub struct AdSlot {
    /// Globally unique slot identifier (`site#position`). Shared (`Arc`) so
    /// the hundreds of thousands of bids quoting the slot reference one
    /// allocation instead of copying the id each time.
    pub id: Arc<str>,
    /// Publisher site hosting the slot.
    pub site: String,
    /// Quality multiplier (viewability, position). Shared across personas.
    pub quality: f64,
}

/// One bid returned through the header-bidding API.
#[derive(Debug, Clone, PartialEq)]
pub struct Bid {
    /// Bidder organization (registrable domain).
    pub bidder: Arc<str>,
    /// Slot the bid targets.
    pub slot_id: Arc<str>,
    /// Bid value in CPM (cost per mille), USD.
    pub cpm: f64,
}

/// What the ad ecosystem knows / can learn about the crawling user.
///
/// This is **ground truth** plumbing: the audit never constructs it from
/// hidden state — the orchestrator derives it from the platform profiler and
/// passes it into the simulation, exactly as reality would.
#[derive(Debug, Clone)]
pub struct UserState {
    /// Persona name (used only to seed deterministic knowledge draws).
    pub persona: String,
    /// Logged into an Amazon account (all Echo personas and vanilla).
    pub amazon_customer: bool,
    /// Interest segments Amazon inferred from Echo interactions.
    pub echo_segments: BTreeSet<SkillCategory>,
    /// Interest topics inferred from ordinary web browsing (web personas).
    pub web_segments: BTreeSet<String>,
}

impl UserState {
    /// A user with no interest signal at all.
    pub fn blank(persona: &str) -> UserState {
        UserState {
            persona: persona.to_string(),
            amazon_customer: false,
            echo_segments: BTreeSet::new(),
            web_segments: BTreeSet::new(),
        }
    }
}

/// Seasonal demand multiplier per crawl iteration.
///
/// The paper's six pre-interaction crawls ran just before Christmas 2021;
/// bid values were elevated for *every* persona (Table 6). The model is
/// anchored to the interaction `boundary` (the first post-interaction
/// iteration): the last three pre-interaction crawls hit the holiday peak,
/// the first three post-interaction crawls catch the fading tail.
#[derive(Debug, Clone, Copy)]
pub struct SeasonModel {
    /// Index of the first post-interaction iteration (paper: 6).
    pub boundary: usize,
}

impl SeasonModel {
    /// Season anchored at the given pre/post boundary.
    pub fn new(boundary: usize) -> SeasonModel {
        SeasonModel { boundary }
    }

    /// Demand multiplier for a crawl iteration.
    pub fn factor(self, iteration: usize) -> f64 {
        let b = self.boundary;
        if iteration < b.saturating_sub(3) {
            1.9 // early holiday ramp
        } else if iteration < b {
            3.1 // peak (the last pre-interaction crawls)
        } else if iteration < b + 3 {
            1.6 // first post-interaction crawls, season fading
        } else {
            1.0 // steady state
        }
    }
}

impl Default for SeasonModel {
    fn default() -> SeasonModel {
        SeasonModel::new(6)
    }
}

/// Per-category targeting-uplift parameters
/// `(median multiplier, contextual σ)`.
///
/// The *median multiplier* is the direct (partner) bid uplift when the
/// segment is known; the *contextual σ* is slot-level heterogeneity — how
/// much the segment's value varies with page context. It is drawn once per
/// (slot, persona), so it does **not** average out over crawl iterations.
///
/// Calibrated so the audit's Table 5/7 reproduction matches the paper's
/// pattern: six categories with strong, consistent uplift (statistically
/// significant vs vanilla at the paper's common-slot sample size); Smart
/// Home, Wine & Beverages and Health & Fitness with weaker, much noisier
/// uplift — elevated medians but no significance, and (for Health &
/// Fitness) the occasional enormous bid: the paper saw a 30× outlier there
/// while its median stayed lowest.
pub fn category_targeting(cat: SkillCategory) -> (f64, f64) {
    match cat {
        SkillCategory::ConnectedCar => (3.2, 0.25),
        SkillCategory::Dating => (3.5, 0.25),
        SkillCategory::FashionStyle => (3.2, 0.35),
        SkillCategory::PetsAnimals => (4.6, 0.20),
        SkillCategory::ReligionSpirituality => (3.8, 0.30),
        SkillCategory::SmartHome => (1.45, 0.25),
        SkillCategory::WineBeverages => (1.50, 0.35),
        SkillCategory::HealthFitness => (1.35, 0.40),
        SkillCategory::NavigationTripPlanners => (3.3, 0.25),
    }
}

/// A header-bidding participant.
#[derive(Debug, Clone)]
pub struct Bidder {
    /// Bidder organization (registrable domain).
    pub org: Arc<str>,
    /// Whether the org cookie-syncs with Amazon (receives Echo segments).
    pub is_partner: bool,
    /// Probability a non-partner learned the segments via downstream syncs.
    pub downstream_reach: f64,
    /// Per-bidder base demand: median CPM of its untargeted bids.
    pub base_median_cpm: f64,
    /// Probability the bidder responds to a bid request at all.
    pub participation: f64,
}

/// Log-normal sample with the given median and sigma.
fn lognormal(rng: &mut StdRng, median: f64, sigma: f64) -> f64 {
    // Box-Muller from two uniforms.
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    median * (sigma * z).exp()
}

/// FNV-1a over the concatenation of `parts`, for deterministic
/// per-(bidder, persona) knowledge draws. Streaming the parts through the
/// accumulator is byte-equivalent to hashing `format!`-joined strings but
/// allocates nothing — this runs on every quoted bid.
fn fnv_parts(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for part in parts {
        for b in part.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Deterministic log-normal contextual factor for a (slot, persona) pair:
/// the same slot is consistently more or less valuable for a given
/// audience, across all iterations and bidders.
fn contextual_factor(slot_id: &str, persona: &str, sigma: f64) -> f64 {
    let h1 = fnv_parts(&["ctx1|", slot_id, "|", persona]);
    let h2 = fnv_parts(&["ctx2|", slot_id, "|", persona]);
    let u1 = ((h1 % 0xFFFF_FFFF) as f64 + 1.0) / (0xFFFF_FFFFu64 as f64 + 2.0);
    let u2 = (h2 % 0xFFFF_FFFF) as f64 / 0xFFFF_FFFFu64 as f64;
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z).exp()
}

impl Bidder {
    /// Whether this bidder knows the user's Echo segments.
    ///
    /// Partners always do (Amazon shares segments with its sync partners);
    /// non-partners learn them through downstream syncs with probability
    /// `downstream_reach`, decided deterministically per (bidder, persona).
    pub fn knows_echo_segments(&self, user: &UserState) -> bool {
        if user.echo_segments.is_empty() {
            return false;
        }
        if self.is_partner {
            return true;
        }
        let h = fnv_parts(&[&self.org, "|", &user.persona]);
        (h % 10_000) as f64 / 10_000.0 < self.downstream_reach
    }

    /// Whether ordinary web-browsing interest data about this persona
    /// reached the bidder (standard third-party tracking; deterministic per
    /// (bidder, persona)).
    pub fn web_reached(&self, persona: &str) -> bool {
        let h = fnv_parts(&["web|", &self.org, "|", persona]);
        (h % 10_000) as f64 / 10_000.0 < 0.85
    }

    /// Quote a bid for a slot, or decline.
    pub fn bid(
        &self,
        slot: &AdSlot,
        user: &UserState,
        iteration: usize,
        season: SeasonModel,
        rng: &mut StdRng,
    ) -> Option<Bid> {
        self.bid_in_context(
            slot,
            &SlotContext::new(slot, user),
            self.knows_echo_segments(user),
            self.web_reached(&user.persona),
            user,
            iteration,
            season,
            rng,
        )
    }

    /// [`Bidder::bid`] with the deterministic per-(slot, user) contextual
    /// factors and the per-(bidder, user) knowledge facts precomputed. Both
    /// are RNG-free, so hoisting them out of the per-bid path (once per slot
    /// and once per user respectively) leaves the values — and every RNG
    /// draw — bit-identical to the unbatched path.
    #[allow(clippy::too_many_arguments)]
    pub fn bid_in_context(
        &self,
        slot: &AdSlot,
        ctx: &SlotContext,
        knows_echo: bool,
        web_reached: bool,
        user: &UserState,
        iteration: usize,
        season: SeasonModel,
        rng: &mut StdRng,
    ) -> Option<Bid> {
        if !rng.gen_bool(self.participation) {
            return None;
        }
        let base = lognormal(rng, self.base_median_cpm, 1.1);
        let mut uplift = 1.0;

        if let Some((median_u, echo_ctx)) = ctx.echo {
            if knows_echo {
                // Downstream knowledge is diluted relative to a direct sync.
                let strength = if self.is_partner {
                    median_u
                } else {
                    median_u.powf(0.75)
                };
                // Knowing a segment never *lowers* a bid below the
                // untargeted level: contextual irrelevance just means no
                // premium.
                uplift *= (strength * echo_ctx * lognormal(rng, 1.0, 0.3)).max(1.0);
            } else if user.amazon_customer && self.is_partner {
                // Knowing only "owns an Echo / shops at Amazon" is worth
                // little.
                uplift *= 1.15;
            }
        } else if user.amazon_customer && self.is_partner {
            uplift *= 1.15;
        }

        if let Some(web_ctx) = ctx.web {
            // Ordinary web-browsing interest data reaches effectively every
            // bidder (standard third-party tracking) — the resulting uplift
            // sits in the middle of the Echo categories' range, which is
            // what makes Echo and web interest personas statistically
            // indistinguishable (Table 11 / Figure 7).
            if web_reached {
                uplift *= (1.9 * web_ctx * lognormal(rng, 1.0, 0.3)).max(1.0);
            }
        }

        let cpm = base * slot.quality * season.factor(iteration) * uplift;
        Some(Bid {
            bidder: self.org.clone(),
            slot_id: slot.id.clone(),
            cpm,
        })
    }
}

/// Deterministic per-(slot, user) contextual factors, hoisted out of the
/// per-bidder bid path (they are RNG-free, so precomputing changes nothing).
#[derive(Debug, Clone, Copy)]
pub struct SlotContext {
    /// `(median uplift, contextual factor)` for the user's strongest Echo
    /// segment, when any exists.
    echo: Option<(f64, f64)>,
    /// Contextual factor for web-browsing interest, when any exists.
    web: Option<f64>,
}

impl SlotContext {
    /// Precompute the slot's contextual factors for a user.
    pub fn new(slot: &AdSlot, user: &UserState) -> SlotContext {
        // The strongest segment the bidders can monetize (bidder-independent:
        // every knowing bidder picks the same maximum).
        let echo = user
            .echo_segments
            .iter()
            .map(|&c| category_targeting(c))
            .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(median_u, ctx_sigma)| {
                (
                    median_u,
                    contextual_factor(&slot.id, &user.persona, ctx_sigma),
                )
            });
        let web = if user.web_segments.is_empty() {
            None
        } else {
            Some(contextual_factor(&slot.id, &user.persona, 0.35))
        };
        SlotContext { echo, web }
    }
}

/// Per-(bidder, user) knowledge facts for a whole roster, precomputed once
/// per user instead of once per quoted bid. The facts are deterministic
/// hashes of `(bidder org, persona)` — see [`Bidder::knows_echo_segments`]
/// and [`Bidder::web_reached`] — so hoisting them is invisible to results.
#[derive(Debug, Clone)]
pub struct UserView {
    /// Per bidder, in roster order: whether it knows the Echo segments.
    knows_echo: Vec<bool>,
    /// Per bidder, in roster order: whether web interest data reached it.
    web_reached: Vec<bool>,
}

/// A header-bidding auction: the roster of bidders attached to a page.
#[derive(Debug, Clone)]
pub struct Auction {
    /// Participating bidders.
    pub bidders: Vec<Bidder>,
    /// Seasonal model applied to every bid.
    pub season: SeasonModel,
}

impl Auction {
    /// Precompute the roster's knowledge facts about one user.
    pub fn user_view(&self, user: &UserState) -> UserView {
        UserView {
            knows_echo: self
                .bidders
                .iter()
                .map(|b| b.knows_echo_segments(user))
                .collect(),
            web_reached: self
                .bidders
                .iter()
                .map(|b| b.web_reached(&user.persona))
                .collect(),
        }
    }

    /// Collect all bids for a slot (the `pbjs.requestBids` analog).
    pub fn request_bids(
        &self,
        slot: &AdSlot,
        user: &UserState,
        iteration: usize,
        rng: &mut StdRng,
    ) -> Vec<Bid> {
        self.request_bids_with_view(slot, &self.user_view(user), user, iteration, rng)
    }

    /// [`Auction::request_bids`] with the user's knowledge facts
    /// precomputed (the crawler reuses one view across a whole crawl).
    pub fn request_bids_with_view(
        &self,
        slot: &AdSlot,
        view: &UserView,
        user: &UserState,
        iteration: usize,
        rng: &mut StdRng,
    ) -> Vec<Bid> {
        let ctx = SlotContext::new(slot, user);
        self.bidders
            .iter()
            .zip(view.knows_echo.iter().zip(&view.web_reached))
            .filter_map(|(b, (&knows, &web))| {
                b.bid_in_context(slot, &ctx, knows, web, user, iteration, self.season, rng)
            })
            .collect()
    }
}

/// Build the standard bidder roster: partners (from the sync graph) and
/// independent non-partner bidders.
pub fn standard_roster(partners: &[String]) -> Vec<Bidder> {
    let mut out = Vec::new();
    // 15 of the sync partners actively bid; the rest are trackers/DSPs that
    // sync but do not quote client-side header bids.
    for org in partners.iter().take(15) {
        out.push(Bidder {
            org: Arc::from(org.as_str()),
            is_partner: true,
            downstream_reach: 0.0,
            base_median_cpm: 0.030,
            participation: 0.72,
        });
    }
    for i in 0..15 {
        out.push(Bidder {
            org: format!("indieads{:02}.com", i + 1).into(),
            is_partner: false,
            downstream_reach: 0.55,
            base_median_cpm: 0.030,
            participation: 0.72,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn slot() -> AdSlot {
        AdSlot {
            id: "site#1".into(),
            site: "site".into(),
            quality: 1.0,
        }
    }

    fn partner() -> Bidder {
        Bidder {
            org: "criteo.com".into(),
            is_partner: true,
            downstream_reach: 0.0,
            base_median_cpm: 0.03,
            participation: 1.0,
        }
    }

    fn echo_user(cat: SkillCategory) -> UserState {
        let mut u = UserState::blank("p");
        u.amazon_customer = true;
        u.echo_segments.insert(cat);
        u
    }

    fn median_cpm(bidder: &Bidder, user: &UserState, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = slot();
        let mut cpms: Vec<f64> = (0..n)
            .filter_map(|_| bidder.bid(&s, user, 20, SeasonModel::default(), &mut rng))
            .map(|b| b.cpm)
            .collect();
        cpms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        cpms[cpms.len() / 2]
    }

    #[test]
    fn blank_user_gets_baseline_bids() {
        let m = median_cpm(&partner(), &UserState::blank("x"), 4000, 1);
        assert!((0.02..0.045).contains(&m), "median {m}");
    }

    #[test]
    fn segments_raise_partner_bids() {
        // The contextual factor is fixed per (slot, persona), so average the
        // uplift ratio across several slots.
        let mut log_ratio = 0.0;
        for i in 0..8 {
            let s = AdSlot {
                id: format!("site#{i}").into(),
                site: "site".into(),
                quality: 1.0,
            };
            let b = partner();
            let mut rng = StdRng::seed_from_u64(2 + i);
            let med = |user: &UserState, rng: &mut StdRng| -> f64 {
                let mut cpms: Vec<f64> = (0..2000)
                    .filter_map(|_| b.bid(&s, user, 20, SeasonModel::default(), rng))
                    .map(|x| x.cpm)
                    .collect();
                cpms.sort_by(|a, c| a.partial_cmp(c).unwrap());
                cpms[cpms.len() / 2]
            };
            let base = med(&UserState::blank("x"), &mut rng);
            let targeted = med(&echo_user(SkillCategory::ConnectedCar), &mut rng);
            log_ratio += (targeted / base).ln();
        }
        let geo_mean = (log_ratio / 8.0).exp();
        assert!(geo_mean > 2.0, "uplift ratio {geo_mean}");
        assert!(geo_mean < 6.0, "uplift ratio {geo_mean}");
    }

    #[test]
    fn weak_categories_get_smaller_uplift() {
        let strong = median_cpm(&partner(), &echo_user(SkillCategory::PetsAnimals), 4000, 3);
        let weak = median_cpm(
            &partner(),
            &echo_user(SkillCategory::HealthFitness),
            4000,
            3,
        );
        assert!(strong > weak * 1.5, "strong {strong} weak {weak}");
    }

    #[test]
    fn nonpartner_without_reach_never_knows() {
        let b = Bidder {
            is_partner: false,
            downstream_reach: 0.0,
            ..partner()
        };
        assert!(!b.knows_echo_segments(&echo_user(SkillCategory::Dating)));
    }

    #[test]
    fn nonpartner_knowledge_is_deterministic_per_persona() {
        let b = Bidder {
            is_partner: false,
            downstream_reach: 0.5,
            ..partner()
        };
        let u = echo_user(SkillCategory::Dating);
        assert_eq!(b.knows_echo_segments(&u), b.knows_echo_segments(&u));
    }

    #[test]
    fn season_peaks_before_christmas() {
        let s = SeasonModel::default();
        assert!(s.factor(4) > s.factor(0));
        assert!(s.factor(4) > s.factor(7));
        assert!(s.factor(7) > s.factor(20));
        assert_eq!(s.factor(20), 1.0);
    }

    #[test]
    fn slot_quality_scales_bids() {
        let mut rng = StdRng::seed_from_u64(9);
        let user = UserState::blank("x");
        let cheap = AdSlot {
            id: "a".into(),
            site: "s".into(),
            quality: 0.5,
        };
        let pricey = AdSlot {
            id: "b".into(),
            site: "s".into(),
            quality: 2.0,
        };
        let b = partner();
        let avg = |slot: &AdSlot, rng: &mut StdRng| -> f64 {
            (0..2000)
                .filter_map(|_| b.bid(slot, &user, 20, SeasonModel::default(), rng))
                .map(|x| x.cpm)
                .sum::<f64>()
                / 2000.0
        };
        assert!(avg(&pricey, &mut rng) > 2.0 * avg(&cheap, &mut rng));
    }

    #[test]
    fn web_segments_raise_bids_for_everyone() {
        // Web knowledge reaches a bidder with p = 0.85 (deterministic per
        // (bidder, persona)), so check across several non-partner bidders.
        let mut raised = 0;
        for i in 0..6 {
            let np = Bidder {
                org: format!("indieads{i:02}.com").into(),
                is_partner: false,
                downstream_reach: 0.0,
                ..partner()
            };
            let mut u = UserState::blank("web-health");
            u.web_segments.insert("health".into());
            let base = median_cpm(&np, &UserState::blank("web-health"), 4000, 5);
            let targeted = median_cpm(&np, &u, 4000, 5);
            if targeted > 1.8 * base {
                raised += 1;
            }
        }
        assert!(raised >= 4, "only {raised}/6 non-partner bidders raised");
    }

    #[test]
    fn participation_thins_bids() {
        let mut rng = StdRng::seed_from_u64(11);
        let b = Bidder {
            participation: 0.3,
            ..partner()
        };
        let s = slot();
        let u = UserState::blank("x");
        let n = (0..1000)
            .filter(|_| b.bid(&s, &u, 0, SeasonModel::default(), &mut rng).is_some())
            .count();
        assert!((200..400).contains(&n), "participated {n}");
    }

    #[test]
    fn standard_roster_split() {
        let g = crate::sync::SyncGraph::generate(1);
        let roster = standard_roster(g.partners());
        assert_eq!(roster.len(), 30);
        assert_eq!(roster.iter().filter(|b| b.is_partner).count(), 15);
    }
}
