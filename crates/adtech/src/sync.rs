//! The cookie-syncing graph.
//!
//! §5.5 of the paper observes that **41 third parties sync their cookies
//! with Amazon** (one-way: Amazon never syncs its own cookie out), and that
//! those partners **further sync with 247 other third parties**, propagating
//! user data deep into the ad ecosystem. This module plants that graph as
//! ground truth; the crawler emits matching sync redirects into the crawl
//! traffic, and the audit recovers the graph from the traffic alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Amazon's advertising domain, the hub of all observed syncs.
pub const AMAZON_AD_ORG: &str = "amazon-adsystem.com";

/// Real-world advertiser organizations seeding the partner list.
const NAMED_PARTNERS: &[&str] = &[
    "criteo.com",
    "pubmatic.com",
    "rubiconproject.com",
    "adnxs.com",
    "openx.net",
    "indexexchange.com",
    "sharethrough.com",
    "triplelift.com",
    "sovrn.com",
    "33across.com",
    "smartadserver.com",
    "medianet.com",
    "taboola.com",
    "outbrain.com",
    "bidswitch.net",
    "casalemedia.com",
    "gumgum.com",
    "yieldmo.com",
];

/// Number of advertisers syncing with Amazon (paper: 41).
pub const PARTNER_COUNT: usize = 41;

/// Number of downstream third parties partners sync onward with (paper: 247).
pub const DOWNSTREAM_COUNT: usize = 247;

/// The planted cookie-syncing graph.
#[derive(Debug, Clone)]
pub struct SyncGraph {
    partners: Vec<String>,
    downstream: Vec<(String, Vec<String>)>,
}

impl SyncGraph {
    /// Generate the graph: 41 partner orgs (named advertisers plus
    /// deterministic synthetic ones) and 247 downstream orgs, each reachable
    /// from at least one partner.
    pub fn generate(seed: u64) -> SyncGraph {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x73796e63);
        let mut partners: Vec<String> = NAMED_PARTNERS.iter().map(|s| s.to_string()).collect();
        for i in 0..(PARTNER_COUNT - NAMED_PARTNERS.len()) {
            partners.push(format!("adpartner{:02}.com", i + 1));
        }

        let pool: Vec<String> = (0..DOWNSTREAM_COUNT)
            .map(|i| format!("thirdparty{i:03}.net"))
            .collect();

        // Every downstream org gets at least one upstream partner; partners
        // fan out to 2–14 downstream orgs each.
        let mut downstream: Vec<(String, Vec<String>)> =
            partners.iter().map(|p| (p.clone(), Vec::new())).collect();
        for (i, d) in pool.iter().enumerate() {
            let k = if i < partners.len() {
                i // spread the first orgs evenly
            } else {
                rng.gen_range(0..partners.len())
            };
            downstream[k % partners.len()].1.push(d.clone());
        }
        // Extra edges: downstream orgs shared by several partners.
        for _ in 0..120 {
            let p = rng.gen_range(0..partners.len());
            let d = pool[rng.gen_range(0..pool.len())].clone();
            if !downstream[p].1.contains(&d) {
                downstream[p].1.push(d);
            }
        }
        SyncGraph {
            partners,
            downstream,
        }
    }

    /// Organizations that sync their cookies with Amazon.
    pub fn partners(&self) -> &[String] {
        &self.partners
    }

    /// Whether an org is an Amazon sync partner.
    pub fn is_partner(&self, org: &str) -> bool {
        self.partners.iter().any(|p| p == org)
    }

    /// The downstream orgs a partner syncs onward with.
    pub fn downstream_of(&self, partner: &str) -> &[String] {
        self.downstream
            .iter()
            .find(|(p, _)| p == partner)
            .map(|(_, d)| d.as_slice())
            .unwrap_or(&[])
    }

    /// All downstream third parties, deduplicated.
    pub fn all_downstream(&self) -> BTreeSet<String> {
        self.downstream
            .iter()
            .flat_map(|(_, d)| d.iter().cloned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_has_41_partners() {
        let g = SyncGraph::generate(1);
        assert_eq!(g.partners().len(), PARTNER_COUNT);
        assert!(g.is_partner("criteo.com"));
        assert!(!g.is_partner("amazon-adsystem.com"));
        assert!(!g.is_partner("example.com"));
    }

    #[test]
    fn graph_has_247_downstream() {
        let g = SyncGraph::generate(1);
        assert_eq!(g.all_downstream().len(), DOWNSTREAM_COUNT);
    }

    #[test]
    fn every_partner_has_downstream() {
        let g = SyncGraph::generate(2);
        for p in g.partners() {
            assert!(
                !g.downstream_of(p).is_empty(),
                "partner {p} has no downstream"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyncGraph::generate(7);
        let b = SyncGraph::generate(7);
        assert_eq!(a.partners(), b.partners());
        assert_eq!(a.all_downstream(), b.all_downstream());
    }

    #[test]
    fn downstream_are_not_partners() {
        let g = SyncGraph::generate(3);
        for d in g.all_downstream() {
            assert!(!g.is_partner(&d), "{d} is both partner and downstream");
        }
    }

    #[test]
    fn unknown_partner_has_no_downstream() {
        let g = SyncGraph::generate(4);
        assert!(g.downstream_of("not-a-partner.com").is_empty());
    }
}
