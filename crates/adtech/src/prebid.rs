//! A `prebid.js`-shaped client API.
//!
//! §3.3: the paper identifies header-bidding sites by injecting a script
//! that calls `pbjs.version`, treats a site as prebid-supported when the
//! call returns non-null, then collects bids via `pbjs.getBidResponses`
//! (or `pbjs.requestBids` when no bids arrived yet). This module exposes
//! the page-side object with exactly that surface, so the crawler's probe
//! logic works the way the paper's injected script did — including sites
//! where the object simply is not present.

use crate::bidding::{Auction, Bid, UserState, UserView};
use crate::website::Website;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The prebid version string our simulated publishers deploy.
pub const PREBID_VERSION: &str = "v7.27.0";

/// The page-side `pbjs` object, present only on prebid-enabled sites.
#[derive(Debug)]
pub struct PrebidPage<'a> {
    site: &'a Website,
    auction: &'a Auction,
    /// Bids already gathered on the page (empty until an auction runs).
    responses: BTreeMap<Arc<str>, Vec<Bid>>,
}

/// Probe a site for prebid support — the `pbjs.version` injection.
///
/// Returns `None` when the site does not run prebid (the injected call
/// would find no `pbjs` object).
pub fn probe<'a>(site: &'a Website, auction: &'a Auction) -> Option<PrebidPage<'a>> {
    if site.prebid {
        Some(PrebidPage {
            site,
            auction,
            responses: BTreeMap::new(),
        })
    } else {
        None
    }
}

impl<'a> PrebidPage<'a> {
    /// `pbjs.version`.
    pub fn version(&self) -> &'static str {
        PREBID_VERSION
    }

    /// `pbjs.adUnits`: the slot ids configured on the page.
    pub fn ad_units(&self) -> Vec<&str> {
        self.site.slots.iter().map(|s| &*s.id).collect()
    }

    /// `pbjs.getBidResponses`: bids gathered so far, per ad unit.
    pub fn get_bid_responses(&self) -> &BTreeMap<Arc<str>, Vec<Bid>> {
        &self.responses
    }

    /// `pbjs.requestBids`: run the header-bidding auction for every ad unit
    /// that loads, filling the response map. Returns the total number of
    /// bids received. `loaded` decides per-slot whether the unit rendered
    /// (the paper's analyses must handle slots that failed to load).
    pub fn request_bids<F>(
        &mut self,
        user: &UserState,
        iteration: usize,
        seed: u64,
        loaded: F,
    ) -> usize
    where
        F: FnMut(&str) -> bool,
    {
        let view = self.auction.user_view(user);
        self.request_bids_with_view(user, &view, iteration, seed, loaded)
    }

    /// [`PrebidPage::request_bids`] with the roster's knowledge facts about
    /// the user precomputed (the crawler caches them across a whole crawl —
    /// they are deterministic per user, so the bids are identical).
    pub fn request_bids_with_view<F>(
        &mut self,
        user: &UserState,
        view: &UserView,
        iteration: usize,
        seed: u64,
        mut loaded: F,
    ) -> usize
    where
        F: FnMut(&str) -> bool,
    {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x70626a73);
        let mut total = 0;
        for slot in &self.site.slots {
            if !loaded(&slot.id) {
                continue;
            }
            let bids = self
                .auction
                .request_bids_with_view(slot, view, user, iteration, &mut rng);
            total += bids.len();
            self.responses
                .entry(slot.id.clone())
                .or_default()
                .extend(bids);
        }
        total
    }

    /// `pbjs.getHighestCpmBids`: per ad unit, the winning bid so far.
    pub fn highest_cpm_bids(&self) -> Vec<&Bid> {
        self.responses
            .values()
            .filter_map(|bids| bids.iter().max_by(|a, b| a.cpm.total_cmp(&b.cpm)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bidding::{standard_roster, SeasonModel};
    use crate::sync::SyncGraph;
    use crate::website::WebEcosystem;

    fn setup() -> (Auction, WebEcosystem) {
        let graph = SyncGraph::generate(1);
        (
            Auction {
                bidders: standard_roster(graph.partners()),
                season: SeasonModel::default(),
            },
            WebEcosystem::generate(1, 400),
        )
    }

    #[test]
    fn probe_detects_prebid_sites_only() {
        let (auction, web) = setup();
        let with = web.all().iter().find(|w| w.prebid).unwrap();
        let without = web.all().iter().find(|w| !w.prebid).unwrap();
        assert!(probe(with, &auction).is_some());
        assert!(probe(without, &auction).is_none());
    }

    #[test]
    fn version_is_non_null_like_the_papers_check() {
        let (auction, web) = setup();
        let page = probe(web.prebid_sites(1)[0], &auction).unwrap();
        assert!(!page.version().is_empty());
        assert!(page.version().starts_with('v'));
    }

    #[test]
    fn request_bids_fills_responses() {
        let (auction, web) = setup();
        let site = web.prebid_sites(1)[0];
        let mut page = probe(site, &auction).unwrap();
        assert!(page.get_bid_responses().is_empty());
        let n = page.request_bids(&UserState::blank("t"), 10, 42, |_| true);
        assert!(n > 0);
        assert_eq!(
            page.get_bid_responses().len(),
            site.slots.len(),
            "every loaded unit collects responses"
        );
    }

    #[test]
    fn failed_units_collect_nothing() {
        let (auction, web) = setup();
        let site = web.prebid_sites(1)[0];
        let mut page = probe(site, &auction).unwrap();
        let n = page.request_bids(&UserState::blank("t"), 10, 42, |_| false);
        assert_eq!(n, 0);
        assert!(page.get_bid_responses().is_empty());
    }

    #[test]
    fn highest_cpm_bids_are_maxima() {
        let (auction, web) = setup();
        let site = web.prebid_sites(1)[0];
        let mut page = probe(site, &auction).unwrap();
        page.request_bids(&UserState::blank("t"), 10, 42, |_| true);
        for winner in page.highest_cpm_bids() {
            let unit = &page.get_bid_responses()[&winner.slot_id];
            assert!(unit.iter().all(|b| b.cpm <= winner.cpm));
        }
    }

    #[test]
    fn ad_units_match_site_slots() {
        let (auction, web) = setup();
        let site = web.prebid_sites(1)[0];
        let page = probe(site, &auction).unwrap();
        assert_eq!(page.ad_units().len(), site.slots.len());
    }
}
