//! The publisher web: ranked sites, prebid adoption, ad slots.
//!
//! §3.3: the paper crawls the Tranco top list probing for `prebid.js`
//! (`pbjs.version`), stops at the first 200 prebid-supported sites, and
//! collects bids there. This module generates the equivalent ranked web with
//! ~35% prebid adoption and 2–5 ad slots per prebid site.

use crate::bidding::AdSlot;
use alexa_net::Domain;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One publisher site.
#[derive(Debug, Clone)]
pub struct Website {
    /// Site domain.
    pub domain: Domain,
    /// Tranco-style popularity rank (1 = most popular).
    pub rank: usize,
    /// Whether the site runs `prebid.js` (probed via `pbjs.version`).
    pub prebid: bool,
    /// Header-bidding ad slots (empty on non-prebid sites).
    pub slots: Vec<AdSlot>,
}

/// The generated web ecosystem.
#[derive(Debug, Clone)]
pub struct WebEcosystem {
    websites: Vec<Website>,
}

impl WebEcosystem {
    /// Generate a ranked web of `n_sites` publishers.
    pub fn generate(seed: u64, n_sites: usize) -> WebEcosystem {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x776562);
        let mut websites = Vec::with_capacity(n_sites);
        for rank in 1..=n_sites {
            let name = format!("site{rank:04}.example.com");
            let domain = Domain::parse(&name).unwrap_or_else(|_| Domain::invalid_sentinel());
            let prebid = rng.gen_bool(0.35);
            let slots = if prebid {
                let n_slots = rng.gen_range(2..=5);
                (0..n_slots)
                    .map(|i| {
                        // Slot quality: log-normal around 1 with σ ≈ 0.9 so
                        // slot heterogeneity dominates within-persona bid
                        // spread (the paper controls for it by comparing
                        // common slots only).
                        let u1: f64 = rng.gen_range(1e-12..1.0);
                        let u2: f64 = rng.gen_range(0.0..1.0);
                        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                        AdSlot {
                            id: format!("{name}#slot{i}").into(),
                            site: name.clone(),
                            quality: (0.9 * z).exp(),
                        }
                    })
                    .collect()
            } else {
                Vec::new()
            };
            websites.push(Website {
                domain,
                rank,
                prebid,
                slots,
            });
        }
        WebEcosystem { websites }
    }

    /// All sites in rank order.
    pub fn all(&self) -> &[Website] {
        &self.websites
    }

    /// The first `n` prebid-supported sites by rank — the paper's crawl
    /// stops as soon as it has identified 200 of them.
    pub fn prebid_sites(&self, n: usize) -> Vec<&Website> {
        self.websites.iter().filter(|w| w.prebid).take(n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let web = WebEcosystem::generate(1, 700);
        assert_eq!(web.all().len(), 700);
    }

    #[test]
    fn prebid_adoption_near_35_percent() {
        let web = WebEcosystem::generate(2, 2000);
        let n = web.all().iter().filter(|w| w.prebid).count();
        assert!((600..800).contains(&n), "prebid sites: {n}");
    }

    #[test]
    fn can_find_200_prebid_sites() {
        let web = WebEcosystem::generate(3, 700);
        let sites = web.prebid_sites(200);
        assert_eq!(sites.len(), 200);
        assert!(sites.iter().all(|w| w.prebid && !w.slots.is_empty()));
    }

    #[test]
    fn prebid_sites_in_rank_order() {
        let web = WebEcosystem::generate(4, 700);
        let sites = web.prebid_sites(50);
        for w in sites.windows(2) {
            assert!(w[0].rank < w[1].rank);
        }
    }

    #[test]
    fn non_prebid_sites_have_no_slots() {
        let web = WebEcosystem::generate(5, 300);
        for w in web.all().iter().filter(|w| !w.prebid) {
            assert!(w.slots.is_empty());
        }
    }

    #[test]
    fn slot_ids_are_unique() {
        let web = WebEcosystem::generate(6, 700);
        let mut ids: Vec<&str> = web
            .all()
            .iter()
            .flat_map(|w| w.slots.iter().map(|s| &*s.id))
            .collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn generation_deterministic() {
        let a = WebEcosystem::generate(7, 100);
        let b = WebEcosystem::generate(7, 100);
        for (x, y) in a.all().iter().zip(b.all()) {
            assert_eq!(x.prebid, y.prebid);
            assert_eq!(x.slots.len(), y.slots.len());
        }
    }
}
