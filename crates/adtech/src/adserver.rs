//! Display-creative inventory and personalized ad selection.
//!
//! §5.3: the paper manually labels the creatives served to each persona and
//! finds (a) ads from installed skills' vendors (Microsoft, SimpliSafe,
//! Samsung, LG, Ford, Jeep) that appear broadly — *not* exclusive to the
//! persona with the skill — and (b) ads from **Amazon itself** that are
//! exclusive to single personas, some with apparent relevance (dehumidifier
//! and essential oils for Health & Fitness; Dyson vacuum ads for Smart
//! Home), some repeating without apparent relevance (Eero, Kindle,
//! Swarovski for Religion & Spirituality; a PC file-transfer tool for
//! Pets & Animals). This module plants exactly that inventory.

use crate::bidding::UserState;
use alexa_platform::SkillCategory;
use rand::rngs::StdRng;
use rand::Rng;

/// One served display creative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Creative {
    /// Advertiser brand.
    pub advertiser: String,
    /// Advertised product (the unit the paper labels).
    pub product: String,
}

/// Amazon's persona-exclusive creatives: (segment, product, per-iteration
/// probability calibrated to the paper's appearance counts over 25
/// iterations).
const AMAZON_EXCLUSIVES: &[(SkillCategory, &str, f64)] = &[
    (SkillCategory::HealthFitness, "Dehumidifier", 0.28), // 7 appearances / 5 iterations
    (SkillCategory::HealthFitness, "Essential oils", 0.04), // once
    (SkillCategory::SmartHome, "Dyson vacuum cleaner", 0.04),
    (SkillCategory::SmartHome, "Vacuum cleaner accessories", 0.04),
    (
        SkillCategory::ReligionSpirituality,
        "Eero WiFi router",
        0.42,
    ), // 12 / 8 iterations
    (SkillCategory::ReligionSpirituality, "Kindle", 0.5), // 14 / 4 iterations
    (
        SkillCategory::ReligionSpirituality,
        "Swarovski bracelet",
        0.08,
    ),
    (
        SkillCategory::PetsAnimals,
        "PC files copying/switching software",
        0.14,
    ),
];

/// Skill-vendor advertisers running broad (non-exclusive) campaigns, with
/// relative weights matching §5.3's counts (Microsoft 60, SimpliSafe 12, …).
const VENDOR_CAMPAIGNS: &[(&str, &str, f64)] = &[
    ("Microsoft", "Surface laptop", 0.60),
    ("SimpliSafe", "Home security system", 0.12),
    ("Samsung", "SmartThings hub", 0.01),
    ("LG", "ThinQ appliance", 0.01),
    ("Ford", "F-150 pickup", 0.03),
    ("Jeep", "Grand Cherokee", 0.02),
];

/// Background (untargeted) campaigns every persona sees.
const GENERIC_CAMPAIGNS: &[(&str, &str)] = &[
    ("Verizon", "5G plan"),
    ("Chase", "Credit card"),
    ("Progressive", "Car insurance"),
    ("HelloFresh", "Meal kit"),
    ("Wayfair", "Furniture"),
    ("Expedia", "Hotel deals"),
    ("Grammarly", "Writing assistant"),
    ("Audible", "Audiobooks"),
];

/// The ad server that fills won impressions with creatives.
#[derive(Debug, Clone, Default)]
pub struct AdServer;

impl AdServer {
    /// Create the ad server.
    pub fn new() -> AdServer {
        AdServer
    }

    /// Select the creatives shown to a user during one page visit.
    pub fn select(&self, user: &UserState, rng: &mut StdRng) -> Vec<Creative> {
        let mut out = Vec::new();
        // Generic background ads: 1–3 per page.
        let n = rng.gen_range(1..=3);
        for _ in 0..n {
            let (adv, prod) = GENERIC_CAMPAIGNS[rng.gen_range(0..GENERIC_CAMPAIGNS.len())];
            out.push(Creative {
                advertiser: adv.into(),
                product: prod.into(),
            });
        }
        // Vendor campaigns reach everyone (broad targeting).
        for &(adv, prod, weight) in VENDOR_CAMPAIGNS {
            if rng.gen_bool(weight / 10.0) {
                out.push(Creative {
                    advertiser: adv.into(),
                    product: prod.into(),
                });
            }
        }
        // Amazon's own retargeting: exclusive to the matching Echo segment.
        for &(cat, prod, p) in AMAZON_EXCLUSIVES {
            if user.echo_segments.contains(&cat) && rng.gen_bool(p / 3.0) {
                // p is a per-iteration rate; a persona visits ~hundreds of
                // pages per iteration, so the per-page rate is scaled down
                // and the crawler deduplicates per iteration.
                out.push(Creative {
                    advertiser: "Amazon".into(),
                    product: prod.into(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn user_with(cat: Option<SkillCategory>) -> UserState {
        let mut u = UserState::blank("t");
        u.amazon_customer = true;
        if let Some(c) = cat {
            u.echo_segments.insert(c);
        }
        u
    }

    fn collect_products(user: &UserState, pages: usize, seed: u64) -> BTreeSet<String> {
        let mut rng = StdRng::seed_from_u64(seed);
        let server = AdServer::new();
        let mut set = BTreeSet::new();
        for _ in 0..pages {
            for c in server.select(user, &mut rng) {
                set.insert(format!("{}:{}", c.advertiser, c.product));
            }
        }
        set
    }

    #[test]
    fn every_page_has_some_ads() {
        let mut rng = StdRng::seed_from_u64(1);
        let server = AdServer::new();
        let ads = server.select(&user_with(None), &mut rng);
        assert!(!ads.is_empty());
    }

    #[test]
    fn amazon_exclusives_only_for_matching_segment() {
        let health = collect_products(&user_with(Some(SkillCategory::HealthFitness)), 500, 2);
        let vanilla = collect_products(&user_with(None), 500, 2);
        assert!(health.contains("Amazon:Dehumidifier"));
        assert!(!vanilla.iter().any(|p| p.starts_with("Amazon:")));
    }

    #[test]
    fn religion_gets_eero_and_kindle() {
        let rel = collect_products(
            &user_with(Some(SkillCategory::ReligionSpirituality)),
            500,
            3,
        );
        assert!(rel.contains("Amazon:Eero WiFi router"));
        assert!(rel.contains("Amazon:Kindle"));
        assert!(!rel.contains("Amazon:Dehumidifier"));
    }

    #[test]
    fn vendor_campaigns_reach_everyone() {
        let vanilla = collect_products(&user_with(None), 3000, 4);
        let smarthome = collect_products(&user_with(Some(SkillCategory::SmartHome)), 3000, 4);
        // Microsoft runs the heaviest campaign: both personas see it.
        assert!(vanilla.contains("Microsoft:Surface laptop"));
        assert!(smarthome.contains("Microsoft:Surface laptop"));
    }

    #[test]
    fn selection_is_deterministic_per_seed() {
        let a = collect_products(&user_with(Some(SkillCategory::PetsAnimals)), 100, 5);
        let b = collect_products(&user_with(Some(SkillCategory::PetsAnimals)), 100, 5);
        assert_eq!(a, b);
    }
}
