//! Advertising-technology substrate.
//!
//! The paper infers data usage and sharing from the *advertising ecosystem's
//! observable behaviour*: header-bidding bid values, served ad creatives,
//! cookie-sync redirects in crawl traffic, and audio ads on streaming
//! skills. This crate simulates that ecosystem with planted ground truth:
//!
//! * [`identity`] — browser profiles and cookies (one fresh profile per
//!   persona, logged into the persona's Amazon account);
//! * [`sync`] — the cookie-syncing graph: 41 advertisers sync one-way with
//!   Amazon, and onward with 247 further third parties (§5.5);
//! * [`bidding`] — a `prebid.js`-style header-bidding auction whose CPMs
//!   respond to advertiser knowledge of the user, seasonal effects, and slot
//!   quality — the causal structure prior work established and the paper's
//!   inference method depends on;
//! * [`website`] — a Tranco-style ranked web with ~35% prebid adoption and
//!   per-site bidder rosters;
//! * [`crawler`] — the OpenWPM-equivalent crawler that visits prebid sites,
//!   requests bids, records creatives and captures sync redirects;
//! * [`adserver`] — display-creative inventory, including the specific
//!   personalized ads the paper observed (Table 8);
//! * [`audio`] — streaming sessions on Amazon Music / Spotify / Pandora with
//!   inserted audio ads, a noisy transcriber, and ad extraction (§5.4).
//!
//! The audit framework reads **only the observables** (bids, creatives,
//! requests, transcripts); the planted parameters exist so tests can verify
//! recovery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adserver;
pub mod audio;
pub mod bidding;
pub mod crawler;
pub mod identity;
pub mod prebid;
pub mod sync;
pub mod website;

pub use adserver::{AdServer, Creative};
pub use audio::{AudioAdExtractor, AudioEvent, StreamingService, StreamingSession, Transcriber};
pub use bidding::{AdSlot, Auction, Bid, Bidder, SeasonModel, UserState};
pub use crawler::{Crawler, SyncObservation, VisitRecord};
pub use identity::{BrowserProfile, Cookie};
pub use sync::SyncGraph;
pub use website::{WebEcosystem, Website};
