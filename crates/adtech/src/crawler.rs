//! The OpenWPM-equivalent crawler.
//!
//! §3.3: the paper crawls 200 prebid-supported sites per iteration, logged
//! in as each persona, and records three observable streams per visit:
//!
//! 1. **bids** — via an injected script calling `pbjs.getBidResponses` /
//!    `pbjs.requestBids`;
//! 2. **creatives** — the served ad images;
//! 3. **network requests** — from which cookie-sync redirects are detected
//!    (URL-embedded partner identifiers, §5.5).
//!
//! Slots fail to load sometimes; the analysis keeps only slots that loaded
//! for *all* personas ("common slots") to control for slot effects.

use crate::adserver::AdServer;
use crate::bidding::{Auction, Bid, UserState, UserView};
use crate::identity::BrowserProfile;
use crate::sync::{SyncGraph, AMAZON_AD_ORG};
use crate::website::Website;
use crate::Creative;
use alexa_fault::{FaultChannel, FaultPlane};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A cookie-sync redirect observed in crawl traffic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SyncObservation {
    /// Organization initiating the sync (sends its cookie). Shared (`Arc`):
    /// the same few dozen orgs appear in tens of thousands of sync events.
    pub from_org: Arc<str>,
    /// Organization receiving the identifier.
    pub to_org: Arc<str>,
    /// The user identifier embedded in the redirect URL.
    pub user_id: Arc<str>,
}

/// Everything recorded during one page visit.
#[derive(Debug, Clone, Default)]
pub struct VisitRecord {
    /// Site visited.
    pub site: String,
    /// Crawl iteration this visit belongs to.
    pub iteration: usize,
    /// Bids observed via the prebid API, per loaded slot.
    pub bids: Vec<Bid>,
    /// Ad creatives rendered on the page.
    pub creatives: Vec<Creative>,
    /// Cookie-sync redirects seen in the network log.
    pub syncs: Vec<SyncObservation>,
}

/// The persona-facing crawler.
#[derive(Debug)]
pub struct Crawler {
    auction: Auction,
    adserver: AdServer,
    /// Probability a slot loads during a visit.
    pub slot_load_rate: f64,
    fault: FaultPlane,
    sync_plan: SyncPlan,
}

/// The sync roles precomputed from `(auction, sync_graph)` at construction:
/// which bidders are Amazon sync partners and which partners are page
/// trackers that never bid, each with its downstream orgs resolved. The
/// visit loop walks these lists in the exact order the original per-visit
/// membership scans produced, so RNG draw order is unchanged — this only
/// removes the repeated linear string searches from every visit.
#[derive(Debug)]
struct SyncPlan {
    /// Partner bidders, in roster order: `(org, downstream orgs)`.
    partner_bidders: Vec<(Arc<str>, Vec<Arc<str>>)>,
    /// Non-bidding sync partners, in partner-list order.
    trackers: Vec<(Arc<str>, Vec<Arc<str>>)>,
    /// Amazon's ad endpoint, the hub every sync points at.
    amazon: Arc<str>,
}

impl SyncPlan {
    fn build(auction: &Auction, graph: &SyncGraph) -> SyncPlan {
        let arcs = |orgs: &[String]| -> Vec<Arc<str>> {
            orgs.iter().map(|d| Arc::from(d.as_str())).collect()
        };
        let partner_bidders = auction
            .bidders
            .iter()
            .filter(|b| graph.is_partner(&b.org))
            .map(|b| (b.org.clone(), arcs(graph.downstream_of(&b.org))))
            .collect();
        let trackers = graph
            .partners()
            .iter()
            .filter(|p| !auction.bidders.iter().any(|b| *b.org == ***p))
            .map(|p| (Arc::from(p.as_str()), arcs(graph.downstream_of(p))))
            .collect();
        SyncPlan {
            partner_bidders,
            trackers,
            amazon: Arc::from(AMAZON_AD_ORG),
        }
    }
}

impl Crawler {
    /// Build a crawler over an auction roster and sync graph.
    pub fn new(auction: Auction, sync_graph: SyncGraph) -> Crawler {
        let sync_plan = SyncPlan::build(&auction, &sync_graph);
        Crawler {
            auction,
            adserver: AdServer::new(),
            slot_load_rate: 0.8,
            fault: FaultPlane::disabled(),
            sync_plan,
        }
    }

    /// Route bid collection through a fault plane ([`FaultChannel::BidLoss`]).
    /// An inactive plane leaves every visit untouched.
    pub fn with_fault_plane(mut self, plane: FaultPlane) -> Crawler {
        self.fault = plane;
        self
    }

    /// Visit one site as a persona and record the observables.
    pub fn visit(
        &self,
        site: &Website,
        profile: &mut BrowserProfile,
        user: &UserState,
        iteration: usize,
        seed: u64,
    ) -> VisitRecord {
        let record = alexa_obs::agg_time("crawler.visit", || {
            self.visit_uninstrumented(site, profile, user, iteration, seed)
        });
        alexa_obs::agg_count("crawler.visits", 1);
        alexa_obs::agg_count("crawler.bids", record.bids.len() as u64);
        alexa_obs::agg_count("crawler.creatives", record.creatives.len() as u64);
        alexa_obs::agg_count("crawler.syncs", record.syncs.len() as u64);
        record
    }

    /// Like [`Crawler::visit`], but applies the fault plane's bid-loss
    /// channel and reports how many bid responses were lost.
    ///
    /// Losses are keyed by `(persona, site, iteration, bid index)` — the
    /// bid order inside a visit is deterministic, so the same bids vanish
    /// on every run regardless of `--jobs`. The filter runs *after* the
    /// visit's RNG streams finish, so injected losses never perturb the
    /// auction itself.
    pub fn visit_with_faults(
        &self,
        site: &Website,
        profile: &mut BrowserProfile,
        user: &UserState,
        iteration: usize,
        seed: u64,
    ) -> (VisitRecord, u64) {
        let mut record = self.visit(site, profile, user, iteration, seed);
        let mut lost = 0u64;
        if self.fault.is_active() {
            let before = record.bids.len();
            let persona = profile.persona.clone();
            let domain = site.domain.as_str();
            let mut idx = 0usize;
            record.bids.retain(|_| {
                let key = format!("{persona}/{domain}/{iteration}/{idx}");
                idx += 1;
                !self.fault.fires(FaultChannel::BidLoss, &key)
            });
            lost = (before - record.bids.len()) as u64;
            alexa_obs::agg_count("fault.bid_loss", lost);
        }
        (record, lost)
    }

    /// The roster's knowledge facts about `user`, from the profile's cache
    /// when the has-segments key still matches (a profile serves exactly one
    /// persona, so the persona never changes under a profile's cache).
    fn user_view(&self, profile: &mut BrowserProfile, user: &UserState) -> Arc<UserView> {
        let empty = user.echo_segments.is_empty();
        if let Some((was_empty, view)) = profile.view_cache.as_ref() {
            if *was_empty == empty {
                return view.clone();
            }
        }
        let view = Arc::new(self.auction.user_view(user));
        profile.view_cache = Some((empty, view.clone()));
        view
    }

    /// The visit itself, free of observability hooks. Recording happens in
    /// [`Crawler::visit`] and never feeds back into the visit's RNG streams.
    fn visit_uninstrumented(
        &self,
        site: &Website,
        profile: &mut BrowserProfile,
        user: &UserState,
        iteration: usize,
        seed: u64,
    ) -> VisitRecord {
        // Per-(site, persona, iteration) deterministic randomness.
        let mut h: u64 = seed ^ 0xc7a41;
        for b in site.domain.as_str().bytes().chain(profile.persona.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut rng = StdRng::seed_from_u64(h.wrapping_add(iteration as u64));

        let mut record = VisitRecord {
            site: site.domain.as_str().to_string(),
            iteration,
            ..VisitRecord::default()
        };
        // The paper's injected probe: a site without a `pbjs` object is
        // skipped entirely.
        let Some(mut page) = crate::prebid::probe(site, &self.auction) else {
            return record;
        };

        let view = self.user_view(profile, user);
        page.request_bids_with_view(
            user,
            &view,
            iteration,
            h.wrapping_add(iteration as u64),
            |_| rng.gen_bool(self.slot_load_rate),
        );
        record.bids = page
            .get_bid_responses()
            .values()
            .flatten()
            .cloned()
            .collect();

        record.creatives = self.adserver.select(user, &mut rng);

        // Cookie syncing: partners present on the page push their cookie to
        // Amazon (one-way — Amazon never pushes its own out), and re-share
        // onward with their downstream third parties. Partner bidders first
        // (roster order, sync rate 0.3), then the non-bidding tracker
        // partners (partner-list order, rate 0.18) — the same draw order the
        // original per-visit membership scans produced.
        for (plan, rate) in [
            (&self.sync_plan.partner_bidders, 0.3),
            (&self.sync_plan.trackers, 0.18),
        ] {
            for (org, downstream) in plan {
                if rng.gen_bool(rate) {
                    let cookie = profile.cookie(org);
                    record.syncs.push(SyncObservation {
                        from_org: org.clone(),
                        to_org: self.sync_plan.amazon.clone(),
                        user_id: cookie.value.clone(),
                    });
                    // Downstream propagation: each partner forwards to a few
                    // of its downstream orgs per sync event.
                    for d in downstream {
                        if rng.gen_bool(0.35) {
                            record.syncs.push(SyncObservation {
                                from_org: org.clone(),
                                to_org: d.clone(),
                                user_id: cookie.value.clone(),
                            });
                        }
                    }
                }
            }
        }
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bidding::standard_roster;
    use crate::bidding::SeasonModel;
    use crate::website::WebEcosystem;

    fn setup() -> (Crawler, WebEcosystem) {
        let graph = SyncGraph::generate(1);
        let auction = Auction {
            bidders: standard_roster(graph.partners()),
            season: SeasonModel::default(),
        };
        (Crawler::new(auction, graph), WebEcosystem::generate(1, 700))
    }

    #[test]
    fn prebid_sites_yield_bids() {
        // A single visit can see every slot fail to load (p ≈ 0.04 for a
        // two-slot page), so aggregate over a handful of sites.
        let (crawler, web) = setup();
        let mut profile = BrowserProfile::fresh("t", 1, None);
        let user = UserState::blank("t");
        let mut bids = 0;
        let mut creatives = 0;
        for site in web.prebid_sites(5) {
            let rec = crawler.visit(site, &mut profile, &user, 10, 42);
            bids += rec.bids.len();
            creatives += rec.creatives.len();
        }
        assert!(bids > 0);
        assert!(creatives > 0);
    }

    #[test]
    fn non_prebid_sites_yield_nothing() {
        let (crawler, web) = setup();
        let site = web.all().iter().find(|w| !w.prebid).unwrap();
        let mut profile = BrowserProfile::fresh("t", 1, None);
        let user = UserState::blank("t");
        let rec = crawler.visit(site, &mut profile, &user, 10, 42);
        assert!(rec.bids.is_empty());
        assert!(rec.syncs.is_empty());
    }

    #[test]
    fn visits_are_deterministic() {
        let (crawler, web) = setup();
        let site = web.prebid_sites(1)[0];
        let user = UserState::blank("t");
        let mut p1 = BrowserProfile::fresh("t", 1, None);
        let mut p2 = BrowserProfile::fresh("t", 1, None);
        let a = crawler.visit(site, &mut p1, &user, 3, 42);
        let b = crawler.visit(site, &mut p2, &user, 3, 42);
        assert_eq!(a.bids, b.bids);
        assert_eq!(a.syncs, b.syncs);
    }

    #[test]
    fn faulted_visits_lose_bids_deterministically() {
        use alexa_fault::FaultProfile;
        let (crawler, web) = setup();
        let crawler = crawler.with_fault_plane(FaultPlane::new(7, FaultProfile::hostile()));
        let user = UserState::blank("t");
        let run = || {
            let mut profile = BrowserProfile::fresh("t", 1, None);
            let mut bids = Vec::new();
            let mut lost = 0;
            for site in web.prebid_sites(10) {
                let (rec, l) = crawler.visit_with_faults(site, &mut profile, &user, 2, 42);
                bids.extend(rec.bids);
                lost += l;
            }
            (bids, lost)
        };
        let (bids_a, lost_a) = run();
        let (bids_b, lost_b) = run();
        assert_eq!(bids_a, bids_b);
        assert_eq!(lost_a, lost_b);
        assert!(lost_a > 0, "hostile profile must lose bids");
        assert!(
            !bids_a.is_empty(),
            "hostile profile must not lose everything"
        );
    }

    #[test]
    fn inactive_fault_plane_loses_nothing() {
        let (crawler, web) = setup();
        let site = web.prebid_sites(1)[0];
        let user = UserState::blank("t");
        let mut p1 = BrowserProfile::fresh("t", 1, None);
        let mut p2 = BrowserProfile::fresh("t", 1, None);
        let plain = crawler.visit(site, &mut p1, &user, 3, 42);
        let (gated, lost) = crawler.visit_with_faults(site, &mut p2, &user, 3, 42);
        assert_eq!(plain.bids, gated.bids);
        assert_eq!(lost, 0);
    }

    #[test]
    fn syncs_go_to_amazon_one_way() {
        let (crawler, web) = setup();
        let user = UserState::blank("t");
        let mut profile = BrowserProfile::fresh("t", 1, None);
        let mut saw_amazon_sync = false;
        for site in web.prebid_sites(30) {
            let rec = crawler.visit(site, &mut profile, &user, 5, 42);
            for s in &rec.syncs {
                assert_ne!(&*s.from_org, AMAZON_AD_ORG, "Amazon must never sync out");
                if &*s.to_org == AMAZON_AD_ORG {
                    saw_amazon_sync = true;
                }
            }
        }
        assert!(saw_amazon_sync);
    }

    #[test]
    fn sync_user_ids_match_profile_cookies() {
        let (crawler, web) = setup();
        let user = UserState::blank("fashion");
        let mut profile = BrowserProfile::fresh("fashion", 1, None);
        for site in web.prebid_sites(10) {
            let rec = crawler.visit(site, &mut profile, &user, 5, 42);
            for s in &rec.syncs {
                assert_eq!(s.user_id, profile.cookie(&s.from_org).value);
            }
        }
    }

    #[test]
    fn whole_partner_set_observable_over_a_crawl() {
        let (crawler, web) = setup();
        let user = UserState::blank("t");
        let mut profile = BrowserProfile::fresh("t", 1, None);
        let mut partners = std::collections::BTreeSet::new();
        for iteration in 0..8 {
            for site in web.prebid_sites(200) {
                let rec = crawler.visit(site, &mut profile, &user, iteration, 42);
                for s in rec.syncs {
                    if &*s.to_org == AMAZON_AD_ORG {
                        partners.insert(s.from_org);
                    }
                }
            }
        }
        assert_eq!(partners.len(), crate::sync::PARTNER_COUNT);
    }
}
