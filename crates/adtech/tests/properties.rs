//! Property-based tests for the ad-tech substrate.

use alexa_adtech::bidding::{standard_roster, SeasonModel, UserState};
use alexa_adtech::{audio, AdSlot, Auction, StreamingService, SyncGraph};
use alexa_platform::SkillCategory;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn category() -> impl Strategy<Value = SkillCategory> {
    prop::sample::select(SkillCategory::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bids_are_positive_and_finite(
        seed in 0u64..1_000_000,
        quality in 0.05..5.0f64,
        iteration in 0usize..31,
        cat in category(),
    ) {
        let graph = SyncGraph::generate(1);
        let auction = Auction {
            bidders: standard_roster(graph.partners()),
            season: SeasonModel::default(),
        };
        let slot = AdSlot { id: "p#1".into(), site: "p".into(), quality };
        let mut user = UserState::blank("prop");
        user.amazon_customer = true;
        user.echo_segments.insert(cat);
        let mut rng = StdRng::seed_from_u64(seed);
        for bid in auction.request_bids(&slot, &user, iteration, &mut rng) {
            prop_assert!(bid.cpm.is_finite());
            prop_assert!(bid.cpm > 0.0);
            prop_assert_eq!(&*bid.slot_id, "p#1");
        }
    }

    #[test]
    fn sync_graph_invariants_for_any_seed(seed in 0u64..1_000_000) {
        let g = SyncGraph::generate(seed);
        prop_assert_eq!(g.partners().len(), 41);
        prop_assert_eq!(g.all_downstream().len(), 247);
        for p in g.partners() {
            prop_assert!(!g.downstream_of(p).is_empty());
            prop_assert!(!g.all_downstream().contains(p));
        }
    }

    #[test]
    fn audio_sessions_scale_with_hours(
        seed in 0u64..1_000_000,
        hours in 1.0..12.0f64,
    ) {
        let short = audio::simulate_session(StreamingService::Pandora, None, hours, seed);
        let long = audio::simulate_session(StreamingService::Pandora, None, hours * 2.0, seed);
        prop_assert!(long.ad_count() >= short.ad_count());
        // Ad load stays proportional (±40% tolerance for rounding).
        let expected = 32.0 * hours / 6.0;
        prop_assert!((short.ad_count() as f64) > expected * 0.6);
        prop_assert!((short.ad_count() as f64) < expected * 1.4 + 2.0);
    }

    #[test]
    fn extraction_never_exceeds_ground_truth(
        seed in 0u64..1_000_000,
        wer in 0.0..0.2f64,
    ) {
        let session =
            audio::simulate_session(StreamingService::Spotify, Some(SkillCategory::FashionStyle), 3.0, seed);
        let transcripts = audio::Transcriber { wer }.transcribe(&session, seed);
        let ads = audio::AudioAdExtractor::new().extract(&transcripts);
        prop_assert!(ads.len() <= session.ad_count());
        if wer == 0.0 {
            prop_assert_eq!(ads.len(), session.ad_count());
        }
    }

    #[test]
    fn season_factor_is_bounded_and_unit_in_steady_state(
        boundary in 0usize..20,
        iteration in 0usize..100,
    ) {
        let s = SeasonModel::new(boundary);
        let f = s.factor(iteration);
        prop_assert!((1.0..=3.1).contains(&f));
        if iteration >= boundary + 3 {
            prop_assert_eq!(f, 1.0);
        }
    }
}
