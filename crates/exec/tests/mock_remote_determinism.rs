//! Property test: `MockRemoteBackend` retry sequences are a pure function of
//! (seed, fault profile, specs) — poll interleaving, worker count, and the
//! order shards are offered in must not change outcomes or stats.

use alexa_exec::{Backend, BackendRun, MockRemoteBackend, ShardOutcome, ShardSpec};
use alexa_fault::FaultProfile;
use proptest::prelude::*;

fn specs(n: usize) -> Vec<ShardSpec> {
    (0..n)
        .map(|i| ShardSpec {
            group: "persona".to_string(),
            index: i,
            label: format!("persona-{i}"),
            payload: format!("{i}"),
        })
        .collect()
}

fn exec(spec: &ShardSpec) -> Result<String, String> {
    let n: u64 = spec
        .payload
        .parse()
        .map_err(|_| "bad payload".to_string())?;
    Ok(format!("{:016x}", n.wrapping_mul(0x9e3779b97f4a7c15)))
}

fn profile(name: &str) -> FaultProfile {
    match name {
        "none" => FaultProfile::none(),
        "flaky" => FaultProfile::flaky(),
        "degraded" => FaultProfile::degraded(),
        _ => FaultProfile::hostile(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn retry_sequences_ignore_poll_interleaving(
        seed in prop::sample::select(vec![7u64, 1234, 2222, 0xdead_beef]),
        profile_name in prop::sample::select(vec!["none", "flaky", "degraded", "hostile"]),
        jobs in 1usize..9,
        rotate in 0usize..13,
        n in 1usize..14,
    ) {
        let backend = MockRemoteBackend::new(seed, profile(profile_name));
        // Sequential reference: one worker, structural submission order.
        let reference: BackendRun = backend.run(Some(1), specs(n), &exec).unwrap();

        // Vary the interleaving two ways at once: worker count (completion
        // order) and submission order (queue order).
        let mut shuffled = specs(n);
        shuffled.rotate_left(rotate % n);
        let run = backend.run(Some(jobs), shuffled, &exec).unwrap();

        prop_assert_eq!(&reference, &run);
        prop_assert_eq!(run.outcomes.len(), n);
        for (i, outcome) in run.outcomes.iter().enumerate() {
            prop_assert_eq!(outcome.index(), i);
        }
        prop_assert_eq!(run.stats.shards, n as u64);
        prop_assert_eq!(run.stats.committed + run.stats.lost, n as u64);
        if profile_name == "none" {
            prop_assert_eq!(run.stats.lost, 0);
            prop_assert!(run.outcomes.iter().all(|o| matches!(o, ShardOutcome::Done(_))));
        }
    }
}
