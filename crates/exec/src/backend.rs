//! Pluggable worker backends behind one `Backend` trait (DESIGN.md §15).
//!
//! The in-process [`par_map`] runs a closure over owned items; a backend
//! runs **serializable shards**: each unit of work is a [`ShardSpec`] whose
//! payload is an opaque JSON string, and each finished shard hands back a
//! [`ShardOutcome`] — either a result payload or a typed loss. Every
//! backend commits its outcomes through the ordered [`Committer`], so the
//! merged vector is a pure function of the specs regardless of which
//! substrate executed them or how it interleaved:
//!
//! * [`ThreadBackend`] — today's `par_map` semantics: the shard closure runs
//!   in-process on scoped worker threads.
//! * [`ProcessBackend`] — a pool of child processes speaking a line-oriented
//!   JSON protocol over stdin/stdout, with per-shard wall-clock timeouts,
//!   crash detection (non-zero exit, malformed output, dead pipe) and a
//!   bounded respawn budget. A dead worker degrades its shard, never the
//!   run.
//! * [`MockRemoteBackend`] — a submit → execute → poll → fetch state machine
//!   whose transient transport failures are driven by the deterministic
//!   [`FaultPlane`] through [`retry`] + [`RetryBudget`]: structural keys
//!   make the retry sequences independent of poll interleaving.
//!
//! Failure taxonomy: a shard whose own execution returns `Err` is a
//! **shard error** (the payload's producer decides what that means); a
//! worker that crashes, times out, desyncs its protocol, or permanently
//! fails transport is a **lost shard** ([`ShardOutcome::Lost`]). Both
//! degrade gracefully — callers account lost shards into coverage (exit 3)
//! instead of panicking the run. Transport accounting lands only in
//! [`BackendStats`], never in the shard payloads, so transient retries can
//! never change committed bytes.
//!
//! [`par_map`]: crate::par_map
//! [`FaultPlane`]: alexa_fault::FaultPlane
//! [`retry`]: alexa_fault::retry
//! [`RetryBudget`]: alexa_fault::RetryBudget

use crate::{job_policy, locked, par_map};
use alexa_fault::{retry, FaultChannel, FaultPlane, FaultProfile, RetryBudget, RetryPolicy};
use alexa_obs::Json;
use std::collections::VecDeque;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::str::FromStr;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

/// Protocol version of the shard wire format.
const WIRE_VERSION: u64 = 1;

/// One serializable unit of work.
///
/// `index` is the shard's structural position in its group's work list —
/// the committer orders outcomes by it, and backends require the specs of
/// one run to carry exactly the indexes `0..n`. `payload` is an opaque
/// string (by convention a rendered JSON document) that the executing side
/// decodes; the backend never looks inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Structural group name ("persona", "avs", ...).
    pub group: String,
    /// Fixed index within the group's work list.
    pub index: usize,
    /// Human label (persona name, category label).
    pub label: String,
    /// Opaque serialized input for the shard.
    pub payload: String,
}

impl ShardSpec {
    /// Encode the spec as one line of the worker protocol.
    pub fn to_wire_line(&self) -> String {
        Json::Obj(vec![
            ("v".into(), Json::Int(WIRE_VERSION)),
            ("group".into(), Json::Str(self.group.clone())),
            ("index".into(), Json::Int(self.index as u64)),
            ("label".into(), Json::Str(self.label.clone())),
            ("payload".into(), Json::Str(self.payload.clone())),
        ])
        .render()
    }

    /// Decode a protocol line back into a spec (the worker side).
    pub fn from_wire_line(line: &str) -> Result<ShardSpec, String> {
        let j = Json::parse(line).map_err(|e| format!("shard spec line: {e}"))?;
        if j.get("v").and_then(Json::as_u64) != Some(WIRE_VERSION) {
            return Err("shard spec line: unsupported protocol version".to_string());
        }
        let field = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("shard spec line: missing string field {k:?}"))
        };
        Ok(ShardSpec {
            group: field("group")?,
            index: j
                .get("index")
                .and_then(Json::as_u64)
                .ok_or("shard spec line: missing index")? as usize,
            label: field("label")?,
            payload: field("payload")?,
        })
    }
}

/// Encode a worker's reply for shard `index` as one protocol line.
pub fn encode_reply(index: usize, result: &Result<String, String>) -> String {
    let mut fields = vec![
        ("v".to_string(), Json::Int(WIRE_VERSION)),
        ("index".to_string(), Json::Int(index as u64)),
        ("ok".to_string(), Json::Bool(result.is_ok())),
    ];
    match result {
        Ok(payload) => fields.push(("payload".to_string(), Json::Str(payload.clone()))),
        Err(error) => fields.push(("error".to_string(), Json::Str(error.clone()))),
    }
    Json::Obj(fields).render()
}

/// Decode a worker reply line into `(index, result)`.
pub fn decode_reply(line: &str) -> Result<(usize, Result<String, String>), String> {
    let j = Json::parse(line).map_err(|e| format!("worker reply line: {e}"))?;
    if j.get("v").and_then(Json::as_u64) != Some(WIRE_VERSION) {
        return Err("worker reply line: unsupported protocol version".to_string());
    }
    let index = j
        .get("index")
        .and_then(Json::as_u64)
        .ok_or("worker reply line: missing index")? as usize;
    let ok = j
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or("worker reply line: missing ok flag")?;
    let result = if ok {
        Ok(j.get("payload")
            .and_then(Json::as_str)
            .ok_or("worker reply line: ok without payload")?
            .to_string())
    } else {
        Err(j
            .get("error")
            .and_then(Json::as_str)
            .ok_or("worker reply line: error without message")?
            .to_string())
    };
    Ok((index, result))
}

/// A successfully executed shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardResult {
    /// The spec's structural index.
    pub index: usize,
    /// Opaque serialized output.
    pub payload: String,
}

/// What one shard came to: a result, or a typed loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardOutcome {
    /// The shard executed and returned a payload.
    Done(ShardResult),
    /// The shard was lost — worker crash, timeout, malformed protocol, or
    /// permanent transport failure. The run degrades; it never panics.
    Lost {
        /// The spec's structural index.
        index: usize,
        /// Human-readable cause, surfaced in the coverage report.
        error: String,
    },
}

impl ShardOutcome {
    /// The structural index this outcome belongs to.
    pub fn index(&self) -> usize {
        match self {
            ShardOutcome::Done(r) => r.index,
            ShardOutcome::Lost { index, .. } => *index,
        }
    }
}

/// Deterministic-by-construction transport and pool counters.
///
/// These are *volatile* observability: they describe how the substrate
/// behaved (retries, respawns, timeouts), never what the shards computed,
/// and they must stay out of every run-ledger surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Shards offered to the backend.
    pub shards: u64,
    /// Shards committed with a result payload.
    pub committed: u64,
    /// Shards lost to the failure taxonomy above.
    pub lost: u64,
    /// Mock-remote submit retries.
    pub submit_retries: u64,
    /// Mock-remote poll retries.
    pub poll_retries: u64,
    /// Mock-remote result-fetch retries.
    pub result_retries: u64,
    /// Virtual transport backoff accumulated across retries.
    pub transport_backoff_ms: u64,
    /// Child processes spawned (initial pool).
    pub workers_spawned: u64,
    /// Child processes respawned after a failure.
    pub workers_respawned: u64,
    /// Per-shard wall-clock timeouts that killed a worker.
    pub timeouts: u64,
    /// Worker crashes (non-zero exit, dead pipe, EOF mid-shard).
    pub crashes: u64,
    /// Protocol violations (unparseable or misindexed replies).
    pub malformed: u64,
}

impl BackendStats {
    fn absorb(&mut self, other: &BackendStats) {
        self.shards += other.shards;
        self.committed += other.committed;
        self.lost += other.lost;
        self.submit_retries += other.submit_retries;
        self.poll_retries += other.poll_retries;
        self.result_retries += other.result_retries;
        self.transport_backoff_ms += other.transport_backoff_ms;
        self.workers_spawned += other.workers_spawned;
        self.workers_respawned += other.workers_respawned;
        self.timeouts += other.timeouts;
        self.crashes += other.crashes;
        self.malformed += other.malformed;
    }
}

/// A finished backend pass: outcomes in structural-index order plus the
/// substrate's own accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendRun {
    /// One outcome per spec, sorted by index — the committer's guarantee.
    pub outcomes: Vec<ShardOutcome>,
    /// Transport/pool counters for volatile observability.
    pub stats: BackendStats,
}

/// The shard executor a backend drives: decode the spec's payload, do the
/// work, re-encode the result. `Err` is a shard-level failure the producer
/// of the payload defined; transport failures never reach this function.
pub type ExecFn<'a> = &'a (dyn Fn(&ShardSpec) -> Result<String, String> + Sync);

/// Typed misuse of the ordered committer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitError {
    /// An outcome named an index outside `0..len`.
    OutOfRange {
        /// The offending index.
        index: usize,
        /// The committer's capacity.
        len: usize,
    },
    /// Two outcomes claimed the same index.
    Duplicate(usize),
    /// `into_ordered` found an index with no outcome.
    Missing(usize),
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::OutOfRange { index, len } => {
                write!(f, "shard index {index} out of range for {len} shard(s)")
            }
            CommitError::Duplicate(i) => write!(f, "shard index {i} committed twice"),
            CommitError::Missing(i) => write!(f, "no outcome committed for shard index {i}"),
        }
    }
}

impl std::error::Error for CommitError {}

/// The ordered committer: outcomes arrive in any order (worker completion
/// order, poll order, ...) and leave in structural-index order — exactly
/// once each. This is the single point that turns "whichever substrate ran
/// it, in whatever interleaving" back into the deterministic merge order
/// the digest guarantee needs.
#[derive(Debug)]
pub struct Committer {
    slots: Vec<Option<ShardOutcome>>,
}

impl Committer {
    /// A committer expecting exactly the indexes `0..n`.
    pub fn new(n: usize) -> Committer {
        Committer {
            slots: (0..n).map(|_| None).collect(),
        }
    }

    /// Offer one outcome; rejects out-of-range and duplicate indexes.
    pub fn offer(&mut self, outcome: ShardOutcome) -> Result<(), CommitError> {
        let index = outcome.index();
        let len = self.slots.len();
        match self.slots.get_mut(index) {
            None => Err(CommitError::OutOfRange { index, len }),
            Some(Some(_)) => Err(CommitError::Duplicate(index)),
            Some(slot) => {
                *slot = Some(outcome);
                Ok(())
            }
        }
    }

    /// Finish the commit: every index must have exactly one outcome.
    pub fn into_ordered(self) -> Result<Vec<ShardOutcome>, CommitError> {
        let mut out = Vec::with_capacity(self.slots.len());
        for (i, slot) in self.slots.into_iter().enumerate() {
            match slot {
                Some(outcome) => out.push(outcome),
                None => return Err(CommitError::Missing(i)),
            }
        }
        Ok(out)
    }
}

/// Commit an arbitrary-order outcome batch for `n` shards.
fn commit_all(n: usize, outcomes: Vec<ShardOutcome>) -> Result<Vec<ShardOutcome>, CommitError> {
    let mut committer = Committer::new(n);
    for outcome in outcomes {
        committer.offer(outcome)?;
    }
    committer.into_ordered()
}

/// An interchangeable execution substrate for serializable shards.
pub trait Backend: Sync {
    /// The backend's stable name (`thread` / `process` / `mock-remote`).
    fn name(&self) -> &'static str;

    /// Execute every spec and commit the outcomes in structural-index
    /// order. The specs must carry exactly the indexes `0..specs.len()`;
    /// anything else is a typed [`CommitError`].
    fn run(
        &self,
        jobs: Option<usize>,
        specs: Vec<ShardSpec>,
        exec_fn: ExecFn<'_>,
    ) -> Result<BackendRun, CommitError>;
}

/// Which backend a run should use — the `--backend` knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// In-process scoped worker threads (the default).
    #[default]
    Thread,
    /// A pool of `repro --shard-worker` child processes.
    Process,
    /// The fault-plane-driven submit/poll simulation.
    MockRemote,
}

impl BackendChoice {
    /// Every choice, in CLI documentation order.
    pub const ALL: [BackendChoice; 3] = [
        BackendChoice::Thread,
        BackendChoice::Process,
        BackendChoice::MockRemote,
    ];

    /// The stable CLI/plan token for this choice.
    pub fn label(&self) -> &'static str {
        match self {
            BackendChoice::Thread => "thread",
            BackendChoice::Process => "process",
            BackendChoice::MockRemote => "mock-remote",
        }
    }
}

/// Error from parsing an unknown backend token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendParseError(pub String);

impl fmt::Display for BackendParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend '{}' (expected thread|process|mock-remote)",
            self.0
        )
    }
}

impl std::error::Error for BackendParseError {}

impl FromStr for BackendChoice {
    type Err = BackendParseError;

    fn from_str(s: &str) -> Result<BackendChoice, BackendParseError> {
        BackendChoice::ALL
            .iter()
            .copied()
            .find(|c| c.label() == s)
            .ok_or_else(|| BackendParseError(s.to_string()))
    }
}

/// In-process backend wrapping today's [`par_map`] semantics: the shard
/// closure runs on scoped worker threads, clamped to hardware.
///
/// [`par_map`]: crate::par_map
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadBackend;

impl Backend for ThreadBackend {
    fn name(&self) -> &'static str {
        "thread"
    }

    fn run(
        &self,
        jobs: Option<usize>,
        specs: Vec<ShardSpec>,
        exec_fn: ExecFn<'_>,
    ) -> Result<BackendRun, CommitError> {
        let n = specs.len();
        let outcomes = par_map(jobs, specs, |_, spec| match exec_fn(&spec) {
            Ok(payload) => ShardOutcome::Done(ShardResult {
                index: spec.index,
                payload,
            }),
            Err(error) => ShardOutcome::Lost {
                index: spec.index,
                error,
            },
        });
        let outcomes = commit_all(n, outcomes)?;
        let stats = tally(n, &outcomes);
        Ok(BackendRun { outcomes, stats })
    }
}

/// Shared commit accounting.
fn tally(n: usize, outcomes: &[ShardOutcome]) -> BackendStats {
    let lost = outcomes
        .iter()
        .filter(|o| matches!(o, ShardOutcome::Lost { .. }))
        .count() as u64;
    BackendStats {
        shards: n as u64,
        committed: n as u64 - lost,
        lost,
        ..BackendStats::default()
    }
}

/// A pool of child worker processes speaking the line protocol.
///
/// Sizing comes from [`job_policy`] *without* the hardware clamp — separate
/// processes are true parallelism even on a 1-thread host. Each pool slot
/// runs a coordinator thread that feeds its child one spec at a time and
/// waits at most `timeout_ms` per shard; a timeout, crash, or protocol
/// violation kills the child, loses that shard, and (bounded by
/// `max_respawns` across the pool) replaces the worker for the remaining
/// queue. If every worker dies with the respawn budget spent, the leftover
/// shards are committed as lost — the run degrades, it never hangs.
#[derive(Debug, Clone)]
pub struct ProcessBackend {
    /// Child command line: program plus fixed arguments.
    pub worker_cmd: Vec<String>,
    /// Per-shard wall-clock budget before the worker is declared hung.
    pub timeout_ms: u64,
    /// Total worker replacements the pool may perform.
    pub max_respawns: u32,
}

impl ProcessBackend {
    /// A pool running `worker_cmd` with the default 30 s per-shard timeout
    /// and a respawn budget matching one replacement per pool slot later
    /// resolved by [`job_policy`].
    pub fn new(worker_cmd: Vec<String>) -> ProcessBackend {
        ProcessBackend {
            worker_cmd,
            timeout_ms: 30_000,
            max_respawns: 8,
        }
    }
}

/// One live child: the process handle plus the reader-thread channel that
/// delivers its stdout lines.
struct Worker {
    child: std::process::Child,
    lines: mpsc::Receiver<String>,
}

impl Worker {
    fn spawn(cmd: &[String]) -> Result<Worker, String> {
        let (prog, args) = cmd
            .split_first()
            .ok_or("process backend: empty worker command")?;
        let mut child = std::process::Command::new(prog)
            .args(args)
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn {prog}: {e}"))?;
        let stdout = child
            .stdout
            .take()
            .ok_or("process backend: worker has no stdout pipe")?;
        let (tx, lines) = mpsc::channel();
        // Detached reader: exits on child EOF (or when the receiver is
        // dropped), so it can never outlive the pool by more than a pipe
        // close.
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if tx.send(line).is_err() {
                    break;
                }
            }
        });
        Ok(Worker { child, lines })
    }

    /// Send one spec line; a write failure is a dead pipe (= crash).
    fn send(&mut self, spec: &ShardSpec) -> Result<(), String> {
        let stdin = self
            .child
            .stdin
            .as_mut()
            .ok_or("process backend: worker has no stdin pipe")?;
        writeln!(stdin, "{}", spec.to_wire_line()).map_err(|e| format!("dead pipe: {e}"))?;
        stdin.flush().map_err(|e| format!("dead pipe: {e}"))
    }

    /// Kill and reap the child, returning its exit description.
    fn kill(mut self) -> String {
        let _ = self.child.kill();
        match self.child.wait() {
            Ok(status) => format!("{status}"),
            Err(e) => format!("wait failed: {e}"),
        }
    }

    /// Reap a child that already exited, returning its exit description.
    fn reap(mut self) -> String {
        match self.child.wait() {
            Ok(status) => format!("{status}"),
            Err(e) => format!("wait failed: {e}"),
        }
    }

    /// Close stdin and wait for a clean exit (end of queue).
    fn retire(mut self) {
        drop(self.child.stdin.take());
        let _ = self.child.wait();
    }
}

impl Backend for ProcessBackend {
    fn name(&self) -> &'static str {
        "process"
    }

    fn run(
        &self,
        jobs: Option<usize>,
        specs: Vec<ShardSpec>,
        exec_fn: ExecFn<'_>,
    ) -> Result<BackendRun, CommitError> {
        // exec_fn runs in the children, not here; the parent only shuttles
        // payload strings.
        let _ = exec_fn;
        let n = specs.len();
        let pool = job_policy(jobs, false).min(n.max(1));
        let queue: Mutex<VecDeque<ShardSpec>> = Mutex::new(specs.into());
        let outcomes: Mutex<Vec<ShardOutcome>> = Mutex::new(Vec::with_capacity(n));
        let stats: Mutex<BackendStats> = Mutex::new(BackendStats::default());
        let respawns = AtomicU32::new(0);
        let timeout = Duration::from_millis(self.timeout_ms);

        let take_respawn = || loop {
            let used = respawns.load(Ordering::Relaxed);
            if used >= self.max_respawns {
                return false;
            }
            if respawns
                .compare_exchange(used, used + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        };

        std::thread::scope(|scope| {
            for _ in 0..pool {
                scope.spawn(|| {
                    let mut worker: Option<Worker> = None;
                    let mut spawned_once = false;
                    loop {
                        let Some(spec) = locked(&queue).pop_front() else {
                            break;
                        };
                        if worker.is_none() {
                            // The first child per slot is the pool itself;
                            // replacements draw from the shared budget.
                            if spawned_once && !take_respawn() {
                                // No budget: hand the spec back for a
                                // surviving slot (or the final drain).
                                locked(&queue).push_front(spec);
                                break;
                            }
                            match Worker::spawn(&self.worker_cmd) {
                                Ok(w) => {
                                    let mut s = locked(&stats);
                                    if spawned_once {
                                        s.workers_respawned += 1;
                                    } else {
                                        s.workers_spawned += 1;
                                    }
                                    spawned_once = true;
                                    worker = Some(w);
                                }
                                Err(e) => {
                                    spawned_once = true;
                                    locked(&outcomes).push(ShardOutcome::Lost {
                                        index: spec.index,
                                        error: e,
                                    });
                                    continue;
                                }
                            }
                        }
                        let Some(w) = worker.as_mut() else { continue };
                        if let Err(e) = w.send(&spec) {
                            let status = worker.take().map(Worker::kill).unwrap_or_default();
                            locked(&stats).crashes += 1;
                            locked(&outcomes).push(ShardOutcome::Lost {
                                index: spec.index,
                                error: format!(
                                    "worker crashed before accepting shard: {e} ({status})"
                                ),
                            });
                            continue;
                        }
                        match w.lines.recv_timeout(timeout) {
                            Ok(line) => match decode_reply(&line) {
                                Ok((index, result)) if index == spec.index => {
                                    locked(&outcomes).push(match result {
                                        Ok(payload) => {
                                            ShardOutcome::Done(ShardResult { index, payload })
                                        }
                                        Err(error) => ShardOutcome::Lost { index, error },
                                    });
                                }
                                Ok((index, _)) => {
                                    let status =
                                        worker.take().map(Worker::kill).unwrap_or_default();
                                    locked(&stats).malformed += 1;
                                    locked(&outcomes).push(ShardOutcome::Lost {
                                        index: spec.index,
                                        error: format!(
                                            "worker answered shard {index} for shard {} — \
                                             protocol desync, worker killed ({status})",
                                            spec.index
                                        ),
                                    });
                                }
                                Err(e) => {
                                    let status =
                                        worker.take().map(Worker::kill).unwrap_or_default();
                                    locked(&stats).malformed += 1;
                                    locked(&outcomes).push(ShardOutcome::Lost {
                                        index: spec.index,
                                        error: format!("malformed worker output: {e} ({status})"),
                                    });
                                }
                            },
                            Err(mpsc::RecvTimeoutError::Timeout) => {
                                let status = worker.take().map(Worker::kill).unwrap_or_default();
                                locked(&stats).timeouts += 1;
                                locked(&outcomes).push(ShardOutcome::Lost {
                                    index: spec.index,
                                    error: format!(
                                        "worker exceeded {} ms on shard {}/{} and was killed \
                                         ({status})",
                                        self.timeout_ms, spec.group, spec.index
                                    ),
                                });
                            }
                            Err(mpsc::RecvTimeoutError::Disconnected) => {
                                let status = worker.take().map(Worker::reap).unwrap_or_default();
                                locked(&stats).crashes += 1;
                                locked(&outcomes).push(ShardOutcome::Lost {
                                    index: spec.index,
                                    error: format!(
                                        "worker died mid-shard {}/{} ({status})",
                                        spec.group, spec.index
                                    ),
                                });
                            }
                        }
                    }
                    if let Some(w) = worker.take() {
                        w.retire();
                    }
                });
            }
        });

        // Every slot dead with the budget spent: the leftovers are lost, the
        // run continues degraded.
        let mut collected = outcomes.into_inner().unwrap_or_else(|p| p.into_inner());
        for spec in locked(&queue).drain(..) {
            collected.push(ShardOutcome::Lost {
                index: spec.index,
                error: format!(
                    "worker pool exhausted (respawn budget {} spent) before shard {}/{}",
                    self.max_respawns, spec.group, spec.index
                ),
            });
        }

        let outcomes = commit_all(n, collected)?;
        let mut final_stats = stats.into_inner().unwrap_or_else(|p| p.into_inner());
        let commit_counts = tally(n, &outcomes);
        final_stats.shards = commit_counts.shards;
        final_stats.committed = commit_counts.committed;
        final_stats.lost = commit_counts.lost;
        Ok(BackendRun {
            outcomes,
            stats: final_stats,
        })
    }
}

/// The remote submit/poll simulation, driven by the deterministic fault
/// plane.
///
/// Each shard walks submit → execute → poll → fetch; the three transport
/// hops can transiently fail on the `worker_submit` / `worker_poll` /
/// `worker_result` channels and are retried under [`retry`] with a
/// per-shard [`RetryBudget`]. Every decision keys on `(group, index,
/// stage, attempt)` — what the work *is* — so the retry sequences, the
/// accumulated stats, and the committed outcomes are a pure function of
/// `(seed, profile, specs)` regardless of worker count or poll
/// interleaving. A shard whose transport permanently fails is lost and
/// degrades the run.
#[derive(Debug, Clone)]
pub struct MockRemoteBackend {
    seed: u64,
    plane: FaultPlane,
}

/// Transport retry schedule: deeper than the pipeline's standard policy so
/// even hostile channel rates (≈ 0.3) drive the per-hop permanent-failure
/// probability below 1e-5 — transient remote weather should cost retries,
/// not shards.
fn transport_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 10,
        base_delay_ms: 50,
        max_delay_ms: 5_000,
        jitter: 0.25,
    }
}

/// Per-shard transport retry allowance.
const TRANSPORT_BUDGET: u32 = 64;

impl MockRemoteBackend {
    /// A mock remote driven by `(seed, profile)` — the same pair that
    /// drives the run's fault plane, so transport weather co-varies with
    /// the rest of the injected faults.
    pub fn new(seed: u64, profile: FaultProfile) -> MockRemoteBackend {
        MockRemoteBackend {
            seed,
            plane: FaultPlane::new(seed, profile),
        }
    }

    /// One fault-prone transport hop, retried under the shard's budget.
    fn hop(
        &self,
        channel: FaultChannel,
        spec: &ShardSpec,
        stage: &str,
        budget: &mut RetryBudget,
        stats: &mut BackendStats,
    ) -> Result<(), String> {
        let key = format!("{}/{}/{}", spec.group, spec.index, stage);
        let outcome = retry(
            &transport_policy(),
            budget,
            self.seed,
            &key,
            |attempt| {
                if self.plane.fires(channel, &format!("{key}#{attempt}")) {
                    Err(format!("{stage} failed (transient)"))
                } else {
                    Ok(())
                }
            },
            |_| true,
        );
        let retries = outcome.retries as u64;
        match stage {
            "submit" => stats.submit_retries += retries,
            "poll" => stats.poll_retries += retries,
            _ => stats.result_retries += retries,
        }
        stats.transport_backoff_ms += outcome.backoff_ms;
        outcome.result.map_err(|e| {
            let denied = if outcome.budget_denied {
                " (retry budget exhausted)"
            } else {
                ""
            };
            format!(
                "remote {stage} for shard {}/{} permanently failed after {} attempt(s){denied}: {e}",
                spec.group, spec.index, outcome.attempts
            )
        })
    }

    /// Walk one shard through the full state machine.
    fn run_shard(&self, spec: &ShardSpec, exec_fn: ExecFn<'_>) -> (ShardOutcome, BackendStats) {
        let mut stats = BackendStats::default();
        let mut budget = RetryBudget::new(TRANSPORT_BUDGET);
        let lost = |error: String| ShardOutcome::Lost {
            index: spec.index,
            error,
        };
        if let Err(e) = self.hop(
            FaultChannel::WorkerSubmit,
            spec,
            "submit",
            &mut budget,
            &mut stats,
        ) {
            return (lost(e), stats);
        }
        let executed = exec_fn(spec);
        if let Err(e) = self.hop(
            FaultChannel::WorkerPoll,
            spec,
            "poll",
            &mut budget,
            &mut stats,
        ) {
            return (lost(e), stats);
        }
        if let Err(e) = self.hop(
            FaultChannel::WorkerResult,
            spec,
            "result",
            &mut budget,
            &mut stats,
        ) {
            return (lost(e), stats);
        }
        let outcome = match executed {
            Ok(payload) => ShardOutcome::Done(ShardResult {
                index: spec.index,
                payload,
            }),
            Err(error) => lost(error),
        };
        (outcome, stats)
    }
}

impl Backend for MockRemoteBackend {
    fn name(&self) -> &'static str {
        "mock-remote"
    }

    fn run(
        &self,
        jobs: Option<usize>,
        specs: Vec<ShardSpec>,
        exec_fn: ExecFn<'_>,
    ) -> Result<BackendRun, CommitError> {
        let n = specs.len();
        let per_shard = par_map(jobs, specs, |_, spec| self.run_shard(&spec, exec_fn));
        let mut stats = BackendStats::default();
        let mut outcomes = Vec::with_capacity(n);
        // Fold in structural order so the stats sum is deterministic by
        // construction, not just commutativity.
        for (outcome, shard_stats) in per_shard {
            stats.absorb(&shard_stats);
            outcomes.push(outcome);
        }
        let outcomes = commit_all(n, outcomes)?;
        let commit_counts = tally(n, &outcomes);
        stats.shards = commit_counts.shards;
        stats.committed = commit_counts.committed;
        stats.lost = commit_counts.lost;
        Ok(BackendRun { outcomes, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(n: usize) -> Vec<ShardSpec> {
        (0..n)
            .map(|i| ShardSpec {
                group: "g".to_string(),
                index: i,
                label: format!("item-{i}"),
                payload: format!("{i}"),
            })
            .collect()
    }

    fn double(spec: &ShardSpec) -> Result<String, String> {
        let n: u64 = spec.payload.parse().map_err(|_| "not a number")?;
        Ok(format!("{}", n * 2))
    }

    #[test]
    fn wire_lines_round_trip() {
        let spec = ShardSpec {
            group: "persona".into(),
            index: 3,
            label: "Connected Car".into(),
            payload: r#"{"v": 1, "nested": "payload\nwith newline"}"#.into(),
        };
        let line = spec.to_wire_line();
        assert!(!line.contains('\n'), "wire lines must be single-line");
        assert_eq!(ShardSpec::from_wire_line(&line), Ok(spec));

        for result in [Ok("out".to_string()), Err("boom".to_string())] {
            let line = encode_reply(7, &result);
            assert!(!line.contains('\n'));
            assert_eq!(decode_reply(&line), Ok((7, result)));
        }
        assert!(ShardSpec::from_wire_line("not json").is_err());
        assert!(decode_reply(r#"{"v": 9, "index": 0, "ok": true}"#).is_err());
    }

    #[test]
    fn committer_orders_and_rejects_misuse() {
        let mut c = Committer::new(3);
        let done = |i: usize| {
            ShardOutcome::Done(ShardResult {
                index: i,
                payload: format!("p{i}"),
            })
        };
        c.offer(done(2)).unwrap();
        c.offer(done(0)).unwrap();
        assert_eq!(c.offer(done(0)), Err(CommitError::Duplicate(0)));
        assert_eq!(
            c.offer(done(9)),
            Err(CommitError::OutOfRange { index: 9, len: 3 })
        );
        // Missing index 1.
        let mut full = Committer::new(3);
        full.offer(done(2)).unwrap();
        full.offer(done(0)).unwrap();
        assert_eq!(full.into_ordered(), Err(CommitError::Missing(1)));

        c.offer(done(1)).unwrap();
        let ordered = c.into_ordered().unwrap();
        let indexes: Vec<usize> = ordered.iter().map(ShardOutcome::index).collect();
        assert_eq!(indexes, vec![0, 1, 2]);
    }

    #[test]
    fn thread_backend_matches_sequential_reference() {
        let backend = ThreadBackend;
        let runs: Vec<BackendRun> = [Some(1), Some(4), None]
            .into_iter()
            .map(|jobs| backend.run(jobs, specs(37), &double).unwrap())
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
        assert_eq!(runs[0].stats.committed, 37);
        assert_eq!(runs[0].stats.lost, 0);
        match &runs[0].outcomes[5] {
            ShardOutcome::Done(r) => assert_eq!(r.payload, "10"),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn thread_backend_degrades_shard_errors_without_panicking() {
        let backend = ThreadBackend;
        let run = backend
            .run(Some(2), specs(4), &|spec| {
                if spec.index == 2 {
                    Err("shard exploded".to_string())
                } else {
                    double(spec)
                }
            })
            .unwrap();
        assert_eq!(run.stats.lost, 1);
        assert!(matches!(
            &run.outcomes[2],
            ShardOutcome::Lost { error, .. } if error == "shard exploded"
        ));
    }

    #[test]
    fn mock_remote_none_profile_is_invisible() {
        let thread = ThreadBackend.run(Some(2), specs(9), &double).unwrap();
        let remote = MockRemoteBackend::new(7, FaultProfile::none())
            .run(Some(2), specs(9), &double)
            .unwrap();
        assert_eq!(thread.outcomes, remote.outcomes);
        assert_eq!(remote.stats.submit_retries, 0);
        assert_eq!(remote.stats.transport_backoff_ms, 0);
    }

    #[test]
    fn mock_remote_is_deterministic_across_jobs_and_spec_order() {
        let backend = MockRemoteBackend::new(1234, FaultProfile::hostile());
        let reference = backend.run(Some(1), specs(16), &double).unwrap();
        assert!(
            reference.stats.submit_retries
                + reference.stats.poll_retries
                + reference.stats.result_retries
                > 0,
            "hostile transport rates should cost retries"
        );
        for jobs in [Some(2), Some(8), None] {
            assert_eq!(reference, backend.run(jobs, specs(16), &double).unwrap());
        }
        // Submission order must not matter either: rotate the spec list.
        let mut rotated = specs(16);
        rotated.rotate_left(5);
        assert_eq!(reference, backend.run(Some(4), rotated, &double).unwrap());
    }

    #[test]
    fn mock_remote_total_fault_rate_loses_every_shard_gracefully() {
        let backend = MockRemoteBackend::new(7, FaultProfile::uniform(1.0));
        let run = backend.run(Some(2), specs(5), &double).unwrap();
        assert_eq!(run.stats.lost, 5);
        assert!(run.outcomes.iter().all(|o| matches!(
            o,
            ShardOutcome::Lost { error, .. } if error.contains("submit")
        )));
    }

    #[test]
    fn process_backend_empty_command_degrades_every_shard() {
        let backend = ProcessBackend {
            worker_cmd: vec![],
            timeout_ms: 1_000,
            max_respawns: 1,
        };
        let run = backend.run(Some(2), specs(3), &double).unwrap();
        assert_eq!(run.stats.lost, 3);
        assert!(run
            .outcomes
            .iter()
            .all(|o| matches!(o, ShardOutcome::Lost { .. })));
    }

    #[test]
    fn process_backend_runs_shards_through_a_real_child() {
        // `cat` echoes each spec line back; the reply decoder then rejects
        // it as a protocol violation (a spec line is not a reply line), so
        // this exercises spawn, send, receive, and malformed handling
        // without needing a real worker binary.
        let backend = ProcessBackend {
            worker_cmd: vec!["cat".to_string()],
            timeout_ms: 5_000,
            max_respawns: 8,
        };
        let run = backend.run(Some(2), specs(3), &double).unwrap();
        assert_eq!(run.outcomes.len(), 3);
        assert_eq!(run.stats.lost + run.stats.committed, 3);
        assert!(run.stats.malformed > 0, "cat replies must be malformed");
    }

    #[test]
    fn process_backend_times_out_hung_workers() {
        // `sleep` accepts the spec but never replies: every shard must come
        // back as a timeout loss within the (short) budget, not hang.
        let backend = ProcessBackend {
            worker_cmd: vec!["sleep".to_string(), "30".to_string()],
            timeout_ms: 200,
            max_respawns: 2,
        };
        let run = backend.run(Some(2), specs(3), &double).unwrap();
        assert_eq!(run.stats.lost, 3);
        assert!(run.stats.timeouts + run.stats.crashes > 0);
        assert!(run
            .outcomes
            .iter()
            .all(|o| matches!(o, ShardOutcome::Lost { .. })));
    }

    #[test]
    fn process_backend_detects_crashing_workers() {
        // `false` exits 1 immediately: dead pipe / EOF on every shard, and
        // the respawn budget bounds the number of attempts.
        let backend = ProcessBackend {
            worker_cmd: vec!["false".to_string()],
            timeout_ms: 1_000,
            max_respawns: 2,
        };
        let run = backend.run(Some(1), specs(6), &double).unwrap();
        assert_eq!(run.stats.lost, 6);
        assert!(run.stats.crashes > 0);
        assert!(run.stats.workers_respawned <= 2);
    }

    #[test]
    fn backend_choice_parses_and_labels() {
        for choice in BackendChoice::ALL {
            assert_eq!(choice.label().parse::<BackendChoice>(), Ok(choice));
        }
        assert!("quantum".parse::<BackendChoice>().is_err());
        assert_eq!(BackendChoice::default(), BackendChoice::Thread);
    }
}
