//! Deterministic parallel execution for the audit engine.
//!
//! The audit pipeline is embarrassingly parallel (13 independent persona
//! shards, independent bootstrap resamples, independent artifact renders),
//! but the repository's core invariant is that a fixed seed produces
//! byte-identical output. This crate provides the one primitive that squares
//! the two: an **order-preserving parallel map** whose result is a pure
//! function of its inputs — never of thread scheduling or worker count.
//!
//! Work items are pulled off a shared counter by scoped worker threads and
//! results are reassembled in input order, so `par_map(Some(1), ..)` and
//! `par_map(Some(32), ..)` return identical vectors as long as the mapped
//! closure itself is deterministic per item. The closure receives the item
//! index, which callers use to derive per-item seeds (`seed ^ index`-style).
//!
//! Built on `std::thread::scope` only — no external dependency — because the
//! build must work fully offline.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Lock a mutex, recovering from poisoning.
///
/// A worker panic while holding one of the handoff locks poisons it; the
/// protected state (an `Option<T>` slot or the result vector) is still
/// structurally sound, and `std::thread::scope` re-raises the original panic
/// at join — so recovery here never masks a failure.
fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Resolve a `jobs` knob to a concrete worker count.
///
/// `None` means "all cores" ([`std::thread::available_parallelism`], falling
/// back to 1 if unknown); `Some(n)` is clamped to at least 1.
pub fn effective_jobs(jobs: Option<usize>) -> usize {
    match jobs {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Resolve a `jobs` knob for a thread-spawning fan-out: [`effective_jobs`],
/// additionally clamped to the host's hardware threads.
///
/// Asking for more workers than cores cannot help a CPU-bound fan-out — on
/// a single-core host `--jobs 8` spawns eight threads contending for one
/// core and measurably *slows* the pass — and since `par_map`'s output is
/// worker-count-independent, the clamp can never change bytes.
pub fn clamped_jobs(jobs: Option<usize>) -> usize {
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    effective_jobs(jobs).min(hardware)
}

/// Map `f` over `items` with up to `effective_jobs(jobs)` worker threads,
/// returning results **in input order**.
///
/// `f` is called exactly once per item with `(index, item)`. With one worker
/// (or one item) no threads are spawned and the map runs inline — this is the
/// sequential reference path the determinism tests compare against.
///
/// A panic in any worker propagates to the caller once all workers have
/// stopped picking up new items.
pub fn par_map<T, U, F>(jobs: Option<usize>, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n = items.len();
    let workers = effective_jobs(jobs).min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    // Each slot is taken exactly once by exactly one worker via the atomic
    // cursor, so the mutexes are uncontended; they exist to make the slot
    // handoff safe without unsafe code.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // analyzer:allow(AP02) -- atomic cursor hands each slot to exactly one worker
                let item = locked(&slots[i]).take().expect("slot taken twice");
                let out = f(i, item);
                locked(&results).push((i, out));
            });
        }
    });

    let mut tagged = results.into_inner().unwrap_or_else(|p| p.into_inner());
    assert_eq!(tagged.len(), n, "parallel map lost items");
    tagged.sort_unstable_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(Some(8), items, |i, x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let items: Vec<u64> = (0..257).collect();
        let run = |jobs| {
            par_map(jobs, items.clone(), |i, x| {
                x.wrapping_mul(31).wrapping_add(i as u64)
            })
        };
        let sequential = run(Some(1));
        assert_eq!(sequential, run(Some(2)));
        assert_eq!(sequential, run(Some(16)));
        assert_eq!(sequential, run(None));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(par_map(None, empty, |_, x: u8| x).is_empty());
        assert_eq!(par_map(Some(4), vec![9], |i, x: i32| x + i as i32), vec![9]);
    }

    #[test]
    fn effective_jobs_resolution() {
        assert_eq!(effective_jobs(Some(0)), 1);
        assert_eq!(effective_jobs(Some(5)), 5);
        assert!(effective_jobs(None) >= 1);
    }

    #[test]
    fn clamped_jobs_never_exceeds_hardware() {
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(clamped_jobs(Some(0)), 1);
        assert_eq!(clamped_jobs(Some(hardware * 8)), hardware);
        assert!(clamped_jobs(None) <= hardware);
        assert!(clamped_jobs(Some(1)) == 1);
    }

    #[test]
    fn more_workers_than_items() {
        let out = par_map(Some(64), vec![1, 2, 3], |_, x: u32| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }
}
