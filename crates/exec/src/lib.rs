//! Deterministic parallel execution for the audit engine.
//!
//! The audit pipeline is embarrassingly parallel (13 independent persona
//! shards, independent bootstrap resamples, independent artifact renders),
//! but the repository's core invariant is that a fixed seed produces
//! byte-identical output. This crate provides the one primitive that squares
//! the two: an **order-preserving parallel map** whose result is a pure
//! function of its inputs — never of thread scheduling or worker count.
//!
//! Work items are pulled off a shared counter by scoped worker threads and
//! results are reassembled in input order, so `par_map(Some(1), ..)` and
//! `par_map(Some(32), ..)` return identical vectors as long as the mapped
//! closure itself is deterministic per item. The closure receives the item
//! index, which callers use to derive per-item seeds (`seed ^ index`-style).
//!
//! Built on `std::thread::scope` only — no external dependency — because the
//! build must work fully offline.
//!
//! Beyond the in-process map, the [`backend`] module generalizes the same
//! contract to interchangeable execution substrates (thread pool, child
//! process pool, mock remote submit/poll) behind the [`Backend`] trait, with
//! an ordered [`Committer`] preserving the byte-identical-output guarantee.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

pub mod backend;

pub use backend::{
    decode_reply, encode_reply, Backend, BackendChoice, BackendParseError, BackendRun,
    BackendStats, CommitError, Committer, ExecFn, MockRemoteBackend, ProcessBackend, ShardOutcome,
    ShardResult, ShardSpec, ThreadBackend,
};

/// Lock a mutex, recovering from poisoning.
///
/// A worker panic while holding one of the handoff locks poisons it; the
/// protected state (an `Option<T>` slot or the result vector) is still
/// structurally sound, and `std::thread::scope` re-raises the original panic
/// at join — so recovery here never masks a failure.
fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// The host's hardware thread count (1 when unknown).
fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// THE worker-count policy: every backend and fan-out resolves its `jobs`
/// knob through this one function, so process-pool sizing can never drift
/// from thread-pool sizing.
///
/// `None` means "all cores" ([`std::thread::available_parallelism`], falling
/// back to 1 if unknown); `Some(n)` is clamped to at least 1. When
/// `clamp_to_hardware` is set the result is additionally capped at the
/// host's hardware threads: a CPU-bound *thread* fan-out cannot benefit from
/// more workers than cores (on a single-core host `--jobs 8` spawns eight
/// threads contending for one core and measurably *slows* the pass), while
/// a *process* pool is sized by the caller's request alone — true
/// parallelism across processes is exactly what it exists to provide, even
/// on a 1-thread CI runner. Worker count is a pure throughput knob either
/// way: the committed output is worker-count-independent, so neither branch
/// can change bytes.
pub fn job_policy(jobs: Option<usize>, clamp_to_hardware: bool) -> usize {
    let requested = match jobs {
        Some(n) => n.max(1),
        None => hardware_threads(),
    };
    if clamp_to_hardware {
        requested.min(hardware_threads())
    } else {
        requested
    }
}

/// Resolve a `jobs` knob to a concrete worker count: [`job_policy`] without
/// the hardware clamp.
pub fn effective_jobs(jobs: Option<usize>) -> usize {
    job_policy(jobs, false)
}

/// Resolve a `jobs` knob for a thread-spawning fan-out: [`job_policy`] with
/// the hardware clamp.
pub fn clamped_jobs(jobs: Option<usize>) -> usize {
    job_policy(jobs, true)
}

/// Map `f` over `items` with up to `effective_jobs(jobs)` worker threads,
/// returning results **in input order**.
///
/// `f` is called exactly once per item with `(index, item)`. With one worker
/// (or one item) no threads are spawned and the map runs inline — this is the
/// sequential reference path the determinism tests compare against.
///
/// A panic in any worker propagates to the caller once all workers have
/// stopped picking up new items.
pub fn par_map<T, U, F>(jobs: Option<usize>, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let n = items.len();
    let workers = effective_jobs(jobs).min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    // Each slot is taken exactly once by exactly one worker via the atomic
    // cursor, so the mutexes are uncontended; they exist to make the slot
    // handoff safe without unsafe code.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // analyzer:allow(AP02) -- atomic cursor hands each slot to exactly one worker
                let item = locked(&slots[i]).take().expect("slot taken twice");
                let out = f(i, item);
                locked(&results).push((i, out));
            });
        }
    });

    let mut tagged = results.into_inner().unwrap_or_else(|p| p.into_inner());
    assert_eq!(tagged.len(), n, "parallel map lost items");
    tagged.sort_unstable_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(Some(8), items, |i, x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let items: Vec<u64> = (0..257).collect();
        let run = |jobs| {
            par_map(jobs, items.clone(), |i, x| {
                x.wrapping_mul(31).wrapping_add(i as u64)
            })
        };
        let sequential = run(Some(1));
        assert_eq!(sequential, run(Some(2)));
        assert_eq!(sequential, run(Some(16)));
        assert_eq!(sequential, run(None));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(par_map(None, empty, |_, x: u8| x).is_empty());
        assert_eq!(par_map(Some(4), vec![9], |i, x: i32| x + i as i32), vec![9]);
    }

    #[test]
    fn effective_jobs_resolution() {
        assert_eq!(effective_jobs(Some(0)), 1);
        assert_eq!(effective_jobs(Some(5)), 5);
        assert!(effective_jobs(None) >= 1);
    }

    #[test]
    fn clamped_jobs_never_exceeds_hardware() {
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(clamped_jobs(Some(0)), 1);
        assert_eq!(clamped_jobs(Some(hardware * 8)), hardware);
        assert!(clamped_jobs(None) <= hardware);
        assert!(clamped_jobs(Some(1)) == 1);
    }

    #[test]
    fn more_workers_than_items() {
        let out = par_map(Some(64), vec![1, 2, 3], |_, x: u32| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }
}
