//! Deterministic log2-bucketed histograms and nearest-rank percentile
//! summaries over work-unit durations.
//!
//! Bucket edges are **fixed** powers of two (bucket 0 holds exactly the
//! value 0; bucket `i > 0` holds `[2^(i-1), 2^i)`), so two runs that perform
//! the same structural work produce byte-identical histograms regardless of
//! worker count, machine, or schedule. Percentiles use the nearest-rank
//! method on exact integers — no interpolation, no floating point — for the
//! same reason.

use crate::json::Json;

/// Number of log2 buckets: bucket 0 plus one per bit of a `u64`.
pub(crate) const BUCKETS: usize = 65;

/// A fixed-edge log2 histogram of `u64` work-unit values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
        }
    }

    /// The bucket index of a value: 0 for 0, else `floor(log2(v)) + 1`.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The `[lo, hi)` range covered by bucket `i`.
    ///
    /// Bucket 0 is `[0, 1)`; bucket `i > 0` is `[2^(i-1), 2^i)`. The final
    /// bucket's exclusive upper bound saturates at `u64::MAX`.
    pub fn bounds(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 1)
        } else {
            let lo = 1u64 << (i - 1);
            let hi = if i >= 64 { u64::MAX } else { 1u64 << i };
            (lo, hi)
        }
    }

    /// A histogram over pre-counted buckets (the allocation meter's copy).
    pub(crate) fn from_counts(counts: [u64; BUCKETS]) -> Histogram {
        Histogram { counts }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        if let Some(c) = self.counts.get_mut(Self::bucket_of(v)) {
            *c += 1;
        }
    }

    /// Record `n` occurrences of `v` at once — the decode half of a sparse
    /// wire round trip (`v` is a bucket's exact lower bound).
    pub fn record_n(&mut self, v: u64, n: u64) {
        if let Some(c) = self.counts.get_mut(Self::bucket_of(v)) {
            *c += n;
        }
    }

    /// Add another histogram's counts into this one, bucket by bucket.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// The per-bucket growth since `earlier` (saturating, bucket by
    /// bucket) — the delta a monotone meter accumulated over a window.
    pub fn since(&self, earlier: &Histogram) -> Histogram {
        let mut counts = [0u64; BUCKETS];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        Histogram { counts }
    }

    /// Total number of recorded values.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Non-empty buckets as `(lo, hi, count)`, in ascending value order.
    pub fn sparse(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                let (lo, hi) = Self::bounds(i);
                (lo, hi, *c)
            })
            .collect()
    }

    /// JSON export: an array of `{lo, hi, count}` objects (sparse).
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.sparse()
                .into_iter()
                .map(|(lo, hi, count)| {
                    Json::Obj(vec![
                        ("lo".into(), Json::Int(lo)),
                        ("hi".into(), Json::Int(hi)),
                        ("count".into(), Json::Int(count)),
                    ])
                })
                .collect(),
        )
    }
}

/// Nearest-rank percentile of a **sorted** slice: the smallest value whose
/// rank covers `p` percent of the population. Returns 0 for an empty slice.
pub fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    // rank = ceil(p/100 * n), clamped to [1, n]; index = rank - 1.
    let n = sorted.len() as u64;
    let rank = (p * n).div_ceil(100).clamp(1, n);
    sorted.get((rank - 1) as usize).copied().unwrap_or(0)
}

/// A deterministic five-figure summary of a value population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Summary {
    /// Population size.
    pub count: u64,
    /// Smallest value.
    pub min: u64,
    /// 50th percentile (nearest rank).
    pub p50: u64,
    /// 90th percentile (nearest rank).
    pub p90: u64,
    /// 99th percentile (nearest rank).
    pub p99: u64,
    /// Largest value.
    pub max: u64,
    /// Sum of all values.
    pub sum: u64,
}

impl Summary {
    /// Summarize a population (order of `values` does not matter).
    pub fn of(values: &[u64]) -> Summary {
        let mut sorted: Vec<u64> = values.to_vec();
        sorted.sort_unstable();
        Summary {
            count: sorted.len() as u64,
            min: sorted.first().copied().unwrap_or(0),
            p50: percentile(&sorted, 50),
            p90: percentile(&sorted, 90),
            p99: percentile(&sorted, 99),
            max: sorted.last().copied().unwrap_or(0),
            sum: sorted.iter().sum(),
        }
    }

    /// JSON export: `{count, min, p50, p90, p99, max, sum}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Int(self.count)),
            ("min".into(), Json::Int(self.min)),
            ("p50".into(), Json::Int(self.p50)),
            ("p90".into(), Json::Int(self.p90)),
            ("p99".into(), Json::Int(self.p99)),
            ("max".into(), Json::Int(self.max)),
            ("sum".into(), Json::Int(self.sum)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_fixed_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bounds(0), (0, 1));
        assert_eq!(Histogram::bounds(1), (1, 2));
        assert_eq!(Histogram::bounds(4), (8, 16));
        assert_eq!(Histogram::bounds(64), (1 << 63, u64::MAX));
    }

    #[test]
    fn histogram_records_and_sparsifies() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 3, 8, 9, 15, 1024] {
            h.record(v);
        }
        assert_eq!(h.total(), 8);
        assert_eq!(
            h.sparse(),
            vec![(0, 1, 1), (1, 2, 2), (2, 4, 1), (8, 16, 3), (1024, 2048, 1)]
        );
        let json = h.to_json().render();
        assert!(json.contains("{\"lo\": 8, \"hi\": 16, \"count\": 3}"));
    }

    #[test]
    fn histograms_are_insertion_order_independent() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [5, 900, 0, 33] {
            a.record(v);
        }
        for v in [33, 0, 900, 5] {
            b.record(v);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn merge_since_and_record_n_round_trip() {
        let mut base = Histogram::new();
        for v in [1, 8, 9, 300] {
            base.record(v);
        }
        let mut grown = base.clone();
        for v in [8, 4000] {
            grown.record(v);
        }
        let delta = grown.since(&base);
        assert_eq!(delta.sparse(), vec![(8, 16, 1), (2048, 4096, 1)]);
        // since() saturates instead of underflowing.
        assert_eq!(base.since(&grown).total(), 0);
        // Sparse encode -> record_n decode reproduces the histogram.
        let mut decoded = Histogram::new();
        for (lo, _hi, count) in grown.sparse() {
            decoded.record_n(lo, count);
        }
        assert_eq!(decoded, grown);
        // merge adds bucket-wise.
        let mut merged = base.clone();
        merged.merge(&delta);
        assert_eq!(merged, grown);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let sorted: Vec<u64> = (1..=13).collect();
        assert_eq!(percentile(&sorted, 50), 7);
        assert_eq!(percentile(&sorted, 90), 12);
        assert_eq!(percentile(&sorted, 99), 13);
        assert_eq!(percentile(&sorted, 100), 13);
        assert_eq!(percentile(&sorted, 0), 1);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[42], 99), 42);
    }

    #[test]
    fn summary_is_order_independent_and_exact() {
        let s = Summary::of(&[30, 10, 20]);
        assert_eq!(s, Summary::of(&[10, 20, 30]));
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 10);
        assert_eq!(s.p50, 20);
        assert_eq!(s.p90, 30);
        assert_eq!(s.max, 30);
        assert_eq!(s.sum, 60);
        let json = s.to_json().render();
        assert!(json.contains("\"p50\": 20"));
    }
}
