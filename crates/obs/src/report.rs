//! Immutable report snapshots: span-tree rendering, JSON export, and the
//! deterministic run-ledger surfaces (trace/metrics JSON, folded profile,
//! histograms and percentile summaries in work units).

use crate::hist::{Histogram, Summary};
use crate::json::Json;
use crate::shard::SpanRec;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One top-level pipeline stage span (see [`Recorder::stage`]).
///
/// [`Recorder::stage`]: crate::Recorder::stage
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRec {
    /// Stage name from the fixed taxonomy (see DESIGN.md §9).
    pub name: String,
    /// Nesting depth (0 = top level of the pipeline).
    pub depth: usize,
    /// Microseconds between recorder creation and stage entry.
    pub start_us: u64,
    /// Stage duration in microseconds.
    pub dur_us: u64,
    /// Deterministic work units attributed to this stage (the sum of the
    /// virtual-clock totals of every shard submitted while it was the
    /// innermost open stage).
    pub work: u64,
    /// Deterministic allocation count attributed to this stage (the sum of
    /// the sealed allocation windows of every shard submitted while it was
    /// the innermost open stage).
    pub alloc_count: u64,
    /// Deterministic allocated bytes attributed to this stage (same
    /// attribution rule as `alloc_count`).
    pub alloc_bytes: u64,
    /// OS-level peak RSS (`VmHWM`, kilobytes) sampled when the stage
    /// closed. Schedule- and substrate-dependent like `dur_us`: shown by
    /// the human views, **never** by a ledger surface.
    pub peak_rss_kb: u64,
}

/// A name-keyed aggregate fed by leaf libraries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Aggregate {
    /// Accumulated units (resamples, permutations, bids, ...).
    pub count: u64,
    /// Timed invocations recorded into this aggregate.
    pub calls: u64,
    /// Total time across timed invocations, microseconds.
    pub total_us: u64,
}

/// The merged record of one finished shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Structural group ("persona", "avs", "artifact").
    pub group: String,
    /// Fixed index within the group's work list.
    pub index: usize,
    /// Human label (persona name, category label, artifact name).
    pub label: String,
    /// The stage that was open when the shard was submitted ("" if none) —
    /// structural, so identical across worker counts.
    pub stage: String,
    /// Wall time from shard start to submission, microseconds.
    pub total_us: u64,
    /// Deterministic work units on the shard's virtual clock.
    pub work: u64,
    /// Heap allocations inside the shard's sealed allocation window.
    pub alloc_count: u64,
    /// Heap bytes requested inside the shard's sealed allocation window.
    pub alloc_bytes: u64,
    /// Peak net-live bytes reached inside the shard's window (relative to
    /// the window's start — deterministic, unlike OS RSS).
    pub alloc_peak: u64,
    /// Log2 histogram of the window's allocation sizes.
    pub alloc_sizes: Histogram,
    /// Closed spans in pre-order.
    pub spans: Vec<SpanRec>,
    /// Final counter values.
    pub counters: BTreeMap<String, u64>,
}

/// An immutable snapshot of everything a [`Recorder`] collected.
///
/// Shards are sorted by `(group, index)` — the deterministic merge order —
/// regardless of the order they were submitted in.
///
/// [`Recorder`]: crate::Recorder
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Top-level stages in entry order.
    pub stages: Vec<StageRec>,
    /// Shard reports sorted by `(group, index)`.
    pub shards: Vec<ShardReport>,
    /// Name-keyed aggregates.
    pub aggregates: BTreeMap<String, Aggregate>,
    /// Schedule-dependent substrate counters (`backend.*` / `worker.*`):
    /// worker respawns, transport retries, timeouts. Shown by the
    /// human-facing views ([`Report::render_tree`], [`Report::to_json`])
    /// and deliberately **absent** from the run-ledger surfaces
    /// ([`Report::ledger_trace_json`], [`Report::ledger_metrics_json`]),
    /// so transient transport weather can never change committed bytes.
    pub volatile: BTreeMap<String, u64>,
}

impl Report {
    /// The shard reports of one group, in index order.
    pub fn shards_in(&self, group: &str) -> Vec<&ShardReport> {
        self.shards.iter().filter(|s| s.group == group).collect()
    }

    /// The first stage with this name, if recorded.
    pub fn stage(&self, name: &str) -> Option<&StageRec> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Everything except wall-clock numbers: stage names/depths/work, shard
    /// keys, labels, work totals, span shapes (with work durations), counter
    /// values, and aggregate counts/calls.
    ///
    /// Two runs of the same pipeline — at any worker counts — must produce
    /// equal structures; the tests enforce this. Work units are part of the
    /// structure because the virtual clock is deterministic by construction.
    #[allow(clippy::type_complexity)]
    pub fn structure(
        &self,
    ) -> (
        Vec<(String, usize, u64)>,
        Vec<(
            String,
            usize,
            String,
            u64,
            Vec<(String, usize, u64)>,
            BTreeMap<String, u64>,
        )>,
        Vec<(String, u64, u64)>,
    ) {
        (
            self.stages
                .iter()
                .map(|s| (s.name.clone(), s.depth, s.work))
                .collect(),
            self.shards
                .iter()
                .map(|s| {
                    (
                        s.group.clone(),
                        s.index,
                        s.label.clone(),
                        s.work,
                        s.spans
                            .iter()
                            .map(|p| (p.name.clone(), p.depth, p.dur_wu))
                            .collect(),
                        s.counters.clone(),
                    )
                })
                .collect(),
            self.aggregates
                .iter()
                .map(|(k, a)| (k.clone(), a.count, a.calls))
                .collect(),
        )
    }

    /// Human-readable span tree (the `repro --trace` output).
    ///
    /// Structure and work units are deterministic; the millisecond figures
    /// are this run's wall clock.
    pub fn render_tree(&self) -> String {
        let ms = |us: u64| us as f64 / 1000.0;
        let mut out = String::from("── trace (structure deterministic, times wall-clock) ──\n");
        out.push_str("stages:\n");
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  {}{:<28} {:>10.1} ms {:>10} wu {:>12} alloc B  rss {:>9} kB",
                "  ".repeat(s.depth),
                s.name,
                ms(s.dur_us),
                s.work,
                s.alloc_bytes,
                s.peak_rss_kb
            );
        }
        let mut group = None::<&str>;
        for sh in &self.shards {
            if group != Some(sh.group.as_str()) {
                group = Some(sh.group.as_str());
                let _ = writeln!(out, "shards [{}]:", sh.group);
            }
            let _ = writeln!(
                out,
                "  #{:<3} {:<26} {:>10.1} ms {:>8} wu {:>12} alloc B",
                sh.index,
                sh.label,
                ms(sh.total_us),
                sh.work,
                sh.alloc_bytes
            );
            for sp in &sh.spans {
                let _ = writeln!(
                    out,
                    "    {}{:<26} {:>8.1} ms {:>8} wu",
                    "  ".repeat(sp.depth),
                    sp.name,
                    ms(sp.dur_us),
                    sp.dur_wu
                );
            }
            if !sh.counters.is_empty() {
                let counters: Vec<String> = sh
                    .counters
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                let _ = writeln!(out, "      [{}]", counters.join(", "));
            }
        }
        if !self.aggregates.is_empty() {
            out.push_str("aggregates:\n");
            for (name, a) in &self.aggregates {
                let _ = writeln!(
                    out,
                    "  {:<34} count={:<10} calls={:<8} {:>10.1} ms",
                    name,
                    a.count,
                    a.calls,
                    ms(a.total_us)
                );
            }
        }
        if !self.volatile.is_empty() {
            out.push_str("volatile (substrate counters, not part of the ledger):\n");
            for (name, v) in &self.volatile {
                let _ = writeln!(out, "  {name:<34} {v}");
            }
        }
        out
    }

    /// JSON export (the `repro --metrics-out` payload).
    ///
    /// Top-level keys: `stages` (per-stage wall time + work units), `shards`
    /// (per-shard wall time, work, spans, counters — persona shards carry
    /// the flow/bid/creative counts), `aggregates`. Wall-clock fields make
    /// this surface schedule-dependent; the deterministic twin is
    /// [`Report::ledger_metrics_json`].
    pub fn to_json(&self) -> Json {
        let ms = |us: u64| Json::Float(us as f64 / 1000.0);
        let stages = self
            .stages
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(s.name.clone())),
                    ("depth".into(), Json::Int(s.depth as u64)),
                    ("ms".into(), ms(s.dur_us)),
                    ("work".into(), Json::Int(s.work)),
                    ("alloc_count".into(), Json::Int(s.alloc_count)),
                    ("alloc_bytes".into(), Json::Int(s.alloc_bytes)),
                    ("peak_rss_kb".into(), Json::Int(s.peak_rss_kb)),
                ])
            })
            .collect();
        let shards = self
            .shards
            .iter()
            .map(|sh| {
                let spans = sh
                    .spans
                    .iter()
                    .map(|sp| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(sp.name.clone())),
                            ("depth".into(), Json::Int(sp.depth as u64)),
                            ("ms".into(), ms(sp.dur_us)),
                            ("work".into(), Json::Int(sp.dur_wu)),
                        ])
                    })
                    .collect();
                let counters = sh
                    .counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Int(*v)))
                    .collect();
                Json::Obj(vec![
                    ("group".into(), Json::Str(sh.group.clone())),
                    ("index".into(), Json::Int(sh.index as u64)),
                    ("label".into(), Json::Str(sh.label.clone())),
                    ("ms".into(), ms(sh.total_us)),
                    ("work".into(), Json::Int(sh.work)),
                    ("alloc_count".into(), Json::Int(sh.alloc_count)),
                    ("alloc_bytes".into(), Json::Int(sh.alloc_bytes)),
                    ("alloc_peak_bytes".into(), Json::Int(sh.alloc_peak)),
                    ("spans".into(), Json::Arr(spans)),
                    ("counters".into(), Json::Obj(counters)),
                ])
            })
            .collect();
        let aggregates = self
            .aggregates
            .iter()
            .map(|(name, a)| {
                (
                    name.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::Int(a.count)),
                        ("calls".into(), Json::Int(a.calls)),
                        ("ms".into(), ms(a.total_us)),
                    ]),
                )
            })
            .collect();
        let volatile = self
            .volatile
            .iter()
            .map(|(k, v)| (k.clone(), Json::Int(*v)))
            .collect();
        Json::Obj(vec![
            ("stages".into(), Json::Arr(stages)),
            ("shards".into(), Json::Arr(shards)),
            ("aggregates".into(), Json::Obj(aggregates)),
            ("volatile".into(), Json::Obj(volatile)),
        ])
    }

    /// Per-group work-unit summaries (p50/p90/p99 over the shard totals of
    /// each group — 13 persona shards, 9 AVS shards, one per artifact).
    pub fn work_summaries(&self) -> BTreeMap<String, Summary> {
        let mut by_group: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for sh in &self.shards {
            by_group.entry(sh.group.clone()).or_default().push(sh.work);
        }
        by_group
            .into_iter()
            .map(|(g, values)| (g, Summary::of(&values)))
            .collect()
    }

    /// Deterministic work-unit histograms: per-group shard totals under the
    /// group's name, per-span durations under `"group:span"`.
    pub fn work_histograms(&self) -> BTreeMap<String, Histogram> {
        let mut hists: BTreeMap<String, Histogram> = BTreeMap::new();
        for sh in &self.shards {
            hists.entry(sh.group.clone()).or_default().record(sh.work);
            for sp in &sh.spans {
                hists
                    .entry(format!("{}:{}", sh.group, sp.name))
                    .or_default()
                    .record(sp.dur_wu);
            }
        }
        hists
    }

    /// Folded-stack profile over the deterministic work clock, one line per
    /// span path with **self** work units (flamegraph-consumable:
    /// `stage;group;label;span;... N`).
    ///
    /// Total work per path is the sum of the path and its descendants, the
    /// usual folded-stack convention. Paths with zero self work are elided.
    pub fn folded_profile(&self) -> String {
        let mut out = String::new();
        for sh in &self.shards {
            let mut root: Vec<String> = Vec::new();
            if !sh.stage.is_empty() {
                root.push(sh.stage.clone());
            }
            root.push(sh.group.clone());
            root.push(sh.label.clone());

            // Self work of the shard root: total minus top-level span work.
            let top_level: u64 = sh
                .spans
                .iter()
                .filter(|s| s.depth == 0)
                .map(|s| s.dur_wu)
                .sum();
            let root_self = sh.work.saturating_sub(top_level);
            if root_self > 0 {
                let _ = writeln!(out, "{} {}", root.join(";"), root_self);
            }

            // Pre-order walk: compute each span's self work by subtracting
            // its direct children, tracked with a depth stack.
            let mut stack: Vec<(String, u64, u64)> = Vec::new(); // (name, dur, children)
            for (i, sp) in sh.spans.iter().enumerate() {
                while stack.len() > sp.depth {
                    Self::pop_folded(&mut out, &root, &mut stack);
                }
                if let Some(parent) = stack.last_mut() {
                    parent.2 += sp.dur_wu;
                }
                stack.push((sp.name.clone(), sp.dur_wu, 0));
                // Look-ahead: a leaf (next span not deeper) closes here.
                let next_depth = sh.spans.get(i + 1).map(|n| n.depth);
                if next_depth.is_none_or(|d| d <= sp.depth) {
                    Self::pop_folded(&mut out, &root, &mut stack);
                }
            }
            while !stack.is_empty() {
                Self::pop_folded(&mut out, &root, &mut stack);
            }
        }
        out
    }

    /// Close the innermost open span of a folded-profile walk, emitting its
    /// line when it has non-zero self work.
    fn pop_folded(out: &mut String, root: &[String], stack: &mut Vec<(String, u64, u64)>) {
        let Some((name, dur, children)) = stack.pop() else {
            return;
        };
        let self_wu = dur.saturating_sub(children);
        if self_wu > 0 {
            let mut path = root.join(";");
            for (n, _, _) in stack.iter() {
                path.push(';');
                path.push_str(n);
            }
            path.push(';');
            path.push_str(&name);
            let _ = writeln!(out, "{path} {self_wu}");
        }
    }

    /// The run-ledger trace document (`trace.json`): the full span tree in
    /// deterministic work units only — no wall clock, so two runs of the
    /// same `(seed, fault profile)` are byte-identical at any `--jobs`.
    pub fn ledger_trace_json(&self) -> Json {
        let stages = self
            .stages
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(s.name.clone())),
                    ("depth".into(), Json::Int(s.depth as u64)),
                    ("work".into(), Json::Int(s.work)),
                ])
            })
            .collect();
        let shards = self
            .shards
            .iter()
            .map(|sh| {
                let spans = sh
                    .spans
                    .iter()
                    .map(|sp| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(sp.name.clone())),
                            ("depth".into(), Json::Int(sp.depth as u64)),
                            ("start_wu".into(), Json::Int(sp.start_wu)),
                            ("work".into(), Json::Int(sp.dur_wu)),
                            ("alloc_count".into(), Json::Int(sp.alloc_count)),
                            ("alloc_bytes".into(), Json::Int(sp.alloc_bytes)),
                        ])
                    })
                    .collect();
                let counters = sh
                    .counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Int(*v)))
                    .collect();
                Json::Obj(vec![
                    ("group".into(), Json::Str(sh.group.clone())),
                    ("index".into(), Json::Int(sh.index as u64)),
                    ("label".into(), Json::Str(sh.label.clone())),
                    ("stage".into(), Json::Str(sh.stage.clone())),
                    ("work".into(), Json::Int(sh.work)),
                    ("spans".into(), Json::Arr(spans)),
                    ("counters".into(), Json::Obj(counters)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Int(crate::bundle::SCHEMA_VERSION)),
            ("stages".into(), Json::Arr(stages)),
            ("shards".into(), Json::Arr(shards)),
        ])
    }

    /// The run-ledger metrics document (`metrics.json`): flat deterministic
    /// metrics — per-stage work, counter totals summed across shards,
    /// aggregate counts/calls, per-group summaries and histograms.
    pub fn ledger_metrics_json(&self) -> Json {
        let stages = self
            .stages
            .iter()
            .map(|s| (s.name.clone(), Json::Int(s.work)))
            .collect();
        let mut counter_totals: BTreeMap<String, u64> = BTreeMap::new();
        for sh in &self.shards {
            for (name, v) in &sh.counters {
                *counter_totals.entry(name.clone()).or_default() += v;
            }
        }
        let counters = counter_totals
            .into_iter()
            .map(|(k, v)| (k, Json::Int(v)))
            .collect();
        let aggregates = self
            .aggregates
            .iter()
            .map(|(name, a)| {
                (
                    name.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::Int(a.count)),
                        ("calls".into(), Json::Int(a.calls)),
                    ]),
                )
            })
            .collect();
        let summaries = self
            .work_summaries()
            .into_iter()
            .map(|(g, s)| (g, s.to_json()))
            .collect();
        let histograms = self
            .work_histograms()
            .into_iter()
            .map(|(k, h)| (k, h.to_json()))
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Int(crate::bundle::SCHEMA_VERSION)),
            ("stages".into(), Json::Obj(stages)),
            ("counters".into(), Json::Obj(counters)),
            ("aggregates".into(), Json::Obj(aggregates)),
            ("summaries".into(), Json::Obj(summaries)),
            ("histograms".into(), Json::Obj(histograms)),
        ])
    }

    /// Per-group summaries over the shard allocation-byte deltas.
    pub fn alloc_summaries(&self) -> BTreeMap<String, Summary> {
        let mut by_group: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for sh in &self.shards {
            by_group
                .entry(sh.group.clone())
                .or_default()
                .push(sh.alloc_bytes);
        }
        by_group
            .into_iter()
            .map(|(g, values)| (g, Summary::of(&values)))
            .collect()
    }

    /// Per-group allocation-size histograms: every shard window's log2 size
    /// buckets, merged bucket-wise under the group name.
    pub fn alloc_size_histograms(&self) -> BTreeMap<String, Histogram> {
        let mut hists: BTreeMap<String, Histogram> = BTreeMap::new();
        for sh in &self.shards {
            hists
                .entry(sh.group.clone())
                .or_default()
                .merge(&sh.alloc_sizes);
        }
        hists
    }

    /// The run-ledger memory document (`memory.json`): the deterministic
    /// allocation plane — per-stage attributed counts, per-shard sealed
    /// windows, per-group summaries and size histograms.
    ///
    /// Everything here derives from the thread-local allocation meter,
    /// which counts the workload's own allocation requests: byte-identical
    /// across `--jobs` values and backends for a fixed seed. OS-level RSS
    /// is deliberately absent — it lives on the volatile channel only.
    pub fn ledger_memory_json(&self) -> Json {
        let stage_alloc = self
            .stages
            .iter()
            .map(|s| {
                (
                    s.name.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::Int(s.alloc_count)),
                        ("bytes".into(), Json::Int(s.alloc_bytes)),
                    ]),
                )
            })
            .collect();
        let shards = self
            .shards
            .iter()
            .map(|sh| {
                Json::Obj(vec![
                    ("group".into(), Json::Str(sh.group.clone())),
                    ("index".into(), Json::Int(sh.index as u64)),
                    ("label".into(), Json::Str(sh.label.clone())),
                    ("alloc_count".into(), Json::Int(sh.alloc_count)),
                    ("alloc_bytes".into(), Json::Int(sh.alloc_bytes)),
                    ("alloc_peak_bytes".into(), Json::Int(sh.alloc_peak)),
                ])
            })
            .collect();
        let summaries = self
            .alloc_summaries()
            .into_iter()
            .map(|(g, s)| (g, s.to_json()))
            .collect();
        let size_histograms = self
            .alloc_size_histograms()
            .into_iter()
            .map(|(g, h)| (g, h.to_json()))
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Int(crate::bundle::SCHEMA_VERSION)),
            ("stage_alloc".into(), Json::Obj(stage_alloc)),
            ("shards".into(), Json::Arr(shards)),
            ("summaries".into(), Json::Obj(summaries)),
            ("size_histograms".into(), Json::Obj(size_histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample() -> Report {
        let rec = Recorder::new();
        rec.stage("marketplace", || {});
        rec.stage("persona.shards", || {
            for (i, name) in ["Connected Car", "Vanilla"].iter().enumerate() {
                let mut log = rec.shard("persona", i, name);
                log.alloc_open();
                log.span("install", |log| {
                    log.add("tap.packets", 12);
                    log.work(12);
                });
                log.work(1 + i as u64);
                log.alloc_seal();
                rec.submit(log);
            }
        });
        rec.count("crawler.bids", 7);
        rec.volatile("worker.respawned", 2);
        rec.report()
    }

    #[test]
    fn tree_renders_all_sections() {
        let tree = sample().render_tree();
        assert!(tree.contains("marketplace"));
        assert!(tree.contains("shards [persona]"));
        assert!(tree.contains("Connected Car"));
        assert!(tree.contains("install"));
        assert!(tree.contains("tap.packets=12"));
        assert!(tree.contains("crawler.bids"));
        assert!(tree.contains("wu"));
        assert!(tree.contains("volatile"));
        assert!(tree.contains("worker.respawned"));
    }

    #[test]
    fn json_exports_all_sections() {
        let j = sample().to_json().render();
        assert!(j.contains("\"stages\""));
        assert!(j.contains("\"persona\""));
        assert!(j.contains("\"Connected Car\""));
        assert!(j.contains("\"tap.packets\": 12"));
        assert!(j.contains("\"crawler.bids\""));
        assert!(j.contains("\"work\": 13"));
        assert!(j.contains("\"volatile\""));
        assert!(j.contains("\"worker.respawned\": 2"));
    }

    #[test]
    fn lookup_helpers() {
        let r = sample();
        assert_eq!(r.shards_in("persona").len(), 2);
        assert!(r.shards_in("nope").is_empty());
        assert!(r.stage("marketplace").is_some());
        assert!(r.stage("nope").is_none());
    }

    #[test]
    fn work_summaries_and_histograms_cover_groups_and_spans() {
        let r = sample();
        let summaries = r.work_summaries();
        // Shard totals: 13 and 14 work units.
        assert_eq!(summaries["persona"].count, 2);
        assert_eq!(summaries["persona"].min, 13);
        assert_eq!(summaries["persona"].max, 14);
        assert_eq!(summaries["persona"].sum, 27);
        let hists = r.work_histograms();
        assert_eq!(hists["persona"].total(), 2);
        assert_eq!(hists["persona:install"].total(), 2);
        // 12 wu twice → bucket [8, 16).
        assert_eq!(hists["persona:install"].sparse(), vec![(8, 16, 2)]);
    }

    #[test]
    fn folded_profile_attributes_self_work() {
        let rec = Recorder::new();
        rec.stage("persona.shards", || {
            let mut log = rec.shard("persona", 0, "Vanilla");
            log.span("install", |l| {
                l.work(3);
                l.span("retry", |l| l.work(5));
            });
            log.work(2);
            rec.submit(log);
        });
        let folded = rec.report().folded_profile();
        let mut lines: Vec<&str> = folded.lines().collect();
        lines.sort_unstable();
        assert_eq!(
            lines,
            vec![
                "persona.shards;persona;Vanilla 2",
                "persona.shards;persona;Vanilla;install 3",
                "persona.shards;persona;Vanilla;install;retry 5",
            ]
        );
    }

    #[test]
    fn ledger_surfaces_are_work_only() {
        let r = sample();
        let trace = r.ledger_trace_json().render();
        let metrics = r.ledger_metrics_json().render();
        let memory = r.ledger_memory_json().render();
        assert!(!trace.contains("\"ms\""), "trace leaked wall clock");
        assert!(!metrics.contains("\"ms\""), "metrics leaked wall clock");
        assert!(trace.contains("\"start_wu\""));
        assert!(trace.contains("\"alloc_bytes\""));
        assert!(metrics.contains("\"summaries\""));
        assert!(metrics.contains("\"histograms\""));
        assert!(metrics.contains("\"tap.packets\": 24"));
        assert!(metrics.contains("\"alloc.count\""));
        assert!(memory.contains("\"stage_alloc\""));
        assert!(memory.contains("\"size_histograms\""));
        assert!(memory.contains("\"alloc_peak_bytes\""));
        // Volatile substrate counters must never reach a ledger surface:
        // the sample report carries one, and no document may mention it
        // (or the section) at all. The same goes for every wall-clock and
        // OS-level number — peak RSS is volatile by definition.
        for doc in [&trace, &metrics, &memory] {
            assert!(!doc.contains("volatile"), "ledger leaked volatile section");
            assert!(
                !doc.contains("worker.respawned"),
                "ledger leaked a substrate counter"
            );
            assert!(!doc.contains("\"ms\""), "ledger leaked wall clock");
            assert!(!doc.contains("rss"), "ledger leaked OS-level RSS");
        }
        // All carry the bundle schema version.
        for doc in [&metrics, &trace, &memory] {
            let parsed = Json::parse(doc).unwrap();
            assert_eq!(
                parsed.get("schema").and_then(Json::as_u64),
                Some(crate::bundle::SCHEMA_VERSION)
            );
        }
    }

    #[test]
    fn memory_ledger_carries_the_allocation_plane() {
        let r = sample();
        let doc = r.ledger_memory_json();
        let stage = doc
            .get("stage_alloc")
            .and_then(|s| s.get("persona.shards"))
            .expect("persona.shards stage alloc");
        let stage_bytes = stage.get("bytes").and_then(Json::as_u64).unwrap();
        assert!(stage_bytes > 0, "sample shards allocate");
        let shards = doc.get("shards").and_then(Json::as_arr).unwrap();
        assert_eq!(shards.len(), 2);
        let shard_bytes: u64 = shards
            .iter()
            .map(|s| s.get("alloc_bytes").and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(stage_bytes, shard_bytes);
        let summary = doc.get("summaries").and_then(|s| s.get("persona")).unwrap();
        assert_eq!(summary.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(summary.get("sum").and_then(Json::as_u64), Some(shard_bytes));
    }
}
