//! Immutable report snapshots: span-tree rendering and JSON export.

use crate::json::Json;
use crate::shard::SpanRec;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One top-level pipeline stage span (see [`Recorder::stage`]).
///
/// [`Recorder::stage`]: crate::Recorder::stage
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRec {
    /// Stage name from the fixed taxonomy (see DESIGN.md §9).
    pub name: String,
    /// Nesting depth (0 = top level of the pipeline).
    pub depth: usize,
    /// Microseconds between recorder creation and stage entry.
    pub start_us: u64,
    /// Stage duration in microseconds.
    pub dur_us: u64,
}

/// A name-keyed aggregate fed by leaf libraries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Aggregate {
    /// Accumulated units (resamples, permutations, bids, ...).
    pub count: u64,
    /// Timed invocations recorded into this aggregate.
    pub calls: u64,
    /// Total time across timed invocations, microseconds.
    pub total_us: u64,
}

/// The merged record of one finished shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Structural group ("persona", "avs", "artifact").
    pub group: String,
    /// Fixed index within the group's work list.
    pub index: usize,
    /// Human label (persona name, category label, artifact name).
    pub label: String,
    /// Wall time from shard start to submission, microseconds.
    pub total_us: u64,
    /// Closed spans in pre-order.
    pub spans: Vec<SpanRec>,
    /// Final counter values.
    pub counters: BTreeMap<String, u64>,
}

/// An immutable snapshot of everything a [`Recorder`] collected.
///
/// Shards are sorted by `(group, index)` — the deterministic merge order —
/// regardless of the order they were submitted in.
///
/// [`Recorder`]: crate::Recorder
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Top-level stages in entry order.
    pub stages: Vec<StageRec>,
    /// Shard reports sorted by `(group, index)`.
    pub shards: Vec<ShardReport>,
    /// Name-keyed aggregates.
    pub aggregates: BTreeMap<String, Aggregate>,
}

impl Report {
    /// The shard reports of one group, in index order.
    pub fn shards_in(&self, group: &str) -> Vec<&ShardReport> {
        self.shards.iter().filter(|s| s.group == group).collect()
    }

    /// The first stage with this name, if recorded.
    pub fn stage(&self, name: &str) -> Option<&StageRec> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Everything except wall-clock numbers: stage names/depths, shard keys,
    /// labels, span shapes, and counter values.
    ///
    /// Two runs of the same pipeline — at any worker counts — must produce
    /// equal structures; the tests enforce this.
    #[allow(clippy::type_complexity)]
    pub fn structure(
        &self,
    ) -> (
        Vec<(String, usize)>,
        Vec<(
            String,
            usize,
            String,
            Vec<(String, usize)>,
            BTreeMap<String, u64>,
        )>,
        Vec<(String, u64)>,
    ) {
        (
            self.stages
                .iter()
                .map(|s| (s.name.clone(), s.depth))
                .collect(),
            self.shards
                .iter()
                .map(|s| {
                    (
                        s.group.clone(),
                        s.index,
                        s.label.clone(),
                        s.spans.iter().map(|p| (p.name.clone(), p.depth)).collect(),
                        s.counters.clone(),
                    )
                })
                .collect(),
            self.aggregates
                .iter()
                .map(|(k, a)| (k.clone(), a.count))
                .collect(),
        )
    }

    /// Human-readable span tree (the `repro --trace` output).
    ///
    /// Structure is deterministic; the millisecond figures are this run's
    /// wall clock.
    pub fn render_tree(&self) -> String {
        let ms = |us: u64| us as f64 / 1000.0;
        let mut out = String::from("── trace (structure deterministic, times wall-clock) ──\n");
        out.push_str("stages:\n");
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  {}{:<28} {:>10.1} ms",
                "  ".repeat(s.depth),
                s.name,
                ms(s.dur_us)
            );
        }
        let mut group = None::<&str>;
        for sh in &self.shards {
            if group != Some(sh.group.as_str()) {
                group = Some(sh.group.as_str());
                let _ = writeln!(out, "shards [{}]:", sh.group);
            }
            let _ = writeln!(
                out,
                "  #{:<3} {:<26} {:>10.1} ms",
                sh.index,
                sh.label,
                ms(sh.total_us)
            );
            for sp in &sh.spans {
                let _ = writeln!(
                    out,
                    "    {}{:<26} {:>8.1} ms",
                    "  ".repeat(sp.depth),
                    sp.name,
                    ms(sp.dur_us)
                );
            }
            if !sh.counters.is_empty() {
                let counters: Vec<String> = sh
                    .counters
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                let _ = writeln!(out, "      [{}]", counters.join(", "));
            }
        }
        if !self.aggregates.is_empty() {
            out.push_str("aggregates:\n");
            for (name, a) in &self.aggregates {
                let _ = writeln!(
                    out,
                    "  {:<34} count={:<10} calls={:<8} {:>10.1} ms",
                    name,
                    a.count,
                    a.calls,
                    ms(a.total_us)
                );
            }
        }
        out
    }

    /// JSON export (the `repro --metrics-out` payload).
    ///
    /// Top-level keys: `stages` (per-stage wall time), `shards` (per-shard
    /// wall time, spans, counters — persona shards carry the flow/bid/
    /// creative counts), `aggregates`.
    pub fn to_json(&self) -> Json {
        let ms = |us: u64| Json::Float(us as f64 / 1000.0);
        let stages = self
            .stages
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(s.name.clone())),
                    ("depth".into(), Json::Int(s.depth as u64)),
                    ("ms".into(), ms(s.dur_us)),
                ])
            })
            .collect();
        let shards = self
            .shards
            .iter()
            .map(|sh| {
                let spans = sh
                    .spans
                    .iter()
                    .map(|sp| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(sp.name.clone())),
                            ("depth".into(), Json::Int(sp.depth as u64)),
                            ("ms".into(), ms(sp.dur_us)),
                        ])
                    })
                    .collect();
                let counters = sh
                    .counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Int(*v)))
                    .collect();
                Json::Obj(vec![
                    ("group".into(), Json::Str(sh.group.clone())),
                    ("index".into(), Json::Int(sh.index as u64)),
                    ("label".into(), Json::Str(sh.label.clone())),
                    ("ms".into(), ms(sh.total_us)),
                    ("spans".into(), Json::Arr(spans)),
                    ("counters".into(), Json::Obj(counters)),
                ])
            })
            .collect();
        let aggregates = self
            .aggregates
            .iter()
            .map(|(name, a)| {
                (
                    name.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::Int(a.count)),
                        ("calls".into(), Json::Int(a.calls)),
                        ("ms".into(), ms(a.total_us)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("stages".into(), Json::Arr(stages)),
            ("shards".into(), Json::Arr(shards)),
            ("aggregates".into(), Json::Obj(aggregates)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample() -> Report {
        let rec = Recorder::new();
        rec.stage("marketplace", || {});
        rec.stage("persona.shards", || {
            for (i, name) in ["Connected Car", "Vanilla"].iter().enumerate() {
                let mut log = rec.shard("persona", i, name);
                log.span("install", |log| log.add("tap.packets", 12));
                rec.submit(log);
            }
        });
        rec.count("crawler.bids", 7);
        rec.report()
    }

    #[test]
    fn tree_renders_all_sections() {
        let tree = sample().render_tree();
        assert!(tree.contains("marketplace"));
        assert!(tree.contains("shards [persona]"));
        assert!(tree.contains("Connected Car"));
        assert!(tree.contains("install"));
        assert!(tree.contains("tap.packets=12"));
        assert!(tree.contains("crawler.bids"));
    }

    #[test]
    fn json_exports_all_sections() {
        let j = sample().to_json().render();
        assert!(j.contains("\"stages\""));
        assert!(j.contains("\"persona\""));
        assert!(j.contains("\"Connected Car\""));
        assert!(j.contains("\"tap.packets\": 12"));
        assert!(j.contains("\"crawler.bids\""));
    }

    #[test]
    fn lookup_helpers() {
        let r = sample();
        assert_eq!(r.shards_in("persona").len(), 2);
        assert!(r.shards_in("nope").is_empty());
        assert!(r.stage("marketplace").is_some());
        assert!(r.stage("nope").is_none());
    }
}
