//! The thread-safe collector and the process-wide recorder handle.
//!
//! Every mutation of the shared state below runs under an allocation-meter
//! [`pause`](crate::alloc::pause) guard: which thread first inserts an
//! aggregate name or extends the stage vector is a schedule artifact, and
//! metering it would break the byte-parity of the committed allocation
//! counters across `--jobs` values and backends (DESIGN.md §16).

use crate::alloc;
use crate::report::{Aggregate, Report, ShardReport, StageRec};
use crate::shard::ShardLog;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

#[derive(Default)]
struct Inner {
    stages: Vec<StageRec>,
    stage_depth: usize,
    /// Indices of currently open stages, innermost last. A shard submitted
    /// while a stage is open attributes its work units to the innermost one;
    /// which stage is open at submit time is structural (the `par_map` runs
    /// inside the stage closure), so the attribution is schedule-independent.
    open_stages: Vec<usize>,
    shards: BTreeMap<(String, usize), ShardReport>,
    aggregates: BTreeMap<String, Aggregate>,
    /// Schedule-dependent substrate counters (`backend.*` / `worker.*`):
    /// retries, respawns, timeouts. Diagnostic only — surfaced by the
    /// human-facing report views and **never** by the run-ledger surfaces,
    /// because transient transport weather must not change committed bytes.
    volatile: BTreeMap<String, u64>,
}

/// Thread-safe trace/metrics collector.
///
/// One recorder observes one pipeline run. Shard logs submitted from worker
/// threads are keyed by `(group, structural index)` and merged in key order;
/// stage spans are recorded from the (sequential) orchestration thread;
/// aggregates are name-keyed order-independent sums. A disabled recorder
/// makes every operation a no-op, so instrumented code needs no `if`s.
pub struct Recorder {
    enabled: bool,
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl Recorder {
    /// Lock the collector state, recovering from poisoning.
    ///
    /// A panic on another thread while it held the lock poisons the mutex;
    /// the collector's state is still structurally sound (every mutation is
    /// a single insert/increment), so observability keeps working instead of
    /// amplifying the original panic.
    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// A recorder that collects everything.
    pub fn new() -> Recorder {
        Recorder {
            enabled: true,
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// A recorder that collects nothing (the default for untraced runs).
    pub fn disabled() -> Recorder {
        Recorder {
            enabled: false,
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Whether this recorder collects anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Time `f` as a named top-level pipeline stage.
    ///
    /// Stages nest (a `stage` call inside `f` records one level deeper) and
    /// are intended for the *sequential* orchestration path — per-worker
    /// events belong in a [`ShardLog`]. The lock is released while `f` runs,
    /// so nested stage calls do not deadlock.
    pub fn stage<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let idx = {
            let _quiet = alloc::pause();
            let mut g = self.locked();
            let idx = g.stages.len();
            let depth = g.stage_depth;
            g.stages.push(StageRec {
                name: name.to_string(),
                depth,
                start_us: start.duration_since(self.epoch).as_micros() as u64,
                dur_us: 0,
                work: 0,
                alloc_count: 0,
                alloc_bytes: 0,
                peak_rss_kb: 0,
            });
            g.stage_depth += 1;
            g.open_stages.push(idx);
            idx
        };
        let out = f();
        // Sampled outside the lock: a /proc read is slow for a guard scope.
        let rss_kb = alloc::peak_rss_kb();
        let _quiet = alloc::pause();
        let mut g = self.locked();
        g.stage_depth -= 1;
        g.open_stages.pop();
        if let Some(stage) = g.stages.get_mut(idx) {
            stage.dur_us = start.elapsed().as_micros() as u64;
            // OS-level high-water mark at stage close: schedule-dependent
            // like dur_us, shown by the human views, excluded from every
            // ledger surface.
            stage.peak_rss_kb = rss_kb;
        }
        if rss_kb > 0 {
            let v = g.volatile.entry("mem.peak_rss_kb".to_string()).or_insert(0);
            *v = (*v).max(rss_kb);
        }
        out
    }

    /// Open a shard log for the unit of work at `index` within `group`.
    ///
    /// The log is filled lock-free by the owning worker and handed back via
    /// [`Recorder::submit`].
    pub fn shard(&self, group: &str, index: usize, label: &str) -> ShardLog {
        let _quiet = alloc::pause();
        ShardLog::new(group, index, label, self.enabled)
    }

    /// Merge a finished shard log into the recorder.
    ///
    /// Storage is keyed by `(group, index)`, so the merged order — and
    /// therefore the report structure — is independent of submission order.
    /// The shard's virtual work total is attributed to the innermost open
    /// stage (structurally fixed: every shard of a `par_map` is submitted
    /// while its owning stage is open), giving stages a deterministic work
    /// figure alongside their wall-clock one.
    pub fn submit(&self, log: ShardLog) {
        if !self.enabled || !log.is_enabled() {
            return;
        }
        let total_us = log.origin.elapsed().as_micros() as u64;
        let work = log.work_total();
        let _quiet = alloc::pause();
        let mut g = self.locked();
        let stage = match g.open_stages.last().copied() {
            Some(si) => {
                if let Some(s) = g.stages.get_mut(si) {
                    s.work += work;
                    // The shard's sealed allocation window attributes to
                    // the innermost open stage exactly like its work units:
                    // structural, therefore schedule-independent.
                    s.alloc_count += log.alloc_count;
                    s.alloc_bytes += log.alloc_bytes;
                    s.name.clone()
                } else {
                    String::new()
                }
            }
            None => String::new(),
        };
        if log.alloc_count > 0 || log.alloc_bytes > 0 {
            // Run totals, straight into the aggregates map (the lock is
            // already held — `Recorder::count` would deadlock here).
            let a = g.aggregates.entry("alloc.count".to_string()).or_default();
            a.count += log.alloc_count;
            a.calls += 1;
            let a = g.aggregates.entry("alloc.bytes".to_string()).or_default();
            a.count += log.alloc_bytes;
            a.calls += 1;
            let a = g
                .aggregates
                .entry("alloc.peak_bytes".to_string())
                .or_default();
            a.count += log.alloc_peak;
            a.calls += 1;
        }
        g.shards.insert(
            (log.group.clone(), log.index),
            ShardReport {
                group: log.group,
                index: log.index,
                label: log.label,
                stage,
                total_us,
                work,
                alloc_count: log.alloc_count,
                alloc_bytes: log.alloc_bytes,
                alloc_peak: log.alloc_peak,
                alloc_sizes: log.alloc_sizes,
                spans: log.spans,
                counters: log.counters,
            },
        );
    }

    /// Add `n` to a name-keyed aggregate counter.
    pub fn count(&self, name: &str, n: u64) {
        if !self.enabled || n == 0 {
            return;
        }
        let _quiet = alloc::pause();
        let mut g = self.locked();
        g.aggregates.entry(name.to_string()).or_default().count += n;
    }

    /// Time `f` into a name-keyed aggregate (one call, its duration added).
    ///
    /// This is the instrumentation point for leaf libraries (bootstrap
    /// resampling, MWU permutation, crawler visits) where per-call spans
    /// would be noise: totals are order-independent sums, so the aggregate
    /// is deterministic in everything but wall time.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let out = f();
        let elapsed_us = start.elapsed().as_micros() as u64;
        let _quiet = alloc::pause();
        let mut g = self.locked();
        let a = g.aggregates.entry(name.to_string()).or_default();
        a.calls += 1;
        a.total_us += elapsed_us;
        out
    }

    /// Merge an aggregate delta harvested from another recorder.
    ///
    /// The process backend's child workers record leaf-library aggregates
    /// (crawler visits, bootstrap resamples) into their own recorder; the
    /// parent merges the per-shard `(count, calls)` deltas shipped in each
    /// reply so `metrics.json` is byte-identical to an in-process run.
    /// `total_us` is deliberately not merged: wall clock is excluded from
    /// every deterministic surface, and cross-process timing would only
    /// add noise to the schedule-dependent ones.
    pub fn merge_aggregate(&self, name: &str, count: u64, calls: u64) {
        if !self.enabled || (count == 0 && calls == 0) {
            return;
        }
        let _quiet = alloc::pause();
        let mut g = self.locked();
        let a = g.aggregates.entry(name.to_string()).or_default();
        a.count += count;
        a.calls += calls;
    }

    /// Add `n` to a name-keyed **volatile** counter.
    ///
    /// Volatile counters record how the execution substrate behaved (worker
    /// respawns, transport retries, timeouts) rather than what the pipeline
    /// computed. They show up in [`Report::render_tree`] and
    /// [`Report::to_json`] but are excluded from every run-ledger surface,
    /// so they may legitimately differ between byte-identical runs.
    ///
    /// [`Report::render_tree`]: crate::Report::render_tree
    /// [`Report::to_json`]: crate::Report::to_json
    pub fn volatile(&self, name: &str, n: u64) {
        if !self.enabled || n == 0 {
            return;
        }
        let _quiet = alloc::pause();
        let mut g = self.locked();
        *g.volatile.entry(name.to_string()).or_insert(0) += n;
    }

    /// Raise a name-keyed **volatile** gauge to at least `v`.
    ///
    /// The max-merging sibling of [`Recorder::volatile`], for high-water
    /// marks (peak RSS) where summing across samples would be meaningless.
    /// Same channel, same rules: human views only, never a ledger surface.
    pub fn volatile_max(&self, name: &str, v: u64) {
        if !self.enabled || v == 0 {
            return;
        }
        let _quiet = alloc::pause();
        let mut g = self.locked();
        let cur = g.volatile.entry(name.to_string()).or_insert(0);
        *cur = (*cur).max(v);
    }

    /// An immutable snapshot of everything recorded so far.
    pub fn report(&self) -> Report {
        let _quiet = alloc::pause();
        let g = self.locked();
        Report {
            stages: g.stages.clone(),
            shards: g.shards.values().cloned().collect(),
            aggregates: g.aggregates.clone(),
            volatile: g.volatile.clone(),
        }
    }
}

static GLOBAL: RwLock<Option<Arc<Recorder>>> = RwLock::new(None);

/// Install (or replace) the process-wide recorder handle.
///
/// Libraries too deep to thread a recorder through (stats, the crawler)
/// report to this handle via [`agg_count`] / [`agg_time`]; when nothing is
/// installed those are no-ops. The handle is **swappable** so sequential
/// multi-run drivers — the campaign runner executes one audit per cell —
/// can give every run its own recorder without cross-run aggregate
/// contamination. Swapping while an instrumented run is in flight would
/// split that run's aggregates across recorders; callers swap only between
/// runs. Returns `true` when a previously installed handle was replaced.
pub fn install_global(rec: Arc<Recorder>) -> bool {
    let mut g = GLOBAL.write().unwrap_or_else(|p| p.into_inner());
    g.replace(rec).is_some()
}

/// The installed process-wide recorder handle, if any.
pub fn global() -> Option<Arc<Recorder>> {
    GLOBAL
        .read()
        .unwrap_or_else(|p| p.into_inner())
        .as_ref()
        .map(Arc::clone)
}

/// Add to a name-keyed aggregate on the global recorder (no-op when absent).
pub fn agg_count(name: &str, n: u64) {
    if let Some(rec) = global() {
        rec.count(name, n);
    }
}

/// Time `f` into a name-keyed aggregate on the global recorder.
///
/// When no recorder is installed (or it is disabled) `f` runs directly with
/// zero overhead beyond the lock probe.
pub fn agg_time<R>(name: &str, f: impl FnOnce() -> R) -> R {
    match global() {
        Some(rec) => rec.time(name, f),
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_nest_and_close() {
        let rec = Recorder::new();
        let v = rec.stage("outer", || {
            // Keep the stage measurably long: a sub-microsecond closure can
            // legitimately round to dur_us == 0 and flake the assert below.
            std::thread::sleep(std::time::Duration::from_micros(100));
            rec.stage("inner", || 1) + rec.stage("inner2", || 2)
        });
        assert_eq!(v, 3);
        let r = rec.report();
        let shape: Vec<(&str, usize)> = r
            .stages
            .iter()
            .map(|s| (s.name.as_str(), s.depth))
            .collect();
        assert_eq!(shape, vec![("outer", 0), ("inner", 1), ("inner2", 1)]);
        assert!(r.stages.iter().all(|s| s.dur_us > 0 || s.name != "outer"));
    }

    #[test]
    fn submit_order_does_not_matter() {
        let order_a = Recorder::new();
        let order_b = Recorder::new();
        for (rec, order) in [(&order_a, [0usize, 1, 2]), (&order_b, [2, 0, 1])] {
            for i in order {
                let mut log = rec.shard("persona", i, &format!("p{i}"));
                log.add("flows", (i as u64 + 1) * 10);
                log.span("work", |_| {});
                rec.submit(log);
            }
        }
        let (a, b) = (order_a.report(), order_b.report());
        assert_eq!(a.structure(), b.structure());
        assert_eq!(a.shards.len(), 3);
        assert_eq!(a.shards[0].label, "p0");
        assert_eq!(a.shards[2].counters["flows"], 30);
    }

    #[test]
    fn shard_work_attributes_to_the_open_stage() {
        let rec = Recorder::new();
        rec.stage("outer", || {
            rec.stage("persona.shards", || {
                for i in 0..2 {
                    let mut log = rec.shard("persona", i, &format!("p{i}"));
                    log.span("install", |l| l.work(10 + i as u64));
                    rec.submit(log);
                }
            });
        });
        // A shard submitted with no stage open stays unattributed.
        let mut stray = rec.shard("artifact", 0, "stray");
        stray.work(5);
        rec.submit(stray);
        let r = rec.report();
        let works: Vec<(&str, u64)> = r.stages.iter().map(|s| (s.name.as_str(), s.work)).collect();
        assert_eq!(works, vec![("outer", 0), ("persona.shards", 21)]);
        assert_eq!(r.shards[1].stage, "persona.shards");
        assert_eq!(r.shards[1].work, 10);
        assert_eq!(r.shards[2].work, 11);
        assert_eq!(r.shards[0].stage, "");
        assert_eq!(r.shards[0].work, 5);
    }

    #[test]
    fn aggregates_sum_across_calls() {
        let rec = Recorder::new();
        rec.count("resamples", 256);
        rec.count("resamples", 44);
        let v = rec.time("visit", || 5);
        assert_eq!(v, 5);
        rec.time("visit", || ());
        let r = rec.report();
        assert_eq!(r.aggregates["resamples"].count, 300);
        assert_eq!(r.aggregates["visit"].calls, 2);
    }

    #[test]
    fn disabled_recorder_collects_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.stage("s", || {
            rec.count("c", 1);
        });
        let mut log = rec.shard("g", 0, "l");
        log.add("c", 1);
        rec.submit(log);
        rec.time("t", || ());
        rec.volatile("worker.crashes", 1);
        let r = rec.report();
        assert!(r.stages.is_empty() && r.shards.is_empty() && r.aggregates.is_empty());
        assert!(r.volatile.is_empty());
    }

    #[test]
    fn shard_alloc_attributes_to_the_open_stage_and_aggregates() {
        let rec = Recorder::new();
        rec.stage("persona.shards", || {
            for i in 0..2 {
                let mut log = rec.shard("persona", i, &format!("p{i}"));
                log.alloc_open();
                let _scratch: Vec<String> = (0..64).map(|n| format!("u-{n}")).collect();
                log.work(1);
                log.alloc_seal();
                rec.submit(log);
            }
        });
        let r = rec.report();
        let stage = &r.stages[0];
        assert!(stage.alloc_count > 0);
        assert!(stage.alloc_bytes > 0);
        assert_eq!(
            stage.alloc_count,
            r.shards.iter().map(|s| s.alloc_count).sum::<u64>()
        );
        assert_eq!(r.aggregates["alloc.count"].count, stage.alloc_count);
        assert_eq!(r.aggregates["alloc.bytes"].count, stage.alloc_bytes);
        assert_eq!(r.aggregates["alloc.count"].calls, 2);
        assert!(r.aggregates["alloc.peak_bytes"].count > 0);
        // Both shards ran the identical workload: identical deltas.
        assert_eq!(r.shards[0].alloc_count, r.shards[1].alloc_count);
        assert_eq!(r.shards[0].alloc_bytes, r.shards[1].alloc_bytes);
        assert_eq!(r.shards[0].alloc_sizes, r.shards[1].alloc_sizes);
        // Stage close sampled the OS high-water mark (Linux CI boxes).
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(stage.peak_rss_kb > 0);
            assert!(r.volatile["mem.peak_rss_kb"] >= stage.peak_rss_kb);
        }
    }

    #[test]
    fn volatile_max_keeps_the_high_water_mark() {
        let rec = Recorder::new();
        rec.volatile_max("mem.peak_rss_kb", 100);
        rec.volatile_max("mem.peak_rss_kb", 700);
        rec.volatile_max("mem.peak_rss_kb", 300);
        rec.volatile_max("mem.peak_rss_kb", 0);
        assert_eq!(rec.report().volatile["mem.peak_rss_kb"], 700);
    }

    #[test]
    fn volatile_counters_sum_and_skip_zero() {
        let rec = Recorder::new();
        rec.volatile("worker.timeouts", 2);
        rec.volatile("worker.timeouts", 3);
        rec.volatile("backend.shards", 0);
        let r = rec.report();
        assert_eq!(r.volatile["worker.timeouts"], 5);
        assert!(!r.volatile.contains_key("backend.shards"));
    }

    #[test]
    fn global_install_is_swappable() {
        // The global is process-wide and other tests may swap it too, so
        // assert only on the recorder this test installed last: after a
        // swap, aggregates must flow to the new handle and never to the
        // replaced one.
        let first = Arc::new(Recorder::new());
        install_global(first.clone());
        let second = Arc::new(Recorder::new());
        let replaced = install_global(second.clone());
        assert!(replaced, "the first handle must have been replaced");
        agg_count("global.counter", 2);
        agg_time("global.timer", || ());
        let r = second.report();
        // Concurrent tests may also install; only check the "never the
        // replaced one" half unconditionally.
        assert!(first.report().aggregates.is_empty());
        if !r.aggregates.is_empty() {
            assert_eq!(r.aggregates["global.counter"].count, 2);
            assert_eq!(r.aggregates["global.timer"].calls, 1);
        }
    }
}
