//! Per-shard event logs: spans and counters owned by one unit of work.

use crate::alloc;
use crate::hist::Histogram;
use crate::json::Json;
use std::collections::BTreeMap;
use std::time::Instant;

/// One closed span inside a shard log.
///
/// Spans are stored in **pre-order** (order of entry), with an explicit
/// nesting depth — a flat encoding of the span tree that is cheap to record
/// and trivial to render. Each span carries two clocks:
///
/// * `start_us` / `dur_us` — monotonic **wall-clock** microseconds relative
///   to the shard's start. Real, but schedule-dependent.
/// * `start_wu` / `dur_wu` — deterministic **work units** from the shard's
///   virtual clock ([`ShardLog::work`]). A pure function of the structural
///   work the shard performed, so identical across worker counts, machines
///   and runs — the timebase of the run-ledger bundle (DESIGN.md §12).
/// * `alloc_count` / `alloc_bytes` — deterministic **allocation deltas**
///   from the thread's meter ([`crate::alloc`]): allocations performed
///   while the span was open (children included). Like the work clock, a
///   pure function of the shard's structural work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Span name from the fixed taxonomy (see DESIGN.md §9).
    pub name: String,
    /// Nesting depth (0 = top level of the shard).
    pub depth: usize,
    /// Microseconds between shard start and span entry.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Work units on the shard's virtual clock at span entry.
    pub start_wu: u64,
    /// Work units accumulated while the span was open (children included).
    pub dur_wu: u64,
    /// Heap allocations performed while the span was open.
    pub alloc_count: u64,
    /// Heap bytes requested while the span was open.
    pub alloc_bytes: u64,
}

/// A single-threaded event log owned by one structural unit of work.
///
/// Created by [`Recorder::shard`](crate::Recorder::shard) inside a
/// `par_map` closure, filled without any locking while the shard runs, and
/// handed back via [`Recorder::submit`](crate::Recorder::submit) when the
/// shard finishes. The recorder merges logs by `(group, index)` key, so the
/// merged order is a pure function of the structural decomposition — never
/// of which worker ran the shard or when it completed.
#[derive(Debug)]
pub struct ShardLog {
    pub(crate) group: String,
    pub(crate) index: usize,
    pub(crate) label: String,
    pub(crate) origin: Instant,
    pub(crate) spans: Vec<SpanRec>,
    pub(crate) counters: BTreeMap<String, u64>,
    pub(crate) vclock: u64,
    pub(crate) alloc_count: u64,
    pub(crate) alloc_bytes: u64,
    pub(crate) alloc_peak: u64,
    pub(crate) alloc_sizes: Histogram,
    depth: usize,
    enabled: bool,
    /// Meter state captured by [`ShardLog::alloc_open`], pending a seal.
    window: Option<(alloc::AllocSnapshot, Histogram)>,
}

impl ShardLog {
    pub(crate) fn new(group: &str, index: usize, label: &str, enabled: bool) -> ShardLog {
        ShardLog {
            group: group.to_string(),
            index,
            label: label.to_string(),
            origin: Instant::now(),
            spans: Vec::new(),
            counters: BTreeMap::new(),
            vclock: 0,
            alloc_count: 0,
            alloc_bytes: 0,
            alloc_peak: 0,
            alloc_sizes: Histogram::new(),
            depth: 0,
            enabled,
            window: None,
        }
    }

    /// A log that records nothing; every operation is a no-op.
    ///
    /// Useful as the explicit "tracing off" value in code paths that always
    /// thread a log through.
    pub fn disabled() -> ShardLog {
        ShardLog::new("", 0, "", false)
    }

    /// Whether this log records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Run `f` inside a named span, recording its monotonic duration.
    ///
    /// Spans nest: a `span` call inside `f` records one level deeper. When
    /// the log is disabled `f` runs directly with zero bookkeeping.
    pub fn span<R>(&mut self, name: &str, f: impl FnOnce(&mut ShardLog) -> R) -> R {
        if !self.enabled {
            return f(self);
        }
        let idx = self.spans.len();
        let start = Instant::now();
        let start_wu = self.vclock;
        let alloc_at_open = alloc::snapshot();
        self.spans.push(SpanRec {
            name: name.to_string(),
            depth: self.depth,
            start_us: start.duration_since(self.origin).as_micros() as u64,
            dur_us: 0,
            start_wu,
            dur_wu: 0,
            alloc_count: 0,
            alloc_bytes: 0,
        });
        self.depth += 1;
        let out = f(self);
        self.depth -= 1;
        let dur_wu = self.vclock - start_wu;
        let alloc_at_close = alloc::snapshot();
        if let Some(span) = self.spans.get_mut(idx) {
            span.dur_us = start.elapsed().as_micros() as u64;
            span.dur_wu = dur_wu;
            span.alloc_count = alloc_at_close.count - alloc_at_open.count;
            span.alloc_bytes = alloc_at_close.bytes - alloc_at_open.bytes;
        }
        out
    }

    /// Advance the shard's deterministic virtual clock by `n` work units.
    ///
    /// A work unit is one structural step of the pipeline (an install
    /// attempt, an utterance, a crawl visit, a captured packet, a rendered
    /// byte, ...) — counted, never timed. Open spans absorb the units into
    /// their `dur_wu`, so the span tree gets a duration profile that is
    /// byte-identical across `--jobs` values.
    pub fn work(&mut self, n: u64) {
        if self.enabled {
            self.vclock += n;
        }
    }

    /// Total work units on the shard's virtual clock.
    pub fn work_total(&self) -> u64 {
        self.vclock
    }

    /// Add `n` to a named counter.
    pub fn add(&mut self, counter: &str, n: u64) {
        if self.enabled && n > 0 {
            *self.counters.entry(counter.to_string()).or_insert(0) += n;
        }
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Open the shard's allocation window: snapshot this thread's meter and
    /// reset the windowed peak. Call at the top of the shard's work — on
    /// the thread that will run it — and pair with [`ShardLog::alloc_seal`]
    /// when the work ends. No-op when the log is disabled.
    pub fn alloc_open(&mut self) {
        if !self.enabled {
            return;
        }
        alloc::window_reset();
        self.window = Some((alloc::snapshot(), alloc::size_histogram()));
    }

    /// Seal the allocation window: store the deltas (count, bytes, size
    /// histogram) and the windowed peak into the log. Idempotent — a second
    /// seal, or a seal without an open, changes nothing.
    pub fn alloc_seal(&mut self) {
        let Some((at_open, sizes_at_open)) = self.window.take() else {
            return;
        };
        let now = alloc::snapshot();
        self.alloc_count = now.count - at_open.count;
        self.alloc_bytes = now.bytes - at_open.bytes;
        self.alloc_peak = alloc::window_peak();
        self.alloc_sizes = alloc::size_histogram().since(&sizes_at_open);
    }

    /// Heap allocations performed inside the sealed window.
    pub fn alloc_count(&self) -> u64 {
        self.alloc_count
    }

    /// Heap bytes requested inside the sealed window.
    pub fn alloc_bytes(&self) -> u64 {
        self.alloc_bytes
    }

    /// Peak net-live bytes reached inside the sealed window.
    pub fn alloc_peak_bytes(&self) -> u64 {
        self.alloc_peak
    }

    /// Log2 histogram of allocation sizes inside the sealed window.
    pub fn alloc_sizes(&self) -> &Histogram {
        &self.alloc_sizes
    }

    /// Install externally measured allocation deltas — the decode half of a
    /// wire round trip, where the window ran in another process.
    pub fn set_alloc(&mut self, count: u64, bytes: u64, peak_bytes: u64, sizes: Histogram) {
        self.alloc_count = count;
        self.alloc_bytes = bytes;
        self.alloc_peak = peak_bytes;
        self.alloc_sizes = sizes;
    }

    /// Serialize the log for the worker wire protocol (DESIGN.md §15).
    ///
    /// Everything structural crosses the wire: spans (including their
    /// wall-clock fields — real numbers from the worker's clock), counters
    /// and the virtual work clock. A decoded log gets a fresh `origin`, so
    /// the parent's `total_us` measures parent-side wall time; every
    /// deterministic surface is work-unit-based and survives the round trip
    /// bit-exactly.
    pub fn to_wire_json(&self) -> Json {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(s.name.clone())),
                    ("depth".into(), Json::Int(s.depth as u64)),
                    ("start_us".into(), Json::Int(s.start_us)),
                    ("dur_us".into(), Json::Int(s.dur_us)),
                    ("start_wu".into(), Json::Int(s.start_wu)),
                    ("dur_wu".into(), Json::Int(s.dur_wu)),
                    ("alloc_count".into(), Json::Int(s.alloc_count)),
                    ("alloc_bytes".into(), Json::Int(s.alloc_bytes)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::Int(*v)))
            .collect();
        Json::Obj(vec![
            ("group".into(), Json::Str(self.group.clone())),
            ("index".into(), Json::Int(self.index as u64)),
            ("label".into(), Json::Str(self.label.clone())),
            ("spans".into(), Json::Arr(spans)),
            ("counters".into(), Json::Obj(counters)),
            ("vclock".into(), Json::Int(self.vclock)),
        ])
    }

    /// Decode a wire document produced by [`ShardLog::to_wire_json`].
    ///
    /// The decoded log is enabled and closed (depth 0): it is meant to be
    /// submitted to a [`Recorder`](crate::Recorder), not written to further.
    pub fn from_wire_json(j: &Json) -> Option<ShardLog> {
        let str_field = |k: &str| j.get(k).and_then(Json::as_str).map(str::to_string);
        let mut spans = Vec::new();
        for sp in j.get("spans")?.as_arr()? {
            spans.push(SpanRec {
                name: sp.get("name")?.as_str()?.to_string(),
                depth: sp.get("depth")?.as_u64()? as usize,
                start_us: sp.get("start_us")?.as_u64()?,
                dur_us: sp.get("dur_us")?.as_u64()?,
                start_wu: sp.get("start_wu")?.as_u64()?,
                dur_wu: sp.get("dur_wu")?.as_u64()?,
                alloc_count: sp.get("alloc_count")?.as_u64()?,
                alloc_bytes: sp.get("alloc_bytes")?.as_u64()?,
            });
        }
        let mut counters = BTreeMap::new();
        for (k, v) in j.get("counters")?.as_obj()? {
            counters.insert(k.clone(), v.as_u64()?);
        }
        Some(ShardLog {
            group: str_field("group")?,
            index: j.get("index")?.as_u64()? as usize,
            label: str_field("label")?,
            origin: Instant::now(),
            spans,
            counters,
            vclock: j.get("vclock")?.as_u64()?,
            alloc_count: 0,
            alloc_bytes: 0,
            alloc_peak: 0,
            alloc_sizes: Histogram::new(),
            depth: 0,
            enabled: true,
            window: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_in_pre_order_with_depths() {
        let mut log = ShardLog::new("g", 0, "l", true);
        log.span("outer", |log| {
            log.span("inner-a", |_| {});
            log.span("inner-b", |log| {
                log.span("leaf", |_| {});
            });
        });
        log.span("second", |_| {});
        let shape: Vec<(&str, usize)> = log
            .spans
            .iter()
            .map(|s| (s.name.as_str(), s.depth))
            .collect();
        assert_eq!(
            shape,
            vec![
                ("outer", 0),
                ("inner-a", 1),
                ("inner-b", 1),
                ("leaf", 2),
                ("second", 0)
            ]
        );
        // The outer span must cover its children.
        assert!(log.spans[0].dur_us >= log.spans[1].dur_us + log.spans[3].dur_us);
    }

    #[test]
    fn counters_aggregate() {
        let mut log = ShardLog::new("g", 0, "l", true);
        log.add("flows", 3);
        log.add("flows", 4);
        log.add("bids", 1);
        log.add("zeros", 0);
        assert_eq!(log.counter("flows"), 7);
        assert_eq!(log.counter("bids"), 1);
        assert_eq!(log.counter("zeros"), 0);
        assert_eq!(log.counter("never"), 0);
        // Zero adds never materialize a key.
        assert!(!log.counters.contains_key("zeros"));
    }

    #[test]
    fn work_units_flow_into_open_spans() {
        let mut log = ShardLog::new("g", 0, "l", true);
        log.work(2); // outside any span: shard total only
        log.span("outer", |log| {
            log.work(3);
            log.span("inner", |log| log.work(5));
            log.work(1);
        });
        log.span("second", |log| log.work(4));
        assert_eq!(log.work_total(), 15);
        let wu: Vec<(&str, u64, u64)> = log
            .spans
            .iter()
            .map(|s| (s.name.as_str(), s.start_wu, s.dur_wu))
            .collect();
        assert_eq!(
            wu,
            vec![("outer", 2, 9), ("inner", 5, 5), ("second", 11, 4)]
        );
    }

    #[test]
    fn wire_codec_round_trips_structure() {
        let mut log = ShardLog::new("persona", 3, "Connected Car", true);
        log.span("install", |log| {
            log.add("tap.flows", 7);
            log.work(12);
            log.span("retry", |log| log.work(5));
        });
        log.work(2);
        let decoded = ShardLog::from_wire_json(&log.to_wire_json()).unwrap();
        assert_eq!(decoded.group, log.group);
        assert_eq!(decoded.index, log.index);
        assert_eq!(decoded.label, log.label);
        assert_eq!(decoded.spans, log.spans);
        assert_eq!(decoded.counters, log.counters);
        assert_eq!(decoded.work_total(), log.work_total());
        assert!(decoded.is_enabled());
        // The render also survives a parse through the strict JSON parser.
        let rendered = log.to_wire_json().render();
        let reparsed = Json::parse(&rendered).unwrap();
        assert_eq!(
            ShardLog::from_wire_json(&reparsed).unwrap().spans,
            log.spans
        );
    }

    #[test]
    fn wire_codec_rejects_malformed_documents() {
        assert!(ShardLog::from_wire_json(&Json::Null).is_none());
        assert!(ShardLog::from_wire_json(&Json::Obj(vec![(
            "group".into(),
            Json::Str("g".into())
        )]))
        .is_none());
    }

    #[test]
    fn alloc_window_measures_shard_deltas_deterministically() {
        let run = || {
            let mut log = ShardLog::new("g", 0, "l", true);
            log.alloc_open();
            log.span("work", |log| {
                let mut v: Vec<String> = Vec::new();
                for i in 0..128 {
                    v.push(format!("persona-{i}"));
                }
                log.work(v.len() as u64);
            });
            log.alloc_seal();
            log
        };
        let a = run();
        let b = run();
        assert!(a.alloc_count() > 0);
        assert!(a.alloc_bytes() > 0);
        assert!(a.alloc_peak_bytes() > 0);
        assert!(a.alloc_sizes().total() > 0);
        // Identical structural work => identical deltas, wherever in the
        // thread's history the window opened.
        assert_eq!(a.alloc_count(), b.alloc_count());
        assert_eq!(a.alloc_bytes(), b.alloc_bytes());
        assert_eq!(a.alloc_sizes(), b.alloc_sizes());
        // The span saw the same allocations the window did (plus nothing
        // outside it happened here).
        assert!(a.spans[0].alloc_count > 0);
        assert!(a.spans[0].alloc_count <= a.alloc_count());
        // Sealing twice changes nothing.
        let mut sealed = a;
        let (c, by) = (sealed.alloc_count(), sealed.alloc_bytes());
        sealed.alloc_seal();
        assert_eq!((sealed.alloc_count(), sealed.alloc_bytes()), (c, by));
    }

    #[test]
    fn set_alloc_installs_decoded_deltas() {
        let mut log = ShardLog::new("g", 1, "l", true);
        let mut sizes = Histogram::new();
        sizes.record_n(64, 5);
        log.set_alloc(5, 320, 1024, sizes.clone());
        assert_eq!(log.alloc_count(), 5);
        assert_eq!(log.alloc_bytes(), 320);
        assert_eq!(log.alloc_peak_bytes(), 1024);
        assert_eq!(log.alloc_sizes(), &sizes);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = ShardLog::disabled();
        let v = log.span("outer", |log| {
            log.add("c", 9);
            log.work(7);
            42
        });
        assert_eq!(v, 42);
        assert!(log.spans.is_empty());
        assert!(log.counters.is_empty());
        assert_eq!(log.work_total(), 0);
        assert!(!log.is_enabled());
    }
}
