//! Run-ledger bundles: self-describing directories capturing one audit run.
//!
//! A bundle is five files written by `repro --run-dir`:
//!
//! * `manifest.json` — identity: schema version, seed, fault profile, the
//!   observations digest, and an optional coverage report.
//! * `metrics.json` — flat deterministic metrics (per-stage work, counter
//!   totals, aggregate counts, per-group summaries and histograms).
//! * `trace.json` — the full span tree in work units.
//! * `memory.json` — the deterministic allocation plane: per-stage and
//!   per-shard allocation deltas, per-group summaries and size histograms
//!   (schema 2; OS-level RSS is volatile and deliberately absent).
//! * `profile.folded` — a folded-stack self-time profile (flamegraph input).
//!
//! Every byte of every file is a pure function of `(seed, fault profile,
//! config)`: durations are virtual work units, maps are ordered, and the
//! manifest deliberately **omits the worker count** — the bundle is the same
//! for `--jobs 1`, `4` and `8` (`"jobs_independent": true` records the
//! guarantee). Two bundles are therefore directly comparable with `obs-diff`,
//! and CI asserts their byte-equality across worker counts.

use crate::json::Json;
use crate::report::Report;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Version of the bundle layout and JSON schemas. Bump on any change to the
/// file set or to the meaning/shape of an existing field.
///
/// History: 1 = four-file bundle (manifest/metrics/trace/profile); 2 =
/// adds `memory.json` plus allocation-delta fields on trace spans and
/// metrics aggregates.
pub const SCHEMA_VERSION: u64 = 2;

/// File name of the bundle manifest.
pub const MANIFEST_FILE: &str = "manifest.json";
/// File name of the deterministic metrics document.
pub const METRICS_FILE: &str = "metrics.json";
/// File name of the deterministic trace document.
pub const TRACE_FILE: &str = "trace.json";
/// File name of the deterministic memory document.
pub const MEMORY_FILE: &str = "memory.json";
/// File name of the folded-stack work profile.
pub const PROFILE_FILE: &str = "profile.folded";

/// The campaign-cell identity a bundle may carry when it was produced by
/// `repro campaign` rather than a standalone `repro --run-dir` run.
///
/// The cell id is the **jobs- and repeat-free** identity (see
/// `alexa_obs::campaign::CellCoord::id`): recording an instance coordinate
/// here would break the byte-equality of one cell identity's bundles
/// across worker counts and repeats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignCell {
    /// Hash of the canonical plan the cell belongs to (`Plan::hash`).
    pub plan_hash: String,
    /// The cell's identity key, e.g. `s7-fflaky-dnone`.
    pub cell: String,
}

/// The run-identity facts recorded in a bundle's manifest.
#[derive(Debug, Clone)]
pub struct BundleSpec {
    /// Master seed of the run.
    pub seed: u64,
    /// Name of the fault profile ("none", "flaky", "hostile", ...).
    pub fault_profile: String,
    /// Defense mode of the run, when one differs from the measurement
    /// condition (`None` for undefended runs — the field is then absent
    /// from the manifest, keeping pre-campaign bundles byte-stable).
    pub defense: Option<String>,
    /// Campaign-cell identity, when the bundle is a campaign cell.
    pub campaign: Option<CampaignCell>,
    /// `Observations::digest()` of the produced observations.
    pub observations_digest: u64,
    /// Pre-rendered coverage report (`CoverageReport::to_json`), if the run
    /// tracked coverage. Passed in as [`Json`] so this crate needs no
    /// dependency on the fault plane.
    pub coverage: Option<Json>,
}

impl BundleSpec {
    /// The manifest document for this run.
    ///
    /// The digest is rendered as fixed-width hex so the manifest is stable
    /// to parse and diff. There is no `jobs` field by design: the whole
    /// bundle is worker-count-independent and recording the count would
    /// break byte-equality across `--jobs` values.
    pub fn manifest_json(&self) -> Json {
        let mut fields = vec![
            ("schema".to_string(), Json::Int(SCHEMA_VERSION)),
            ("seed".to_string(), Json::Int(self.seed)),
            (
                "fault_profile".to_string(),
                Json::Str(self.fault_profile.clone()),
            ),
            (
                "observations_digest".to_string(),
                Json::Str(format!("{:016x}", self.observations_digest)),
            ),
            ("jobs_independent".to_string(), Json::Bool(true)),
        ];
        if let Some(defense) = &self.defense {
            fields.push(("defense".to_string(), Json::Str(defense.clone())));
        }
        if let Some(cell) = &self.campaign {
            fields.push((
                "campaign".to_string(),
                Json::Obj(vec![
                    ("plan_hash".to_string(), Json::Str(cell.plan_hash.clone())),
                    ("cell".to_string(), Json::Str(cell.cell.clone())),
                ]),
            ));
        }
        if let Some(cov) = &self.coverage {
            fields.push(("coverage".to_string(), cov.clone()));
        }
        Json::Obj(fields)
    }

    /// Whether `manifest` (a parsed `manifest.json`) records the same run
    /// identity as this spec: seed, fault profile, defense, and — when
    /// either side is a campaign cell — plan hash and cell id.
    ///
    /// The observations digest is deliberately **not** part of the match:
    /// identity says "this directory holds a bundle of the same
    /// experiment", not "the same bytes" — overwriting a same-identity
    /// bundle refreshes it, overwriting a different-identity one destroys
    /// evidence. Both `repro --run-dir`'s overwrite guard and the campaign
    /// runner's resume detection build on this one predicate.
    pub fn matches_manifest(&self, manifest: &Json) -> bool {
        let seed_ok = manifest.get("seed").and_then(Json::as_u64) == Some(self.seed);
        let fault_ok = manifest.get("fault_profile").and_then(Json::as_str)
            == Some(self.fault_profile.as_str());
        let defense_ok = manifest.get("defense").and_then(Json::as_str) == self.defense.as_deref();
        let campaign_ok = match (&self.campaign, manifest.get("campaign")) {
            (None, None) => true,
            (Some(cell), Some(found)) => {
                found.get("plan_hash").and_then(Json::as_str) == Some(cell.plan_hash.as_str())
                    && found.get("cell").and_then(Json::as_str) == Some(cell.cell.as_str())
            }
            _ => false,
        };
        seed_ok && fault_ok && defense_ok && campaign_ok
    }
}

/// What [`check_run_dir`] found at the target directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunDirState {
    /// The directory is absent or empty — writing creates a fresh bundle.
    Fresh,
    /// The directory holds a bundle manifest matching the spec's identity —
    /// writing refreshes the same experiment's bundle.
    Matching,
}

/// Why a run directory must not be written to.
#[derive(Debug, Clone, PartialEq)]
pub enum RunDirConflict {
    /// The directory is non-empty but holds no readable bundle manifest —
    /// it is not ours to overwrite.
    NotABundle {
        /// The directory that was checked.
        dir: PathBuf,
        /// Why the manifest could not be read.
        detail: String,
    },
    /// The directory holds a bundle of a *different* experiment.
    Mismatched {
        /// The directory that was checked.
        dir: PathBuf,
        /// The identity the existing manifest records.
        found: String,
    },
}

impl fmt::Display for RunDirConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunDirConflict::NotABundle { dir, detail } => write!(
                f,
                "{} is non-empty but not a run bundle ({detail}); refusing to overwrite",
                dir.display()
            ),
            RunDirConflict::Mismatched { dir, found } => write!(
                f,
                "{} holds a bundle of a different run ({found}); refusing to overwrite",
                dir.display()
            ),
        }
    }
}

/// Check whether `dir` may receive a bundle for `spec`.
///
/// A missing or empty directory is [`RunDirState::Fresh`]; a directory
/// whose `manifest.json` matches the spec's identity
/// ([`BundleSpec::matches_manifest`]) is [`RunDirState::Matching`]; any
/// other non-empty directory is a conflict — the caller must refuse
/// rather than silently destroy whatever lives there.
pub fn check_run_dir(dir: &Path, spec: &BundleSpec) -> Result<RunDirState, RunDirConflict> {
    let Ok(mut entries) = std::fs::read_dir(dir) else {
        return Ok(RunDirState::Fresh); // absent (or unreadable: surfaces on write)
    };
    if entries.next().is_none() {
        return Ok(RunDirState::Fresh);
    }
    let manifest_path = dir.join(MANIFEST_FILE);
    let text = std::fs::read_to_string(&manifest_path).map_err(|e| RunDirConflict::NotABundle {
        dir: dir.to_path_buf(),
        detail: format!("cannot read {MANIFEST_FILE}: {e}"),
    })?;
    let manifest = Json::parse(text.trim_end()).map_err(|e| RunDirConflict::NotABundle {
        dir: dir.to_path_buf(),
        detail: format!("{MANIFEST_FILE}: {e}"),
    })?;
    if spec.matches_manifest(&manifest) {
        Ok(RunDirState::Matching)
    } else {
        let found = format!(
            "seed {}, fault profile {:?}, defense {:?}, campaign cell {:?}",
            manifest.get("seed").and_then(Json::as_u64).unwrap_or(0),
            manifest
                .get("fault_profile")
                .and_then(Json::as_str)
                .unwrap_or("?"),
            manifest.get("defense").and_then(Json::as_str),
            manifest
                .get("campaign")
                .and_then(|c| c.get("cell"))
                .and_then(Json::as_str),
        );
        Err(RunDirConflict::Mismatched {
            dir: dir.to_path_buf(),
            found,
        })
    }
}

/// Write the five bundle files for one run into `dir` (created if needed).
///
/// JSON documents get a trailing newline; the folded profile is already
/// newline-terminated per line. The manifest is written **last**: its
/// presence marks the bundle complete, so a crash mid-write leaves a
/// directory that loaders and the campaign resume logic treat as partial
/// (re-executed) rather than done.
pub fn write_bundle(dir: &Path, spec: &BundleSpec, report: &Report) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut metrics = report.ledger_metrics_json().render();
    metrics.push('\n');
    std::fs::write(dir.join(METRICS_FILE), metrics)?;
    let mut trace = report.ledger_trace_json().render();
    trace.push('\n');
    std::fs::write(dir.join(TRACE_FILE), trace)?;
    let mut memory = report.ledger_memory_json().render();
    memory.push('\n');
    std::fs::write(dir.join(MEMORY_FILE), memory)?;
    std::fs::write(dir.join(PROFILE_FILE), report.folded_profile())?;
    let mut manifest = spec.manifest_json().render();
    manifest.push('\n');
    std::fs::write(dir.join(MANIFEST_FILE), manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn spec() -> BundleSpec {
        BundleSpec {
            seed: 7,
            fault_profile: "none".into(),
            defense: None,
            campaign: None,
            observations_digest: 0xdead_beef,
            coverage: None,
        }
    }

    #[test]
    fn manifest_is_jobs_free_and_versioned() {
        let m = spec().manifest_json();
        assert_eq!(m.get("schema").and_then(Json::as_u64), Some(SCHEMA_VERSION));
        assert_eq!(m.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(m.get("fault_profile").and_then(Json::as_str), Some("none"));
        assert_eq!(
            m.get("observations_digest").and_then(Json::as_str),
            Some("00000000deadbeef")
        );
        assert_eq!(
            m.get("jobs_independent").and_then(Json::as_bool),
            Some(true)
        );
        assert!(m.get("jobs").is_none(), "manifest must not record --jobs");
    }

    #[test]
    fn manifest_records_campaign_cell_identity_when_present() {
        let mut s = spec();
        s.defense = Some("firewall".into());
        s.campaign = Some(CampaignCell {
            plan_hash: "abc123".into(),
            cell: "s7-fnone-dfirewall".into(),
        });
        let m = s.manifest_json();
        assert_eq!(m.get("defense").and_then(Json::as_str), Some("firewall"));
        let cell = m.get("campaign").expect("campaign field");
        assert_eq!(cell.get("plan_hash").and_then(Json::as_str), Some("abc123"));
        assert_eq!(
            cell.get("cell").and_then(Json::as_str),
            Some("s7-fnone-dfirewall")
        );
        // A plain spec's manifest stays byte-identical to the pre-campaign
        // schema: no defense, no campaign field.
        let plain = spec().manifest_json().render();
        assert!(!plain.contains("defense") && !plain.contains("campaign"));
    }

    #[test]
    fn manifest_identity_matching_ignores_digest_but_not_identity() {
        let s = spec();
        let mut same = spec();
        same.observations_digest = 0x1234; // different bytes, same experiment
        assert!(s.matches_manifest(&same.manifest_json()));

        let mut other_seed = spec();
        other_seed.seed = 8;
        assert!(!s.matches_manifest(&other_seed.manifest_json()));

        let mut other_fault = spec();
        other_fault.fault_profile = "flaky".into();
        assert!(!s.matches_manifest(&other_fault.manifest_json()));

        let mut defended = spec();
        defended.defense = Some("firewall".into());
        assert!(!s.matches_manifest(&defended.manifest_json()));
        assert!(defended.matches_manifest(&defended.manifest_json()));

        let mut cell = spec();
        cell.campaign = Some(CampaignCell {
            plan_hash: "aa".into(),
            cell: "s7-fnone-dnone".into(),
        });
        assert!(!s.matches_manifest(&cell.manifest_json()));
        assert!(cell.matches_manifest(&cell.manifest_json()));
        let mut other_plan = cell.clone();
        other_plan.campaign = Some(CampaignCell {
            plan_hash: "bb".into(),
            cell: "s7-fnone-dnone".into(),
        });
        assert!(!cell.matches_manifest(&other_plan.manifest_json()));
    }

    #[test]
    fn check_run_dir_distinguishes_fresh_matching_and_conflicting() {
        let base = std::env::temp_dir().join(format!("obs-rundir-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);

        // Absent and empty directories are fresh.
        assert_eq!(check_run_dir(&base, &spec()), Ok(RunDirState::Fresh));
        std::fs::create_dir_all(&base).expect("mkdir");
        assert_eq!(check_run_dir(&base, &spec()), Ok(RunDirState::Fresh));

        // A non-empty directory without a manifest is not a bundle.
        std::fs::write(base.join("notes.txt"), "precious").expect("write");
        assert!(matches!(
            check_run_dir(&base, &spec()),
            Err(RunDirConflict::NotABundle { .. })
        ));

        // A matching manifest allows a refresh; a mismatched one refuses.
        let mut manifest = spec().manifest_json().render();
        manifest.push('\n');
        std::fs::write(base.join(MANIFEST_FILE), manifest).expect("write manifest");
        assert_eq!(check_run_dir(&base, &spec()), Ok(RunDirState::Matching));
        let mut other = spec();
        other.seed = 99;
        let err = check_run_dir(&base, &other).expect_err("must refuse");
        assert!(matches!(err, RunDirConflict::Mismatched { .. }));
        assert!(err.to_string().contains("refusing to overwrite"));

        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn write_bundle_writes_manifest_last() {
        // The completion marker must be the manifest: enumerate the write
        // order indirectly by writing into a fresh dir and checking that a
        // manifest-less directory is what a mid-write crash leaves behind.
        let rec = Recorder::new();
        let report = rec.report();
        let dir = std::env::temp_dir().join(format!("obs-order-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_bundle(&dir, &spec(), &report).expect("bundle write");
        // All five present after a clean write.
        for file in [
            METRICS_FILE,
            TRACE_FILE,
            MEMORY_FILE,
            PROFILE_FILE,
            MANIFEST_FILE,
        ] {
            assert!(dir.join(file).exists(), "{file} missing");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_embeds_coverage_when_present() {
        let mut s = spec();
        s.coverage = Some(Json::Obj(vec![(
            "profile".into(),
            Json::Str("flaky".into()),
        )]));
        let m = s.manifest_json();
        assert_eq!(
            m.get("coverage")
                .and_then(|c| c.get("profile"))
                .and_then(Json::as_str),
            Some("flaky")
        );
    }

    #[test]
    fn write_bundle_produces_all_five_files() {
        let rec = Recorder::new();
        rec.stage("persona.shards", || {
            let mut log = rec.shard("persona", 0, "Vanilla");
            log.alloc_open();
            log.span("install", |l| l.work(4));
            log.alloc_seal();
            rec.submit(log);
        });
        let report = rec.report();
        let dir = std::env::temp_dir().join(format!("obs-bundle-test-{}", std::process::id()));
        write_bundle(&dir, &spec(), &report).expect("bundle write");
        for file in [
            MANIFEST_FILE,
            METRICS_FILE,
            TRACE_FILE,
            MEMORY_FILE,
            PROFILE_FILE,
        ] {
            let body = std::fs::read_to_string(dir.join(file)).expect("bundle file");
            assert!(!body.is_empty(), "{file} must not be empty");
        }
        let memory = std::fs::read_to_string(dir.join(MEMORY_FILE)).expect("memory readable");
        let parsed = Json::parse(memory.trim_end()).expect("memory parses");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert!(parsed.get("stage_alloc").is_some());
        let manifest = std::fs::read_to_string(dir.join(MANIFEST_FILE)).expect("manifest readable");
        assert!(manifest.ends_with('\n'));
        Json::parse(manifest.trim_end()).expect("manifest parses");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
