//! Run-ledger bundles: self-describing directories capturing one audit run.
//!
//! A bundle is four files written by `repro --run-dir`:
//!
//! * `manifest.json` — identity: schema version, seed, fault profile, the
//!   observations digest, and an optional coverage report.
//! * `metrics.json` — flat deterministic metrics (per-stage work, counter
//!   totals, aggregate counts, per-group summaries and histograms).
//! * `trace.json` — the full span tree in work units.
//! * `profile.folded` — a folded-stack self-time profile (flamegraph input).
//!
//! Every byte of every file is a pure function of `(seed, fault profile,
//! config)`: durations are virtual work units, maps are ordered, and the
//! manifest deliberately **omits the worker count** — the bundle is the same
//! for `--jobs 1`, `4` and `8` (`"jobs_independent": true` records the
//! guarantee). Two bundles are therefore directly comparable with `obs-diff`,
//! and CI asserts their byte-equality across worker counts.

use crate::json::Json;
use crate::report::Report;
use std::io;
use std::path::Path;

/// Version of the bundle layout and JSON schemas. Bump on any change to the
/// file set or to the meaning/shape of an existing field.
pub const SCHEMA_VERSION: u64 = 1;

/// File name of the bundle manifest.
pub const MANIFEST_FILE: &str = "manifest.json";
/// File name of the deterministic metrics document.
pub const METRICS_FILE: &str = "metrics.json";
/// File name of the deterministic trace document.
pub const TRACE_FILE: &str = "trace.json";
/// File name of the folded-stack work profile.
pub const PROFILE_FILE: &str = "profile.folded";

/// The run-identity facts recorded in a bundle's manifest.
#[derive(Debug, Clone)]
pub struct BundleSpec {
    /// Master seed of the run.
    pub seed: u64,
    /// Name of the fault profile ("none", "flaky", "hostile", ...).
    pub fault_profile: String,
    /// `Observations::digest()` of the produced observations.
    pub observations_digest: u64,
    /// Pre-rendered coverage report (`CoverageReport::to_json`), if the run
    /// tracked coverage. Passed in as [`Json`] so this crate needs no
    /// dependency on the fault plane.
    pub coverage: Option<Json>,
}

impl BundleSpec {
    /// The manifest document for this run.
    ///
    /// The digest is rendered as fixed-width hex so the manifest is stable
    /// to parse and diff. There is no `jobs` field by design: the whole
    /// bundle is worker-count-independent and recording the count would
    /// break byte-equality across `--jobs` values.
    pub fn manifest_json(&self) -> Json {
        let mut fields = vec![
            ("schema".to_string(), Json::Int(SCHEMA_VERSION)),
            ("seed".to_string(), Json::Int(self.seed)),
            (
                "fault_profile".to_string(),
                Json::Str(self.fault_profile.clone()),
            ),
            (
                "observations_digest".to_string(),
                Json::Str(format!("{:016x}", self.observations_digest)),
            ),
            ("jobs_independent".to_string(), Json::Bool(true)),
        ];
        if let Some(cov) = &self.coverage {
            fields.push(("coverage".to_string(), cov.clone()));
        }
        Json::Obj(fields)
    }
}

/// Write the four bundle files for one run into `dir` (created if needed).
///
/// JSON documents get a trailing newline; the folded profile is already
/// newline-terminated per line.
pub fn write_bundle(dir: &Path, spec: &BundleSpec, report: &Report) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut manifest = spec.manifest_json().render();
    manifest.push('\n');
    std::fs::write(dir.join(MANIFEST_FILE), manifest)?;
    let mut metrics = report.ledger_metrics_json().render();
    metrics.push('\n');
    std::fs::write(dir.join(METRICS_FILE), metrics)?;
    let mut trace = report.ledger_trace_json().render();
    trace.push('\n');
    std::fs::write(dir.join(TRACE_FILE), trace)?;
    std::fs::write(dir.join(PROFILE_FILE), report.folded_profile())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn spec() -> BundleSpec {
        BundleSpec {
            seed: 7,
            fault_profile: "none".into(),
            observations_digest: 0xdead_beef,
            coverage: None,
        }
    }

    #[test]
    fn manifest_is_jobs_free_and_versioned() {
        let m = spec().manifest_json();
        assert_eq!(m.get("schema").and_then(Json::as_u64), Some(SCHEMA_VERSION));
        assert_eq!(m.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(m.get("fault_profile").and_then(Json::as_str), Some("none"));
        assert_eq!(
            m.get("observations_digest").and_then(Json::as_str),
            Some("00000000deadbeef")
        );
        assert_eq!(
            m.get("jobs_independent").and_then(Json::as_bool),
            Some(true)
        );
        assert!(m.get("jobs").is_none(), "manifest must not record --jobs");
    }

    #[test]
    fn manifest_embeds_coverage_when_present() {
        let mut s = spec();
        s.coverage = Some(Json::Obj(vec![(
            "profile".into(),
            Json::Str("flaky".into()),
        )]));
        let m = s.manifest_json();
        assert_eq!(
            m.get("coverage")
                .and_then(|c| c.get("profile"))
                .and_then(Json::as_str),
            Some("flaky")
        );
    }

    #[test]
    fn write_bundle_produces_all_four_files() {
        let rec = Recorder::new();
        rec.stage("persona.shards", || {
            let mut log = rec.shard("persona", 0, "Vanilla");
            log.span("install", |l| l.work(4));
            rec.submit(log);
        });
        let report = rec.report();
        let dir = std::env::temp_dir().join(format!("obs-bundle-test-{}", std::process::id()));
        write_bundle(&dir, &spec(), &report).expect("bundle write");
        for file in [MANIFEST_FILE, METRICS_FILE, TRACE_FILE, PROFILE_FILE] {
            let body = std::fs::read_to_string(dir.join(file)).expect("bundle file");
            assert!(!body.is_empty(), "{file} must not be empty");
        }
        let manifest = std::fs::read_to_string(dir.join(MANIFEST_FILE)).expect("manifest readable");
        assert!(manifest.ends_with('\n'));
        Json::parse(manifest.trim_end()).expect("manifest parses");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
