//! The single-source registry of observability names.
//!
//! Every span, stage, counter, shard group, coverage section and global
//! aggregate name used anywhere in the workspace must appear here, in
//! `dotted.lowercase` form. `alexa-analyzer` extracts this constant
//! lexically and fails CI when a call site uses a name that is missing or
//! mis-shaped (lint AO01), so the registry cannot drift from the code.
//!
//! Keep the list sorted — a unit test enforces it, which keeps merges
//! conflict-free and diffs reviewable.

/// All sanctioned observability names, sorted.
pub const REGISTRY: &[&str] = &[
    "alloc.bytes",               // aggregate: heap bytes requested across shard windows
    "alloc.count",               // aggregate: heap allocations across shard windows
    "alloc.peak_bytes",          // aggregate: summed per-shard windowed peak net-live bytes
    "artifact",                  // shard group: report artifact renders
    "audio",                     // span: audio tap + transcript harvest
    "audio.transcripts",         // counter: voice transcripts harvested
    "avs",                       // shard group: AVS catalogue passes
    "avs.pass",                  // stage: AVS skill-store sweep
    "avs.skills",                // coverage section: skills seen via AVS
    "backend.backoff_ms",        // volatile: virtual transport backoff accumulated
    "backend.committed",         // volatile: shards committed with a result
    "backend.lost",              // volatile: shards lost to the failure taxonomy
    "backend.retries.poll",      // volatile: mock-remote poll retries
    "backend.retries.result",    // volatile: mock-remote result-fetch retries
    "backend.retries.submit",    // volatile: mock-remote submit retries
    "backend.shards",            // volatile: shards offered to a backend
    "boot",                      // span: device boot + profile setup
    "campaign.cells",            // stage: execute every plan cell
    "campaign.plan",             // stage: plan load + parse + conflict checks
    "campaign.tables",           // stage: derive analysis tables from cell bundles
    "campaign.verify",           // stage: cross-instance byte-equality verification
    "cell",                      // shard group: one campaign cell instance
    "cell.executed",             // counter: cells executed this invocation
    "cell.skipped",              // counter: cells skipped as already complete
    "crawl.bids",                // counter: bids captured across crawl visits
    "crawl.creatives",           // counter: ad creatives captured across crawl visits
    "crawl.post",                // span: web crawl after interactions
    "crawl.pre",                 // span: web crawl before interactions
    "crawl.syncs",               // counter: cookie syncs captured across crawl visits
    "crawl.visits",              // counter + coverage section: crawl page visits
    "crawler.bids",              // aggregate: bids observed by the crawler
    "crawler.creatives",         // aggregate: ad creatives captured
    "crawler.syncs",             // aggregate: cookie syncs observed
    "crawler.visit",             // aggregate timer: one crawl visit
    "crawler.visits",            // aggregate: crawl visits completed
    "derive.defended",           // stage: defended-record derivation for the defenses artifact
    "dsar.after_install",        // span: DSAR export after installs
    "dsar.after_interaction1",   // span: DSAR export after first interaction round
    "dsar.after_interaction2",   // span: DSAR export after second interaction round
    "dsar.exports",              // counter: DSAR exports harvested
    "fault.bid_loss",            // aggregate: bids dropped by the bid_loss channel
    "fault.injected",            // counter: faults injected (ledger total)
    "fault.losses",              // counter: permanent losses after retry budget
    "fault.retries",             // counter: retries consumed by faults
    "index.build",               // stage: shared analysis-index construction
    "index.defended",            // stage: analysis-index builds for the defended records
    "install",                   // span: skill installation round
    "install.failed",            // counter: installs that failed permanently
    "interact",                  // span: skill interaction round
    "marketplace",               // stage: marketplace generation
    "mem.peak_rss_kb",           // volatile: process peak RSS (VmHWM), schedule-dependent
    "merge",                     // stage: deterministic shard merge
    "persona",                   // shard group: per-persona pipeline shards
    "persona.shards",            // stage: per-persona experiment shards
    "policy.documents",          // counter: policy documents downloaded
    "policy.download",           // stage: policy document download pass
    "policy.downloads",          // coverage section: policy download coverage
    "render",                    // span: report rendering
    "render.all",                // stage: render all report artifacts
    "render.bytes",              // counter: bytes of rendered artifacts
    "skill.installs",            // coverage section: skill install coverage
    "skill.interactions",        // coverage section: skill interaction coverage
    "skills",                    // span: skill catalogue resolution
    "stats.bootstrap.resamples", // aggregate: bootstrap resamples drawn
    "stats.bootstrap_ci",        // aggregate timer: bootstrap CI computation
    "stats.mann_whitney_permutation", // aggregate timer: permutation MWU test
    "stats.mann_whitney_u",      // aggregate timer: Mann-Whitney U test
    "stats.mwu.permutations",    // aggregate: MWU permutations drawn
    "tap.bytes",                 // counter: bytes seen by the network tap
    "tap.flows",                 // counter: flows seen by the network tap
    "tap.sessions",              // counter: TLS sessions seen by the tap
    "web.ecosystem",             // stage: web ad-ecosystem construction
    "worker.crashes",            // volatile: worker crashes (exit / dead pipe / EOF)
    "worker.malformed",          // volatile: protocol violations from workers
    "worker.respawned",          // volatile: workers replaced after a failure
    "worker.spawned",            // volatile: workers started for the initial pool
    "worker.timeouts",           // volatile: per-shard timeouts that killed a worker
];

/// Whether `name` is a sanctioned observability name.
pub fn is_registered(name: &str) -> bool {
    REGISTRY.binary_search(&name).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in REGISTRY.windows(2) {
            assert!(
                pair[0] < pair[1],
                "{:?} must sort before {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn registry_names_are_dotted_lowercase() {
        for name in REGISTRY {
            assert!(
                name.split('.').all(|seg| {
                    !seg.is_empty()
                        && seg.starts_with(|c: char| c.is_ascii_lowercase())
                        && seg
                            .chars()
                            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
                }),
                "bad name shape: {name:?}"
            );
        }
    }

    #[test]
    fn lookup_works() {
        assert!(is_registered("boot"));
        assert!(is_registered("stats.mwu.permutations"));
        assert!(!is_registered("render-all"));
        assert!(!is_registered("mystery"));
    }
}
