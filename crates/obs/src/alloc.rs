//! Deterministic allocation accounting: a counting [`GlobalAlloc`] wrapper
//! around the system allocator, with thread-local meters.
//!
//! The meter answers one question per thread: *what did this thread
//! allocate between two points in time?* Each thread tracks monotone
//! totals (allocation count, allocated bytes), a windowed net-live /
//! peak-net-live pair, and a log2 histogram of allocation sizes. A shard
//! opens a window ([`ShardLog::alloc_open`]) when its work starts and seals
//! it when the work ends; the deltas land in the shard log and merge by
//! `(group, structural index)` exactly like spans. Because every shard's
//! allocation sequence is a pure function of its input, the deltas are
//! byte-identical across `--jobs` values and across thread / process /
//! mock-remote backends.
//!
//! Two rules keep that true:
//!
//! * **The observer never meters itself.** Bookkeeping inside the shared
//!   [`Recorder`] (aggregate-map inserts, stage records, volatile counters)
//!   allocates on whichever thread happens to touch a name first — a
//!   schedule artifact, not workload behaviour. Those paths run under a
//!   [`pause`] guard, so their allocations are invisible to the meter.
//!   Per-shard [`ShardLog`] recording stays metered: its allocation
//!   sequence is structural.
//! * **Windows are relative.** Peak live is measured as the high-water mark
//!   of *net bytes allocated minus freed on this thread since the window
//!   opened*, never as an absolute heap position, so a thread's prior
//!   history cannot leak into a shard's numbers.
//!
//! OS-level peak RSS (`VmHWM` from `/proc/self/status`) is the opposite
//! kind of number — schedule- and substrate-dependent — and is exposed only
//! through [`peak_rss_kb`] for the volatile channel. It must never reach a
//! committed surface.
//!
//! [`Recorder`]: crate::Recorder
//! [`ShardLog`]: crate::ShardLog
//! [`ShardLog::alloc_open`]: crate::ShardLog::alloc_open
//! [`GlobalAlloc`]: std::alloc::GlobalAlloc

use crate::hist::{Histogram, BUCKETS};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    /// Monotone: allocations performed by this thread (unpaused).
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    /// Monotone: bytes requested by this thread (unpaused).
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    /// Net bytes (allocated - freed on this thread) since the last
    /// [`window_reset`]; may go negative when this thread frees memory
    /// another thread allocated.
    static WINDOW_NET: Cell<i64> = const { Cell::new(0) };
    /// High-water mark of [`WINDOW_NET`] since the last reset.
    static WINDOW_PEAK: Cell<i64> = const { Cell::new(0) };
    /// Per-bucket allocation-size counts (monotone, unpaused).
    static SIZE_BUCKETS: [Cell<u64>; BUCKETS] = const { [const { Cell::new(0) }; BUCKETS] };
    /// When true, the meter ignores this thread's allocations.
    static PAUSED: Cell<bool> = const { Cell::new(false) };
}

/// The counting wrapper: delegates every operation to [`System`] and, when
/// the thread's meter is running, updates the thread-local counters. The
/// accounting itself never allocates.
pub struct CountingAlloc;

#[allow(unsafe_code)] // the GlobalAlloc contract is inherently unsafe
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            meter_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            meter_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            meter_realloc(layout.size(), new_size);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        meter_dealloc(layout.size());
    }
}

/// The installed global allocator: every binary and test in the workspace
/// links `alexa-obs`, so parent processes and `--shard-worker` children
/// meter allocations identically — a precondition for thread-vs-process
/// byte parity of the committed counters.
#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc = CountingAlloc;

#[inline]
fn meter_alloc(size: usize) {
    if PAUSED.with(Cell::get) {
        return;
    }
    ALLOC_COUNT.with(|c| c.set(c.get() + 1));
    ALLOC_BYTES.with(|c| c.set(c.get() + size as u64));
    SIZE_BUCKETS.with(|b| {
        let cell = &b[Histogram::bucket_of(size as u64)];
        cell.set(cell.get() + 1);
    });
    WINDOW_NET.with(|n| {
        let net = n.get() + size as i64;
        n.set(net);
        WINDOW_PEAK.with(|p| {
            if net > p.get() {
                p.set(net);
            }
        });
    });
}

#[inline]
fn meter_realloc(old_size: usize, new_size: usize) {
    if PAUSED.with(Cell::get) {
        return;
    }
    ALLOC_COUNT.with(|c| c.set(c.get() + 1));
    ALLOC_BYTES.with(|c| c.set(c.get() + new_size as u64));
    SIZE_BUCKETS.with(|b| {
        let cell = &b[Histogram::bucket_of(new_size as u64)];
        cell.set(cell.get() + 1);
    });
    WINDOW_NET.with(|n| {
        let net = n.get() + new_size as i64 - old_size as i64;
        n.set(net);
        WINDOW_PEAK.with(|p| {
            if net > p.get() {
                p.set(net);
            }
        });
    });
}

#[inline]
fn meter_dealloc(size: usize) {
    if PAUSED.with(Cell::get) {
        return;
    }
    WINDOW_NET.with(|n| n.set(n.get() - size as i64));
}

/// A point-in-time reading of this thread's meter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Monotone allocation count at the time of the snapshot.
    pub count: u64,
    /// Monotone allocated-bytes total at the time of the snapshot.
    pub bytes: u64,
}

/// Read this thread's monotone counters (count, bytes).
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        count: ALLOC_COUNT.with(Cell::get),
        bytes: ALLOC_BYTES.with(Cell::get),
    }
}

/// Copy this thread's allocation-size histogram.
pub fn size_histogram() -> Histogram {
    let mut counts = [0u64; BUCKETS];
    SIZE_BUCKETS.with(|b| {
        for (dst, cell) in counts.iter_mut().zip(b.iter()) {
            *dst = cell.get();
        }
    });
    Histogram::from_counts(counts)
}

/// Zero this thread's windowed net/peak meters. Call when a shard's work
/// begins; pair with [`window_peak`] when it ends.
pub fn window_reset() {
    WINDOW_NET.with(|n| n.set(0));
    WINDOW_PEAK.with(|p| p.set(0));
}

/// The high-water mark of net live bytes since [`window_reset`], clamped to
/// zero (a window that only freed memory peaked at its starting point).
pub fn window_peak() -> u64 {
    WINDOW_PEAK.with(Cell::get).max(0) as u64
}

/// RAII guard that hides the current thread's allocations from the meter.
///
/// Held by the [`Recorder`](crate::Recorder)'s internal bookkeeping so that
/// schedule-dependent allocations (who first inserts an aggregate name, who
/// extends the shared stage vector) never perturb the deterministic
/// workload counters. Nests: the guard restores the previous state.
pub struct PauseGuard {
    was: bool,
}

/// Pause the meter on this thread until the guard drops.
pub fn pause() -> PauseGuard {
    let was = PAUSED.with(|p| p.replace(true));
    PauseGuard { was }
}

impl Drop for PauseGuard {
    fn drop(&mut self) {
        PAUSED.with(|p| p.set(self.was));
    }
}

/// This process's peak resident set size in kilobytes, from the `VmHWM`
/// line of `/proc/self/status`. Returns 0 when unavailable (non-Linux).
///
/// This is an OS-level, schedule-dependent number: it depends on worker
/// count, allocator behaviour, and what the process did before the call.
/// It belongs on the volatile channel only — never in a committed surface.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_counts_this_threads_allocations() {
        let before = snapshot();
        let v: Vec<u64> = (0..1000).collect();
        let after = snapshot();
        assert!(after.count > before.count);
        assert!(after.bytes >= before.bytes + 8 * 1000);
        drop(v);
        // Frees never rewind the monotone counters.
        let end = snapshot();
        assert!(end.count >= after.count);
        assert!(end.bytes >= after.bytes);
    }

    #[test]
    fn pause_guard_hides_allocations_and_nests() {
        let before = snapshot();
        {
            let _outer = pause();
            {
                let _inner = pause();
                let _hidden: Vec<u64> = (0..100).collect();
            }
            // Still paused after the inner guard drops.
            let _also_hidden: Vec<u64> = (0..100).collect();
        }
        let after = snapshot();
        assert_eq!(before, after, "paused allocations must be invisible");
        // Unpaused again after the outer guard drops.
        let _visible: Vec<u64> = (0..100).collect();
        assert!(snapshot().count > after.count);
    }

    #[test]
    fn window_peak_tracks_net_high_water_mark() {
        window_reset();
        let big: Vec<u8> = vec![7; 1 << 16];
        drop(big);
        let peak = window_peak();
        assert!(peak >= 1 << 16, "peak {peak} must cover the 64 KiB spike");
        // After the spike is freed, a fresh window starts back at zero.
        window_reset();
        assert_eq!(window_peak(), 0);
    }

    #[test]
    fn size_histogram_buckets_grow() {
        let before = size_histogram();
        let _boxes: Vec<Box<[u8; 512]>> = (0..10).map(|_| Box::new([0u8; 512])).collect();
        let after = size_histogram();
        assert!(after.total() > before.total());
    }

    #[test]
    fn identical_workloads_meter_identically() {
        // The determinism contract in miniature: the same allocation
        // sequence produces the same deltas, wherever the window starts.
        let work = || {
            let mut v: Vec<String> = Vec::new();
            for i in 0..64 {
                v.push(format!("item-{i}"));
            }
            v.len()
        };
        let a0 = snapshot();
        work();
        let a1 = snapshot();
        work();
        let a2 = snapshot();
        assert_eq!(a1.count - a0.count, a2.count - a1.count);
        assert_eq!(a1.bytes - a0.bytes, a2.bytes - a1.bytes);
    }

    #[test]
    fn peak_rss_reads_proc_status() {
        // On Linux this must be a real, nonzero reading.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0);
        }
    }
}
