//! Declarative experiment plans and campaign manifests.
//!
//! A **plan** is a JSON document declaring a variant matrix — seeds × fault
//! profiles × defense modes × worker counts, with repeats — that the
//! `repro campaign` runner executes into one run-ledger bundle per cell
//! under a campaign directory. This module owns the *schemas*: the plan
//! parser (strict, typed errors, offsets via [`Json::parse`] for syntax
//! failures), the deterministic cell enumeration and keying, the plan hash,
//! and the `campaign.json` manifest shape. Execution lives in `alexa-bench`;
//! cross-cell comparison in `alexa-obsdiff`.
//!
//! # Cell identity vs cell instance
//!
//! Worker count and repeat index are *instance* coordinates, not identity:
//! the engine guarantees byte-identical bundles for any `--jobs` value, and
//! a repeat of a deterministic run must reproduce the same bytes. A cell's
//! **id** (`s7-fflaky-dnone`) therefore names `(seed, fault, defense)` only,
//! and is what the bundle manifest records; the **key**
//! (`s7-fflaky-dnone-j4-r0`) adds `(jobs, repeat)` and names the cell's
//! directory under `cells/`. The campaign runner asserts that every
//! instance of one id produced byte-identical bundles — the executable form
//! of the determinism contract that CI shell loops used to check.

use crate::json::{Json, JsonParseError};
use std::fmt;

/// Version of the plan document schema. Bump on any change to the meaning
/// or shape of a plan field.
pub const PLAN_SCHEMA_VERSION: u64 = 1;

/// Version of the `campaign.json` manifest schema.
pub const CAMPAIGN_SCHEMA_VERSION: u64 = 1;

/// File name of the campaign manifest inside a campaign directory.
pub const CAMPAIGN_FILE: &str = "campaign.json";

/// Subdirectory of a campaign directory holding one bundle per cell key.
pub const CELLS_DIR: &str = "cells";

/// Subdirectory of a campaign directory holding derived analysis tables.
pub const TABLES_DIR: &str = "tables";

/// The fault presets a plan may name (mirrors `alexa-fault`'s catalog; the
/// fault crate sits above this one, so the names are pinned here and a test
/// on the bench side keeps the two in sync).
pub const FAULT_PRESETS: &[&str] = &["none", "flaky", "degraded", "hostile"];

/// The defense modes a plan may name (mirrors `alexa-audit`'s
/// `DefenseMode`; same layering note as [`FAULT_PRESETS`]).
pub const DEFENSE_MODES: &[&str] = &["none", "firewall", "text-only"];

/// The execution backends a plan may name (mirrors `alexa-exec`'s
/// `BackendChoice`; same layering note as [`FAULT_PRESETS`]).
pub const BACKENDS: &[&str] = &["thread", "process", "mock-remote"];

/// Problem scale of a plan's cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// The paper-scale configuration (`AuditConfig::paper`).
    #[default]
    Paper,
    /// The reduced test configuration (`AuditConfig::small`).
    Small,
}

impl Scale {
    /// The plan-document spelling of this scale.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Small => "small",
        }
    }
}

/// A parsed, validated experiment plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Campaign name — a filesystem-safe slug, used for the default
    /// campaign directory.
    pub name: String,
    /// Problem scale every cell runs at.
    pub scale: Scale,
    /// Master seeds, in plan order.
    pub seeds: Vec<u64>,
    /// Fault variants: preset names or `uniform:R` rates, in plan order.
    pub faults: Vec<String>,
    /// Defense modes, in plan order.
    pub defenses: Vec<String>,
    /// Worker counts, in plan order.
    pub jobs: Vec<usize>,
    /// Execution backends, in plan order (`thread`, `process`,
    /// `mock-remote`). Like jobs and repeats, the backend is an *instance*
    /// coordinate: every backend must reproduce the cell identity's bytes.
    pub backends: Vec<String>,
    /// How many times each `(seed, fault, defense, jobs, backend)` cell
    /// repeats.
    pub repeats: u32,
}

/// Why a plan document was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Not valid JSON; carries the byte offset and line of the failure.
    Syntax(JsonParseError),
    /// The document declares an unsupported plan schema version.
    SchemaMismatch {
        /// The version the document declared (0 when absent).
        found: u64,
    },
    /// A field is missing, mistyped, out of range, or unknown.
    Field {
        /// The dotted field name.
        field: String,
        /// What is wrong with it.
        problem: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Syntax(e) => write!(f, "plan is not valid JSON: {e} (offset {})", e.offset),
            PlanError::SchemaMismatch { found } => write!(
                f,
                "plan schema {found} unsupported (this tool reads schema {PLAN_SCHEMA_VERSION})"
            ),
            PlanError::Field { field, problem } => write!(f, "plan field {field:?}: {problem}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// One cell instance of a plan's variant matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellCoord {
    /// Master seed.
    pub seed: u64,
    /// Fault variant (`none`, `flaky`, ..., or `uniform:R`).
    pub fault: String,
    /// Defense mode (`none`, `firewall`, `text-only`).
    pub defense: String,
    /// Worker count the cell executes with.
    pub jobs: usize,
    /// Execution backend the cell executes with.
    pub backend: String,
    /// Repeat index, `0..plan.repeats`.
    pub repeat: u32,
}

impl CellCoord {
    /// The cell's jobs- and repeat-free identity, e.g. `s7-fflaky-dnone`.
    ///
    /// This is what the cell's bundle manifest records: every instance of
    /// one id must produce byte-identical bundles, so the id must not
    /// mention the instance coordinates.
    pub fn id(&self) -> String {
        format!(
            "s{}-f{}-d{}",
            self.seed,
            key_token(&self.fault),
            key_token(&self.defense)
        )
    }

    /// The cell's directory key under `cells/`, e.g. `s7-fflaky-dnone-j4-r0`.
    ///
    /// The default `thread` backend is keyed exactly as before the backend
    /// axis existed (resumability of old campaign directories); other
    /// backends append a `-b` token, e.g. `s7-fflaky-dnone-j4-r0-bprocess`.
    pub fn key(&self) -> String {
        let mut key = format!("{}-j{}-r{}", self.id(), self.jobs, self.repeat);
        if self.backend != "thread" {
            key.push_str("-b");
            key.push_str(&key_token(&self.backend));
        }
        key
    }
}

/// A plan value reduced to a filesystem- and key-safe token: lowercase
/// alphanumerics and dots survive, everything else is dropped
/// (`text-only` → `textonly`, `uniform:0.25` → `uniform0.25`).
fn key_token(value: &str) -> String {
    value
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '.')
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// The uniform fault rate of a `uniform:R` spec, if `spec` has that form
/// and `R` parses as a finite number in `[0, 1]`.
pub fn uniform_fault_rate(spec: &str) -> Option<f64> {
    let rate: f64 = spec.strip_prefix("uniform:")?.parse().ok()?;
    (rate.is_finite() && (0.0..=1.0).contains(&rate)).then_some(rate)
}

/// Whether `spec` is a valid plan fault variant.
pub fn is_valid_fault(spec: &str) -> bool {
    FAULT_PRESETS.contains(&spec) || uniform_fault_rate(spec).is_some()
}

impl Plan {
    /// Parse and fully validate a plan document.
    ///
    /// The parser is strict in the same way `repro`'s CLI is: unknown
    /// fields, duplicate variants, empty axes and out-of-range values are
    /// all hard errors, so a typo in a committed CI plan can never
    /// silently shrink a matrix.
    pub fn parse(src: &str) -> Result<Plan, PlanError> {
        let doc = Json::parse(src).map_err(PlanError::Syntax)?;
        let fields = doc.as_obj().ok_or_else(|| PlanError::Field {
            field: "(root)".into(),
            problem: "plan must be a JSON object".into(),
        })?;
        const KNOWN: &[&str] = &[
            "schema", "name", "scale", "seeds", "faults", "defenses", "jobs", "backends", "repeats",
        ];
        for (key, _) in fields {
            if !KNOWN.contains(&key.as_str()) {
                return Err(PlanError::Field {
                    field: key.clone(),
                    problem: format!("unknown field (known: {})", KNOWN.join(", ")),
                });
            }
        }
        match doc.get("schema").and_then(Json::as_u64) {
            Some(PLAN_SCHEMA_VERSION) => {}
            other => {
                return Err(PlanError::SchemaMismatch {
                    found: other.unwrap_or(0),
                })
            }
        }
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| field_err("name", "required string"))?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
        {
            return Err(field_err(
                "name",
                "must be a non-empty slug of [a-z0-9_-] characters",
            ));
        }
        let scale = match doc.get("scale") {
            None => Scale::Paper,
            Some(v) => match v.as_str() {
                Some("paper") => Scale::Paper,
                Some("small") => Scale::Small,
                _ => return Err(field_err("scale", "expected \"paper\" or \"small\"")),
            },
        };
        let seeds = required_axis(&doc, "seeds", |v| v.as_u64())?;
        let faults = optional_axis(&doc, "faults", vec!["none".to_string()], |v| {
            v.as_str().filter(|s| is_valid_fault(s)).map(str::to_string)
        })?;
        let defenses = optional_axis(&doc, "defenses", vec!["none".to_string()], |v| {
            v.as_str()
                .filter(|s| DEFENSE_MODES.contains(s))
                .map(str::to_string)
        })?;
        let jobs = optional_axis(&doc, "jobs", vec![1usize], |v| {
            v.as_u64()
                .filter(|n| (1..=512).contains(n))
                .map(|n| n as usize)
        })?;
        let backends = optional_axis(&doc, "backends", vec!["thread".to_string()], |v| {
            v.as_str()
                .filter(|s| BACKENDS.contains(s))
                .map(str::to_string)
        })?;
        let repeats = match doc.get("repeats") {
            None => 1,
            Some(v) => v
                .as_u64()
                .filter(|n| (1..=64).contains(n))
                .ok_or_else(|| field_err("repeats", "expected an integer in [1, 64]"))?
                as u32,
        };
        Ok(Plan {
            name: name.to_string(),
            scale,
            seeds,
            faults,
            defenses,
            jobs,
            backends,
            repeats,
        })
    }

    /// The canonical JSON form of this plan: every field explicit, plan
    /// order preserved. Parsing the canonical form yields an equal plan,
    /// so the [`Plan::hash`] is stable under reformatting of the source
    /// document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Int(PLAN_SCHEMA_VERSION)),
            ("name".into(), Json::Str(self.name.clone())),
            ("scale".into(), Json::Str(self.scale.label().into())),
            (
                "seeds".into(),
                Json::Arr(self.seeds.iter().map(|s| Json::Int(*s)).collect()),
            ),
            (
                "faults".into(),
                Json::Arr(self.faults.iter().map(|f| Json::Str(f.clone())).collect()),
            ),
            (
                "defenses".into(),
                Json::Arr(self.defenses.iter().map(|d| Json::Str(d.clone())).collect()),
            ),
            (
                "jobs".into(),
                Json::Arr(self.jobs.iter().map(|j| Json::Int(*j as u64)).collect()),
            ),
            (
                "backends".into(),
                Json::Arr(self.backends.iter().map(|b| Json::Str(b.clone())).collect()),
            ),
            ("repeats".into(), Json::Int(self.repeats as u64)),
        ])
    }

    /// FNV-1a hash of the canonical plan rendering, as fixed-width hex.
    /// Two plans with equal matrices hash equal regardless of source
    /// formatting; any semantic change invalidates every cell.
    pub fn hash(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.to_json().render().bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// Every cell instance of the matrix, in deterministic plan order:
    /// seeds × faults × defenses × jobs × backends × repeats, outermost
    /// first.
    pub fn cells(&self) -> Vec<CellCoord> {
        let mut out = Vec::new();
        for &seed in &self.seeds {
            for fault in &self.faults {
                for defense in &self.defenses {
                    for &jobs in &self.jobs {
                        for backend in &self.backends {
                            for repeat in 0..self.repeats {
                                out.push(CellCoord {
                                    seed,
                                    fault: fault.clone(),
                                    defense: defense.clone(),
                                    jobs,
                                    backend: backend.clone(),
                                    repeat,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

fn field_err(field: &str, problem: &str) -> PlanError {
    PlanError::Field {
        field: field.to_string(),
        problem: problem.to_string(),
    }
}

/// A required non-empty duplicate-free array field.
fn required_axis<T: PartialEq>(
    doc: &Json,
    field: &'static str,
    convert: impl Fn(&Json) -> Option<T>,
) -> Result<Vec<T>, PlanError> {
    let items = doc
        .get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| field_err(field, "required array"))?;
    axis_items(field, items, convert)
}

/// An optional array field with a default, duplicate-free when present.
fn optional_axis<T: PartialEq>(
    doc: &Json,
    field: &'static str,
    default: Vec<T>,
    convert: impl Fn(&Json) -> Option<T>,
) -> Result<Vec<T>, PlanError> {
    match doc.get(field) {
        None => Ok(default),
        Some(v) => {
            let items = v
                .as_arr()
                .ok_or_else(|| field_err(field, "expected an array"))?;
            axis_items(field, items, convert)
        }
    }
}

fn axis_items<T: PartialEq>(
    field: &'static str,
    items: &[Json],
    convert: impl Fn(&Json) -> Option<T>,
) -> Result<Vec<T>, PlanError> {
    if items.is_empty() {
        return Err(field_err(field, "must not be empty"));
    }
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let value = convert(item).ok_or_else(|| PlanError::Field {
            field: format!("{field}[{i}]"),
            problem: format!("invalid value {}", item.render()),
        })?;
        if out.contains(&value) {
            return Err(PlanError::Field {
                field: format!("{field}[{i}]"),
                problem: "duplicate value".to_string(),
            });
        }
        out.push(value);
    }
    Ok(out)
}

/// One completed cell instance as recorded in `campaign.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// The instance coordinates.
    pub coord: CellCoord,
    /// `Observations::digest()` of the cell's run, fixed-width hex.
    pub digest: String,
    /// Whether the cell's run was degraded (fault losses survived retry).
    pub degraded: bool,
}

/// The deterministic `campaign.json` manifest document.
///
/// The manifest is a pure function of the plan and the cell results — it
/// records no execution status, timing, or host facts — so a resumed
/// campaign and a fresh one finish with byte-identical manifests.
pub fn campaign_manifest(plan: &Plan, cells: &[CellRecord]) -> Json {
    let rows = cells
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("key".into(), Json::Str(c.coord.key())),
                ("id".into(), Json::Str(c.coord.id())),
                ("seed".into(), Json::Int(c.coord.seed)),
                ("fault".into(), Json::Str(c.coord.fault.clone())),
                ("defense".into(), Json::Str(c.coord.defense.clone())),
                ("jobs".into(), Json::Int(c.coord.jobs as u64)),
                ("backend".into(), Json::Str(c.coord.backend.clone())),
                ("repeat".into(), Json::Int(c.coord.repeat as u64)),
                ("digest".into(), Json::Str(c.digest.clone())),
                ("degraded".into(), Json::Bool(c.degraded)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Int(CAMPAIGN_SCHEMA_VERSION)),
        ("name".into(), Json::Str(plan.name.clone())),
        ("plan_hash".into(), Json::Str(plan.hash())),
        ("plan".into(), plan.to_json()),
        ("cells".into(), Json::Arr(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = r#"{
        "schema": 1,
        "name": "smoke",
        "scale": "small",
        "seeds": [7, 1234],
        "faults": ["none", "flaky"],
        "jobs": [1, 4]
    }"#;

    #[test]
    fn parses_a_plan_with_defaults() {
        let plan = Plan::parse(SMOKE).expect("valid plan");
        assert_eq!(plan.name, "smoke");
        assert_eq!(plan.scale, Scale::Small);
        assert_eq!(plan.seeds, vec![7, 1234]);
        assert_eq!(plan.faults, vec!["none", "flaky"]);
        assert_eq!(plan.defenses, vec!["none"]);
        assert_eq!(plan.jobs, vec![1, 4]);
        assert_eq!(plan.backends, vec!["thread"]);
        assert_eq!(plan.repeats, 1);
    }

    #[test]
    fn cell_enumeration_is_deterministic_plan_order() {
        let plan = Plan::parse(SMOKE).expect("valid plan");
        let keys: Vec<String> = plan.cells().iter().map(CellCoord::key).collect();
        assert_eq!(
            keys,
            vec![
                "s7-fnone-dnone-j1-r0",
                "s7-fnone-dnone-j4-r0",
                "s7-fflaky-dnone-j1-r0",
                "s7-fflaky-dnone-j4-r0",
                "s1234-fnone-dnone-j1-r0",
                "s1234-fnone-dnone-j4-r0",
                "s1234-fflaky-dnone-j1-r0",
                "s1234-fflaky-dnone-j4-r0",
            ]
        );
        // Identity strips the instance coordinates.
        assert_eq!(plan.cells()[0].id(), "s7-fnone-dnone");
        assert_eq!(plan.cells()[1].id(), "s7-fnone-dnone");
    }

    #[test]
    fn key_tokens_are_filesystem_safe() {
        let cell = CellCoord {
            seed: 3,
            fault: "uniform:0.25".into(),
            defense: "text-only".into(),
            jobs: 2,
            backend: "thread".into(),
            repeat: 1,
        };
        assert_eq!(cell.key(), "s3-funiform0.25-dtextonly-j2-r1");
    }

    #[test]
    fn backend_axis_keys_and_enumerates() {
        // Thread cells keep the pre-backend key shape; other backends get
        // an explicit suffix. Identity never mentions the backend: all
        // three must reproduce the same bytes.
        let src = r#"{
            "schema": 1, "name": "b", "seeds": [7],
            "backends": ["thread", "process", "mock-remote"]
        }"#;
        let plan = Plan::parse(src).expect("valid plan");
        assert_eq!(plan.backends, vec!["thread", "process", "mock-remote"]);
        let keys: Vec<String> = plan.cells().iter().map(CellCoord::key).collect();
        assert_eq!(
            keys,
            vec![
                "s7-fnone-dnone-j1-r0",
                "s7-fnone-dnone-j1-r0-bprocess",
                "s7-fnone-dnone-j1-r0-bmockremote",
            ]
        );
        for cell in plan.cells() {
            assert_eq!(cell.id(), "s7-fnone-dnone");
        }
    }

    #[test]
    fn hash_ignores_formatting_but_not_matrix_changes() {
        let a = Plan::parse(SMOKE).expect("valid plan");
        let b = Plan::parse(&SMOKE.replace("\n        ", " ")).expect("valid plan");
        assert_eq!(a.hash(), b.hash());
        let c = Plan::parse(&SMOKE.replace("[7, 1234]", "[7]")).expect("valid plan");
        assert_ne!(a.hash(), c.hash());
        // Canonical form round-trips through the parser.
        let canon = Plan::parse(&a.to_json().render()).expect("canonical parses");
        assert_eq!(canon, a);
    }

    #[test]
    fn syntax_errors_carry_offsets() {
        let err = Plan::parse("{\"schema\": 1,\n  oops}").unwrap_err();
        match err {
            PlanError::Syntax(e) => {
                assert_eq!(e.line, 2);
                assert!(e.offset > 0);
            }
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn semantic_errors_are_typed_per_field() {
        let cases: &[(&str, &str)] = &[
            ("{\"name\": \"x\", \"seeds\": [1]}", "schema"),
            ("{\"schema\": 1, \"seeds\": [1]}", "name"),
            ("{\"schema\": 1, \"name\": \"UP\", \"seeds\": [1]}", "name"),
            ("{\"schema\": 1, \"name\": \"x\"}", "seeds"),
            ("{\"schema\": 1, \"name\": \"x\", \"seeds\": []}", "seeds"),
            (
                "{\"schema\": 1, \"name\": \"x\", \"seeds\": [1, 1]}",
                "seeds[1]",
            ),
            (
                "{\"schema\": 1, \"name\": \"x\", \"seeds\": [1], \"faults\": [\"chaotic\"]}",
                "faults[0]",
            ),
            (
                "{\"schema\": 1, \"name\": \"x\", \"seeds\": [1], \"faults\": [\"uniform:1.5\"]}",
                "faults[0]",
            ),
            (
                "{\"schema\": 1, \"name\": \"x\", \"seeds\": [1], \"defenses\": [\"tinfoil\"]}",
                "defenses[0]",
            ),
            (
                "{\"schema\": 1, \"name\": \"x\", \"seeds\": [1], \"jobs\": [0]}",
                "jobs[0]",
            ),
            (
                "{\"schema\": 1, \"name\": \"x\", \"seeds\": [1], \"backends\": [\"quantum\"]}",
                "backends[0]",
            ),
            (
                "{\"schema\": 1, \"name\": \"x\", \"seeds\": [1], \"backends\": []}",
                "backends",
            ),
            (
                "{\"schema\": 1, \"name\": \"x\", \"seeds\": [1], \"repeats\": 0}",
                "repeats",
            ),
            (
                "{\"schema\": 1, \"name\": \"x\", \"seeds\": [1], \"sedes\": [2]}",
                "sedes",
            ),
        ];
        for (src, want_field) in cases {
            match Plan::parse(src).expect_err(src) {
                PlanError::Field { field, .. } => assert_eq!(&field, want_field, "for {src}"),
                PlanError::SchemaMismatch { .. } => assert_eq!(*want_field, "schema", "for {src}"),
                other => panic!("unexpected error {other:?} for {src}"),
            }
        }
    }

    #[test]
    fn uniform_fault_specs_validate_rates() {
        assert_eq!(uniform_fault_rate("uniform:0.25"), Some(0.25));
        assert_eq!(uniform_fault_rate("uniform:0"), Some(0.0));
        assert_eq!(uniform_fault_rate("uniform:1"), Some(1.0));
        assert_eq!(uniform_fault_rate("uniform:1.5"), None);
        assert_eq!(uniform_fault_rate("uniform:nan"), None);
        assert_eq!(uniform_fault_rate("flaky"), None);
        assert!(is_valid_fault("hostile"));
        assert!(!is_valid_fault("chaotic"));
    }

    #[test]
    fn campaign_manifest_is_schema_versioned_and_status_free() {
        let plan = Plan::parse(SMOKE).expect("valid plan");
        let cells: Vec<CellRecord> = plan
            .cells()
            .into_iter()
            .map(|coord| CellRecord {
                coord,
                digest: "00000000deadbeef".into(),
                degraded: false,
            })
            .collect();
        let doc = campaign_manifest(&plan, &cells);
        assert_eq!(
            doc.get("schema").and_then(Json::as_u64),
            Some(CAMPAIGN_SCHEMA_VERSION)
        );
        assert_eq!(
            doc.get("plan_hash").and_then(Json::as_str),
            Some(plan.hash()).as_deref()
        );
        let rows = doc.get("cells").and_then(Json::as_arr).expect("cells");
        assert_eq!(rows.len(), 8);
        assert_eq!(
            rows[0].get("key").and_then(Json::as_str),
            Some("s7-fnone-dnone-j1-r0")
        );
        // No execution status anywhere: the manifest must be identical for
        // a fresh run and a fully-skipped resume.
        let text = doc.render();
        assert!(!text.contains("skipped") && !text.contains("executed"));
    }
}
