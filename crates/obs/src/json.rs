//! A minimal JSON value with a canonical renderer.
//!
//! The workspace builds fully offline (no serde); this is just enough JSON
//! to export metrics. Object keys keep insertion order, so output is stable.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (all metrics counters are `u64`).
    Int(u64),
    /// A finite float, rendered with three decimals (milliseconds).
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Render to a compact JSON string (single spaces after `:` and `,`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x:.3}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(key, out);
                    out.push_str(": ");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(42).render(), "42");
        assert_eq!(Json::Float(1.5).render(), "1.500");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Str("hi".into()).render(), "\"hi\"");
    }

    #[test]
    fn renders_composites() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("b".into(), Json::Null),
        ]);
        assert_eq!(v.render(), "{\"a\": [1, 2], \"b\": null}");
    }

    #[test]
    fn escapes_strings() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
