//! A minimal JSON value with a canonical renderer and a strict parser.
//!
//! The workspace builds fully offline (no serde); this is just enough JSON
//! to export metrics and to load them back (`obs-diff` reads run-ledger
//! bundles and bench files through [`Json::parse`]). Object keys keep
//! insertion order, so output is stable and render→parse→render is the
//! identity on this module's own output.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (all metrics counters are `u64`).
    Int(u64),
    /// A finite float, rendered with three decimals (milliseconds).
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Render to a compact JSON string (single spaces after `:` and `,`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x:.3}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(key, out);
                    out.push_str(": ");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed, nothing
    /// else after the value).
    pub fn parse(src: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer (`Int`, or an integral `Float`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Float(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a float (`Int` or `Float`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// The value as an object's `(key, value)` slice, in document order.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields.as_slice()),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset and 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// 1-based line number of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        let line = 1 + self
            .bytes
            .iter()
            .take(self.pos)
            .filter(|b| **b == b'\n')
            .count();
        JsonParseError {
            offset: self.pos,
            line,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat("null") {
                    Ok(Json::Null)
                } else {
                    Err(self.err("invalid literal (expected null)"))
                }
            }
            Some(b't') => {
                if self.eat("true") {
                    Ok(Json::Bool(true))
                } else {
                    Err(self.err("invalid literal (expected true)"))
                }
            }
            Some(b'f') => {
                if self.eat("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(self.err("invalid literal (expected false)"))
                }
            }
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let ch = match cp {
                                0xD800..=0xDBFF => {
                                    // A high surrogate must pair with \uDC00..DFFF.
                                    if !self.eat("\\u") {
                                        return Err(self.err("lone high surrogate"));
                                    }
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                }
                                0xDC00..=0xDFFF => None,
                                _ => char::from_u32(cp),
                            };
                            match ch {
                                Some(ch) => out.push(ch),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                _ if c < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Re-read the full UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    match self
                        .bytes
                        .get(start..end)
                        .and_then(|b| std::str::from_utf8(b).ok())
                    {
                        Some(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        None => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated unicode escape"));
            };
            let d = match c {
                b'0'..=b'9' => (c - b'0') as u32,
                b'a'..=b'f' => (c - b'a') as u32 + 10,
                b'A'..=b'F' => (c - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in unicode escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|b| std::str::from_utf8(b).ok())
            .unwrap_or_default();
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !negative && !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Int(n));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Float(x)),
            _ => Err(self.err("invalid number")),
        }
    }
}

/// Length of the UTF-8 sequence introduced by its first byte.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(42).render(), "42");
        assert_eq!(Json::Float(1.5).render(), "1.500");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Str("hi".into()).render(), "\"hi\"");
    }

    #[test]
    fn renders_composites() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("b".into(), Json::Null),
        ]);
        assert_eq!(v.render(), "{\"a\": [1, 2], \"b\": null}");
    }

    #[test]
    fn escapes_strings() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-3").unwrap(), Json::Float(-3.0));
        assert_eq!(Json::parse("1.500").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::Float(2000.0));
        assert_eq!(Json::parse("\"hi\\n\"").unwrap(), Json::Str("hi\n".into()));
        assert_eq!(
            Json::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("é😀".into())
        );
    }

    #[test]
    fn parse_render_round_trips() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Int(1), Json::Float(2.5)])),
            ("b".into(), Json::Str("x\"y\\z".into())),
            ("c".into(), Json::Obj(vec![("n".into(), Json::Null)])),
            ("d".into(), Json::Bool(false)),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.render(), text);
        assert_eq!(back, doc);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "1..2",
            "\"x",
            "tru",
            "[1] extra",
            "{'a': 1}",
            "\"\\q\"",
            "\"\\ud800x\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = Json::parse("{\"a\": 1,\n  oops}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn parse_errors_pinpoint_offset_and_line() {
        // Truncated input: the failure sits at end-of-input, on the line
        // the document broke off.
        let err = Json::parse("{\n  \"a\": [1,\n    2").unwrap_err();
        assert_eq!((err.offset, err.line), (18, 3));
        assert!(err.message.contains("',' or ']'"), "{}", err.message);

        // Mis-nested close: the stray '}' inside an array names its own
        // byte, not the start of the container.
        let err = Json::parse("[1, 2}").unwrap_err();
        assert_eq!((err.offset, err.line), (5, 1));
        assert!(err.message.contains("',' or ']'"), "{}", err.message);

        // Bad string escape past a newline: offset lands just after the
        // offending escape character and the line count follows it.
        let err = Json::parse("[\"ok\",\n\"a\\qb\"]").unwrap_err();
        assert_eq!((err.offset, err.line), (11, 2));
        assert!(err.message.contains("escape"), "{}", err.message);

        // A string that never closes reports end-of-input.
        let err = Json::parse("\"abc").unwrap_err();
        assert_eq!((err.offset, err.line), (4, 1));
        assert!(err.message.contains("unterminated"), "{}", err.message);

        // Display couples the line number with the cause for CI logs.
        let err = Json::parse("[\n\n  nope\n]").unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.to_string(), format!("line 3: {}", err.message));
    }

    #[test]
    fn accessors_navigate_values() {
        let doc =
            Json::parse("{\"n\": 7, \"s\": \"x\", \"a\": [1], \"f\": 2.0, \"b\": true}").unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("f").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("f").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(doc.as_obj().map(<[(String, Json)]>::len), Some(5));
        assert!(doc.get("missing").is_none());
        assert!(Json::Int(1).get("x").is_none());
    }
}
