//! `alexa-obs` — structured observability for the audit pipeline.
//!
//! The reproduction's core invariant is that a fixed seed produces a
//! byte-identical [`Observations`] record for any worker count. That rules
//! out any tracing design where the *act of observing* can perturb the run
//! (global sequence numbers feeding RNGs, interleaved logs merged in arrival
//! order, ...). This crate provides the observability primitives that stay
//! on the right side of the line:
//!
//! * [`ShardLog`] — a single-threaded event log owned by one structural unit
//!   of work (a persona shard, an AVS category shard, an artifact render).
//!   Spans carry monotonic timing; counters are plain named `u64`s. A shard
//!   log never takes a lock while the shard runs.
//! * [`Recorder`] — the thread-safe collector. Shard logs are submitted
//!   under their `(group, structural index)` key and merged in **key order**,
//!   never in completion order, so the report's *structure* (groups, labels,
//!   span names, counter values) is identical for `jobs = 1` and `jobs = N`;
//!   only the wall-clock numbers differ. Top-level pipeline stages are timed
//!   with [`Recorder::stage`], and leaf libraries (stats, crawler) feed
//!   name-keyed [`Aggregate`]s whose totals are order-independent sums.
//! * [`Report`] — an immutable snapshot with a human-readable span tree
//!   ([`Report::render_tree`], the `repro --trace` output) and a JSON export
//!   ([`Report::to_json`], the `repro --metrics-out` payload) built on the
//!   dependency-free [`Json`] value type (which also parses:
//!   [`Json::parse`]).
//! * **Run-ledger bundles** ([`bundle`]) — `repro --run-dir` writes a
//!   four-file directory (manifest / metrics / trace / folded profile) whose
//!   every byte is deterministic: durations are virtual **work units**
//!   ([`ShardLog::work`]), histograms use fixed log2 buckets ([`Histogram`])
//!   and percentiles are nearest-rank integers ([`Summary`]). Bundles from
//!   different worker counts are byte-identical and diffable with the
//!   `obs-diff` tool.
//!
//! **Determinism contract.** Recording never reads or advances any RNG,
//! never influences control flow of the instrumented code, and the disabled
//! recorder ([`Recorder::disabled`], the default for plain
//! `AuditRun::execute`) is a no-op. The integration test
//! `crates/audit/tests/observability.rs` pins the contract by asserting the
//! observations digest is identical with tracing enabled and disabled.
//!
//! `Observations`: the observable bundle in `alexa-audit`.

// `deny`, not `forbid`: the allocation meter's `GlobalAlloc` impl in
// `alloc` is the single sanctioned `#[allow(unsafe_code)]` escape.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod bundle;
pub mod campaign;
mod hist;
mod json;
pub mod names;
mod recorder;
mod report;
mod shard;

pub use alloc::{peak_rss_kb, AllocSnapshot};
pub use hist::{percentile, Histogram, Summary};
pub use json::{Json, JsonParseError};
pub use recorder::{agg_count, agg_time, global, install_global, Recorder};
pub use report::{Aggregate, Report, ShardReport, StageRec};
pub use shard::{ShardLog, SpanRec};
