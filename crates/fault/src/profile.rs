//! Fault channels and named fault profiles.

use alexa_obs::Json;
use std::fmt;
use std::str::FromStr;

/// The failure modes the pipeline can inject, one per lossy subsystem
/// touchpoint. Each maps to a real-world failure the paper (or the related
/// audits it cites) had to survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultChannel {
    /// Skill enablement times out (`alexa-platform`).
    InstallFailure,
    /// Voice interaction gets no response from the service (`alexa-platform`).
    InteractionFailure,
    /// A tap loses a packet on capture (`alexa-net`).
    PacketDrop,
    /// A captured flow is recorded truncated (`alexa-net`).
    FlowTruncation,
    /// A crawled page fails to finish loading (`alexa-adtech`).
    CrawlTimeout,
    /// A bid response is lost before the auction record is written
    /// (`alexa-adtech`).
    BidLoss,
    /// A privacy-policy page cannot be downloaded (`alexa-policy`).
    PolicyDownload,
    /// A remote backend rejects a shard submission (`alexa-exec`).
    WorkerSubmit,
    /// A remote backend poll times out before answering (`alexa-exec`).
    WorkerPoll,
    /// A finished shard's result is lost in transit (`alexa-exec`).
    WorkerResult,
}

impl FaultChannel {
    /// Every channel, in a fixed order (also the rate-table order).
    pub const ALL: [FaultChannel; 10] = [
        FaultChannel::InstallFailure,
        FaultChannel::InteractionFailure,
        FaultChannel::PacketDrop,
        FaultChannel::FlowTruncation,
        FaultChannel::CrawlTimeout,
        FaultChannel::BidLoss,
        FaultChannel::PolicyDownload,
        FaultChannel::WorkerSubmit,
        FaultChannel::WorkerPoll,
        FaultChannel::WorkerResult,
    ];

    /// Stable label used in counters, metrics JSON and report sections.
    pub fn label(&self) -> &'static str {
        match self {
            FaultChannel::InstallFailure => "install",
            FaultChannel::InteractionFailure => "interaction",
            FaultChannel::PacketDrop => "packet_drop",
            FaultChannel::FlowTruncation => "flow_truncation",
            FaultChannel::CrawlTimeout => "crawl_timeout",
            FaultChannel::BidLoss => "bid_loss",
            FaultChannel::PolicyDownload => "policy_download",
            FaultChannel::WorkerSubmit => "worker_submit",
            FaultChannel::WorkerPoll => "worker_poll",
            FaultChannel::WorkerResult => "worker_result",
        }
    }

    /// The channel with this stable label, if any — the inverse of
    /// [`FaultChannel::label`], used when decoding ledgers off the wire.
    pub fn from_label(label: &str) -> Option<FaultChannel> {
        FaultChannel::ALL
            .iter()
            .copied()
            .find(|c| c.label() == label)
    }

    pub(crate) fn index(&self) -> usize {
        FaultChannel::ALL
            .iter()
            .position(|c| c == self)
            .unwrap_or(0)
    }
}

/// The channel labels in [`FaultChannel::ALL`] order. This is the
/// declaration `alexa-analyzer` extracts to validate `fault.*`
/// observability names (lint AO02); a test pins it to [`FaultChannel::label`]
/// so the two can never diverge.
pub const CHANNEL_LABELS: &[&str] = &[
    "install",
    "interaction",
    "packet_drop",
    "flow_truncation",
    "crawl_timeout",
    "bid_loss",
    "policy_download",
    "worker_submit",
    "worker_poll",
    "worker_result",
];

/// A named set of per-channel fault rates plus the per-shard retry budget
/// that goes with it.
///
/// Presets trace the paper's field conditions: `flaky` is the everyday
/// loss the campaign actually saw (a few failed installs, 4 dead policy
/// pages), `degraded` models a bad capture day, and `hostile` is the
/// stress tier where circuit breakers are expected to open.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    name: String,
    rates: [f64; 10],
    retry_budget: u32,
}

/// Error from parsing an unknown profile name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileParseError(pub String);

impl fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown fault profile '{}' (expected none|flaky|degraded|hostile)",
            self.0
        )
    }
}

impl std::error::Error for ProfileParseError {}

impl Default for FaultProfile {
    fn default() -> FaultProfile {
        FaultProfile::none()
    }
}

impl FaultProfile {
    /// No faults at all — the pipeline behaves exactly as without this crate.
    pub fn none() -> FaultProfile {
        FaultProfile {
            name: "none".into(),
            rates: [0.0; 10],
            retry_budget: 0,
        }
    }

    /// Everyday transient loss; retries recover almost everything.
    pub fn flaky() -> FaultProfile {
        FaultProfile {
            name: "flaky".into(),
            // install, interaction, drop, truncation, crawl, bid, policy,
            // worker submit/poll/result
            rates: [0.05, 0.03, 0.01, 0.01, 0.05, 0.02, 0.05, 0.02, 0.03, 0.02],
            retry_budget: 96,
        }
    }

    /// A bad capture day: visible losses survive the retry budget.
    pub fn degraded() -> FaultProfile {
        FaultProfile {
            name: "degraded".into(),
            rates: [0.15, 0.10, 0.05, 0.05, 0.15, 0.10, 0.15, 0.08, 0.10, 0.08],
            retry_budget: 48,
        }
    }

    /// Stress tier: budgets exhaust, circuit breakers open, shards degrade.
    pub fn hostile() -> FaultProfile {
        FaultProfile {
            name: "hostile".into(),
            rates: [0.40, 0.35, 0.25, 0.20, 0.45, 0.35, 0.50, 0.25, 0.30, 0.25],
            retry_budget: 16,
        }
    }

    /// Every channel at the same rate — the `--fault-rate` override. The
    /// rate is clamped to `[0, 1]`; `uniform(1.0)` faults everything.
    pub fn uniform(rate: f64) -> FaultProfile {
        let r = rate.clamp(0.0, 1.0);
        FaultProfile {
            name: format!("uniform({r})"),
            rates: [r; 10],
            retry_budget: 32,
        }
    }

    /// The profile's name (`none`, `flaky`, …, or `uniform(r)`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The injection rate for one channel, in `[0, 1]`.
    pub fn rate(&self, channel: FaultChannel) -> f64 {
        self.rates[channel.index()]
    }

    /// How many retries one shard may spend before its breaker opens.
    pub fn retry_budget(&self) -> u32 {
        self.retry_budget
    }

    /// Whether any channel can fire at all.
    pub fn is_active(&self) -> bool {
        self.rates.iter().any(|&r| r > 0.0)
    }

    /// Encode the profile for the shard wire format (DESIGN.md §15).
    ///
    /// Rates travel as IEEE-754 bit-hex strings, not JSON floats: the
    /// in-tree [`Json`] renderer prints floats with `{:.3}`, which would be
    /// lossy, and a process-backend worker must rebuild a plane whose
    /// decisions are bit-identical to the parent's.
    pub fn to_wire_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            (
                "rates".into(),
                Json::Arr(
                    self.rates
                        .iter()
                        .map(|r| Json::Str(format!("{:016x}", r.to_bits())))
                        .collect(),
                ),
            ),
            ("retry_budget".into(), Json::Int(self.retry_budget as u64)),
        ])
    }

    /// Decode a profile from the shard wire format; `None` on any shape or
    /// encoding mismatch (the caller treats that as a malformed shard).
    pub fn from_wire_json(j: &Json) -> Option<FaultProfile> {
        let name = j.get("name")?.as_str()?.to_string();
        let rate_values = match j.get("rates")? {
            Json::Arr(items) => items,
            _ => return None,
        };
        if rate_values.len() != FaultChannel::ALL.len() {
            return None;
        }
        let mut rates = [0.0; 10];
        for (slot, v) in rates.iter_mut().zip(rate_values) {
            *slot = f64::from_bits(u64::from_str_radix(v.as_str()?, 16).ok()?);
        }
        let retry_budget = j.get("retry_budget")?.as_u64()?;
        Some(FaultProfile {
            name,
            rates,
            retry_budget: u32::try_from(retry_budget).ok()?,
        })
    }
}

impl FromStr for FaultProfile {
    type Err = ProfileParseError;

    fn from_str(s: &str) -> Result<FaultProfile, ProfileParseError> {
        match s {
            "none" => Ok(FaultProfile::none()),
            "flaky" => Ok(FaultProfile::flaky()),
            "degraded" => Ok(FaultProfile::degraded()),
            "hostile" => Ok(FaultProfile::hostile()),
            other => Err(ProfileParseError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_order_by_severity() {
        let tiers = [
            FaultProfile::none(),
            FaultProfile::flaky(),
            FaultProfile::degraded(),
            FaultProfile::hostile(),
        ];
        for pair in tiers.windows(2) {
            for ch in FaultChannel::ALL {
                assert!(
                    pair[0].rate(ch) < pair[1].rate(ch),
                    "{} !< {} on {}",
                    pair[0].name(),
                    pair[1].name(),
                    ch.label()
                );
            }
        }
    }

    #[test]
    fn none_is_inactive_and_default() {
        assert!(!FaultProfile::none().is_active());
        assert_eq!(FaultProfile::default(), FaultProfile::none());
        assert!(FaultProfile::flaky().is_active());
    }

    #[test]
    fn uniform_clamps_and_names() {
        let p = FaultProfile::uniform(1.7);
        assert_eq!(p.rate(FaultChannel::BidLoss), 1.0);
        assert_eq!(p.name(), "uniform(1)");
        assert_eq!(
            FaultProfile::uniform(-3.0).rate(FaultChannel::PacketDrop),
            0.0
        );
    }

    #[test]
    fn parse_round_trips_presets() {
        for name in ["none", "flaky", "degraded", "hostile"] {
            let p: FaultProfile = name.parse().unwrap();
            assert_eq!(p.name(), name);
        }
        assert!("chaotic".parse::<FaultProfile>().is_err());
    }

    #[test]
    fn channel_labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            FaultChannel::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), FaultChannel::ALL.len());
    }

    #[test]
    fn channel_labels_const_matches_label_method() {
        let from_method: Vec<&str> = FaultChannel::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(CHANNEL_LABELS, from_method.as_slice());
    }

    #[test]
    fn from_label_inverts_label() {
        for ch in FaultChannel::ALL {
            assert_eq!(FaultChannel::from_label(ch.label()), Some(ch));
        }
        assert_eq!(FaultChannel::from_label("gremlins"), None);
    }

    #[test]
    fn wire_codec_round_trips_bit_exactly() {
        for profile in [
            FaultProfile::none(),
            FaultProfile::flaky(),
            FaultProfile::degraded(),
            FaultProfile::hostile(),
            FaultProfile::uniform(0.123456789),
        ] {
            let wire = profile.to_wire_json().render();
            let parsed = Json::parse(&wire).expect("wire json parses");
            let back = FaultProfile::from_wire_json(&parsed).expect("wire json decodes");
            assert_eq!(back, profile, "{} did not round-trip", profile.name());
            for ch in FaultChannel::ALL {
                assert_eq!(back.rate(ch).to_bits(), profile.rate(ch).to_bits());
            }
        }
    }

    #[test]
    fn wire_codec_rejects_malformed_payloads() {
        let good = FaultProfile::flaky().to_wire_json().render();
        let parsed = Json::parse(&good).unwrap();
        assert!(FaultProfile::from_wire_json(&parsed).is_some());
        for bad in [
            r#"{"name": "x", "retry_budget": 1}"#,
            r#"{"name": "x", "rates": ["zz"], "retry_budget": 1}"#,
            r#"{"name": "x", "rates": [], "retry_budget": 1}"#,
        ] {
            let j = Json::parse(bad).unwrap();
            assert!(FaultProfile::from_wire_json(&j).is_none(), "{bad}");
        }
    }
}
