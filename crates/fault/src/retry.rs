//! Seeded-backoff retry engine with per-shard budgets.

use crate::unit;

/// Retry schedule for one class of operation.
///
/// Delays are **virtual**: they are computed, bounded and accounted for in
/// [`RetryOutcome::backoff_ms`] but never slept, so fault-heavy runs cost no
/// wall clock and timing never leaks into observables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total tries per operation, including the first (min 1).
    pub max_attempts: u32,
    /// Delay before the first retry, in virtual milliseconds.
    pub base_delay_ms: u64,
    /// Ceiling on any single delay.
    pub max_delay_ms: u64,
    /// Jitter as a fraction of the exponential delay, clamped to `[0, 1]`.
    /// Keeping it ≤ 1 is what makes the schedule monotone: the next
    /// exponential step always clears the previous step plus its jitter.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::standard()
    }
}

impl RetryPolicy {
    /// The pipeline's standard schedule: 4 tries, 50 ms base, 5 s cap,
    /// 25% jitter.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 50,
            max_delay_ms: 5_000,
            jitter: 0.25,
        }
    }

    /// The virtual delay before retry number `attempt` (1-based: the delay
    /// after the first failed try is `backoff_ms(seed, key, 1)`).
    ///
    /// Deterministic in `(seed, key, attempt)`; monotone non-decreasing in
    /// `attempt`; bounded by `exp ≤ delay ≤ min(exp · (1 + jitter), max)`
    /// where `exp` is the capped exponential step.
    pub fn backoff_ms(&self, seed: u64, key: &str, attempt: u32) -> u64 {
        let step = attempt.max(1) - 1;
        let exp = if step >= 63 {
            self.max_delay_ms
        } else {
            (self.base_delay_ms.saturating_mul(1u64 << step)).min(self.max_delay_ms)
        };
        let j = self.jitter.clamp(0.0, 1.0);
        let u = unit(crate::fnv1a(
            format!("{seed}\u{1f}backoff\u{1f}{key}\u{1f}{attempt}").as_bytes(),
        ));
        let jittered = exp as f64 * (1.0 + j * u);
        (jittered as u64).min(self.max_delay_ms)
    }
}

/// A per-shard allowance of retries.
///
/// When the budget runs dry the shard's circuit breaker is open: operations
/// get exactly one try and losses are recorded instead of retried, which
/// bounds the virtual (and real) cost of a hostile run. Exhaustion marks
/// the shard degraded — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryBudget {
    total: u32,
    used: u32,
}

impl RetryBudget {
    /// A budget of `total` retries.
    pub fn new(total: u32) -> RetryBudget {
        RetryBudget { total, used: 0 }
    }

    /// Take one retry from the budget; `false` when the breaker is open.
    pub fn try_consume(&mut self) -> bool {
        if self.used < self.total {
            self.used += 1;
            true
        } else {
            false
        }
    }

    /// Retries consumed so far.
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Retries still available.
    pub fn remaining(&self) -> u32 {
        self.total - self.used
    }

    /// Whether the breaker has opened (every retry spent).
    pub fn exhausted(&self) -> bool {
        self.total > 0 && self.used >= self.total
    }
}

/// What one retried operation came to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryOutcome<T, E> {
    /// The final result: the first success, or the last error.
    pub result: Result<T, E>,
    /// Tries actually made (≥ 1).
    pub attempts: u32,
    /// Tries beyond the first.
    pub retries: u32,
    /// Total virtual backoff accumulated across retries.
    pub backoff_ms: u64,
    /// True when a retry was wanted but the budget refused it.
    pub budget_denied: bool,
}

impl<T, E> RetryOutcome<T, E> {
    /// Whether the operation ultimately succeeded.
    pub fn succeeded(&self) -> bool {
        self.result.is_ok()
    }
}

/// Run `op` under `policy`, drawing retries from `budget`.
///
/// `op` receives the 1-based attempt number (callers fold it into their
/// structural fault keys so each attempt gets an independent fault
/// decision). `retryable` gates which errors are worth retrying —
/// permanent failures (e.g. a skill that genuinely fails to load) return
/// immediately without touching the budget.
pub fn retry<T, E>(
    policy: &RetryPolicy,
    budget: &mut RetryBudget,
    seed: u64,
    key: &str,
    mut op: impl FnMut(u32) -> Result<T, E>,
    mut retryable: impl FnMut(&E) -> bool,
) -> RetryOutcome<T, E> {
    let max = policy.max_attempts.max(1);
    let mut backoff_ms = 0u64;
    let mut attempt = 1u32;
    loop {
        match op(attempt) {
            Ok(v) => {
                return RetryOutcome {
                    result: Ok(v),
                    attempts: attempt,
                    retries: attempt - 1,
                    backoff_ms,
                    budget_denied: false,
                }
            }
            Err(e) => {
                if attempt >= max || !retryable(&e) {
                    return RetryOutcome {
                        result: Err(e),
                        attempts: attempt,
                        retries: attempt - 1,
                        backoff_ms,
                        budget_denied: false,
                    };
                }
                if !budget.try_consume() {
                    return RetryOutcome {
                        result: Err(e),
                        attempts: attempt,
                        retries: attempt - 1,
                        backoff_ms,
                        budget_denied: true,
                    };
                }
                backoff_ms += policy.backoff_ms(seed, key, attempt);
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_try_success_spends_nothing() {
        let mut budget = RetryBudget::new(4);
        let out = retry(
            &RetryPolicy::standard(),
            &mut budget,
            7,
            "k",
            |_| Ok::<_, ()>(42),
            |_| true,
        );
        assert_eq!(out.result, Ok(42));
        assert_eq!((out.attempts, out.retries, out.backoff_ms), (1, 0, 0));
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn retries_until_success_and_accumulates_backoff() {
        let mut budget = RetryBudget::new(10);
        let mut calls = 0;
        let out = retry(
            &RetryPolicy::standard(),
            &mut budget,
            7,
            "k",
            |attempt| {
                calls += 1;
                if attempt < 3 {
                    Err("transient")
                } else {
                    Ok("done")
                }
            },
            |_| true,
        );
        assert_eq!(out.result, Ok("done"));
        assert_eq!((calls, out.attempts, out.retries), (3, 3, 2));
        assert!(out.backoff_ms >= 50 + 100, "two exponential steps");
        assert_eq!(budget.used(), 2);
    }

    #[test]
    fn permanent_errors_do_not_retry() {
        let mut budget = RetryBudget::new(10);
        let out = retry(
            &RetryPolicy::standard(),
            &mut budget,
            7,
            "k",
            |_| Err::<(), _>("permanent"),
            |_| false,
        );
        assert_eq!((out.attempts, out.retries), (1, 0));
        assert!(!out.budget_denied);
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn open_breaker_denies_retries() {
        let mut budget = RetryBudget::new(1);
        let out = retry(
            &RetryPolicy::standard(),
            &mut budget,
            7,
            "k",
            |_| Err::<(), _>("transient"),
            |_| true,
        );
        // One retry granted, second denied by the empty budget.
        assert_eq!(out.attempts, 2);
        assert!(out.budget_denied);
        assert!(budget.exhausted());

        let after = retry(
            &RetryPolicy::standard(),
            &mut budget,
            7,
            "k2",
            |_| Err::<(), _>("transient"),
            |_| true,
        );
        assert_eq!(after.attempts, 1, "open breaker means single tries");
        assert!(after.budget_denied);
    }

    #[test]
    fn zero_budget_never_exhausts_when_inactive() {
        let b = RetryBudget::new(0);
        assert!(
            !b.exhausted(),
            "a zero budget is 'no retries', not degraded"
        );
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn backoff_is_deterministic_and_seed_sensitive() {
        let p = RetryPolicy::standard();
        assert_eq!(p.backoff_ms(7, "k", 2), p.backoff_ms(7, "k", 2));
        let differs = (1..=6).any(|a| p.backoff_ms(7, "k", a) != p.backoff_ms(8, "k", a));
        assert!(differs);
    }

    #[test]
    fn backoff_caps_at_max_even_for_huge_attempts() {
        let p = RetryPolicy::standard();
        assert!(p.backoff_ms(7, "k", 200) <= p.max_delay_ms);
        assert!(p.backoff_ms(7, "k", 63) <= p.max_delay_ms);
    }
}
