//! Coverage accounting: what the run observed versus what it planned.

use crate::profile::FaultChannel;
use crate::retry::RetryOutcome;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Observed-versus-expected counts for one report section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Units of work that completed and produced an observation.
    pub observed: u64,
    /// Units of work the experiment planned.
    pub expected: u64,
}

impl Coverage {
    /// Build from raw counts.
    pub fn new(observed: u64, expected: u64) -> Coverage {
        Coverage { observed, expected }
    }

    /// Observed fraction in `[0, 1]`; a section with nothing planned counts
    /// as fully covered.
    pub fn ratio(&self) -> f64 {
        if self.expected == 0 {
            1.0
        } else {
            self.observed as f64 / self.expected as f64
        }
    }

    /// Whether every planned unit was observed.
    pub fn is_complete(&self) -> bool {
        self.observed >= self.expected
    }

    /// Fold another section's counts into this one.
    pub fn merge(&mut self, other: Coverage) {
        self.observed += other.observed;
        self.expected += other.expected;
    }
}

/// Per-shard fault bookkeeping, filled single-threaded by the owning worker
/// and merged in structural order — the same discipline as `ShardLog`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLedger {
    /// Injected faults per channel label.
    pub injected: BTreeMap<&'static str, u64>,
    /// Retries spent.
    pub retries: u64,
    /// Virtual backoff accumulated, in milliseconds.
    pub backoff_ms: u64,
    /// Operations abandoned after their retries ran out.
    pub losses: u64,
    /// Whether this shard's retry budget exhausted (breaker opened).
    pub degraded: bool,
}

impl FaultLedger {
    /// A fresh ledger.
    pub fn new() -> FaultLedger {
        FaultLedger::default()
    }

    /// Count `n` injected faults on a channel.
    pub fn inject(&mut self, channel: FaultChannel, n: u64) {
        if n > 0 {
            *self.injected.entry(channel.label()).or_default() += n;
        }
    }

    /// Fold one retried operation's outcome in: each failed attempt is an
    /// injected fault; a final failure is a loss.
    pub fn record<T, E>(&mut self, channel: FaultChannel, out: &RetryOutcome<T, E>) {
        let failed_attempts = if out.succeeded() {
            u64::from(out.attempts - 1)
        } else {
            u64::from(out.attempts)
        };
        self.inject(channel, failed_attempts);
        self.retries += u64::from(out.retries);
        self.backoff_ms += out.backoff_ms;
        if !out.succeeded() {
            self.losses += 1;
        }
    }

    /// Total injected faults across channels.
    pub fn total_injected(&self) -> u64 {
        self.injected.values().sum()
    }

    /// Fold another shard's ledger into this one.
    pub fn merge(&mut self, other: &FaultLedger) {
        for (label, n) in &other.injected {
            *self.injected.entry(label).or_default() += n;
        }
        self.retries += other.retries;
        self.backoff_ms += other.backoff_ms;
        self.losses += other.losses;
        self.degraded |= other.degraded;
    }
}

/// The run-level coverage summary carried on `Observations` and rendered at
/// the top of the report.
///
/// Participates in the observation digest whenever the profile is not
/// `none`, so coverage itself is held to the jobs-independence contract.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Name of the fault profile the run executed under.
    pub profile: String,
    /// Observed/expected per pipeline section, keyed by section name.
    pub sections: BTreeMap<String, Coverage>,
    /// Injected faults per channel label, summed over shards.
    pub injected: BTreeMap<String, u64>,
    /// Retries spent across all shards.
    pub retries: u64,
    /// Virtual backoff across all shards, milliseconds.
    pub backoff_ms: u64,
    /// Operations lost for good.
    pub losses: u64,
    /// Shards whose retry budget exhausted (circuit breaker opened).
    pub degraded_shards: Vec<String>,
}

impl Default for CoverageReport {
    fn default() -> CoverageReport {
        CoverageReport::new("none")
    }
}

impl CoverageReport {
    /// An empty report for a run under `profile`.
    pub fn new(profile: &str) -> CoverageReport {
        CoverageReport {
            profile: profile.to_string(),
            sections: BTreeMap::new(),
            injected: BTreeMap::new(),
            retries: 0,
            backoff_ms: 0,
            losses: 0,
            degraded_shards: Vec::new(),
        }
    }

    /// The (created-on-demand) coverage row for `section`.
    pub fn section(&mut self, section: &str) -> &mut Coverage {
        self.sections.entry(section.to_string()).or_default()
    }

    /// Fold a shard's fault ledger in; a degraded ledger records the shard
    /// name in [`CoverageReport::degraded_shards`].
    pub fn merge_ledger(&mut self, shard: &str, ledger: &FaultLedger) {
        for (label, n) in &ledger.injected {
            *self.injected.entry(label.to_string()).or_default() += n;
        }
        self.retries += ledger.retries;
        self.backoff_ms += ledger.backoff_ms;
        self.losses += ledger.losses;
        if ledger.degraded {
            self.degraded_shards.push(shard.to_string());
        }
    }

    /// Total injected faults across channels.
    pub fn total_injected(&self) -> u64 {
        self.injected.values().sum()
    }

    /// Total observations across sections.
    pub fn total_observed(&self) -> u64 {
        self.sections.values().map(|c| c.observed).sum()
    }

    /// A run is degraded when fault-attributable losses survived retry or a
    /// shard's breaker opened. (Incomplete sections alone do not qualify:
    /// some losses — e.g. skills that genuinely fail to load — are modeled
    /// behavior, not injected faults.)
    pub fn is_degraded(&self) -> bool {
        self.losses > 0 || !self.degraded_shards.is_empty()
    }

    /// Deterministic JSON export, embedded in run-ledger bundle manifests.
    ///
    /// Every field is a structural count or a fixed name — nothing
    /// schedule- or wall-clock-dependent — so the document honors the same
    /// byte-equality contract as the rest of the bundle.
    pub fn to_json(&self) -> alexa_obs::Json {
        use alexa_obs::Json;
        let sections = self
            .sections
            .iter()
            .map(|(name, cov)| {
                (
                    name.clone(),
                    Json::Obj(vec![
                        ("observed".to_string(), Json::Int(cov.observed)),
                        ("expected".to_string(), Json::Int(cov.expected)),
                    ]),
                )
            })
            .collect();
        let injected = self
            .injected
            .iter()
            .map(|(label, n)| (label.clone(), Json::Int(*n)))
            .collect();
        Json::Obj(vec![
            ("profile".to_string(), Json::Str(self.profile.clone())),
            ("sections".to_string(), Json::Obj(sections)),
            ("injected".to_string(), Json::Obj(injected)),
            ("retries".to_string(), Json::Int(self.retries)),
            ("backoff_ms".to_string(), Json::Int(self.backoff_ms)),
            ("losses".to_string(), Json::Int(self.losses)),
            (
                "degraded_shards".to_string(),
                Json::Arr(
                    self.degraded_shards
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable coverage block for the report header.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## Coverage (fault profile: {})", self.profile);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>10} {:>9}",
            "section", "observed", "expected", "coverage"
        );
        for (name, cov) in &self.sections {
            let _ = writeln!(
                out,
                "{:<24} {:>10} {:>10} {:>8.1}%",
                name,
                cov.observed,
                cov.expected,
                cov.ratio() * 100.0
            );
        }
        if self.injected.is_empty() {
            let _ = writeln!(out, "faults injected: none");
        } else {
            let parts: Vec<String> = self
                .injected
                .iter()
                .map(|(label, n)| format!("{label}={n}"))
                .collect();
            let _ = writeln!(out, "faults injected: {}", parts.join(" "));
            let _ = writeln!(
                out,
                "retries: {} (virtual backoff {} ms); losses: {}",
                self.retries, self.backoff_ms, self.losses
            );
        }
        if !self.degraded_shards.is_empty() {
            let _ = writeln!(out, "degraded shards: {}", self.degraded_shards.join(", "));
        }
        let _ = writeln!(
            out,
            "run status: {}",
            if self.is_degraded() {
                "DEGRADED (valid, reduced coverage)"
            } else {
                "complete"
            }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::{retry, RetryBudget, RetryPolicy};

    #[test]
    fn ratio_handles_empty_sections() {
        assert_eq!(Coverage::default().ratio(), 1.0);
        assert_eq!(Coverage::new(3, 4).ratio(), 0.75);
        assert!(Coverage::new(4, 4).is_complete());
        assert!(!Coverage::new(3, 4).is_complete());
    }

    #[test]
    fn ledger_records_outcomes() {
        let mut ledger = FaultLedger::new();
        let mut budget = RetryBudget::new(8);
        let ok = retry(
            &RetryPolicy::standard(),
            &mut budget,
            1,
            "a",
            |attempt| if attempt < 2 { Err(()) } else { Ok(()) },
            |_| true,
        );
        let lost = retry(
            &RetryPolicy::standard(),
            &mut budget,
            1,
            "b",
            |_| Err::<(), _>(()),
            |_| true,
        );
        ledger.record(FaultChannel::InstallFailure, &ok);
        ledger.record(FaultChannel::InstallFailure, &lost);
        // ok: 1 failed attempt; lost: 4 failed attempts.
        assert_eq!(ledger.injected["install"], 5);
        assert_eq!(ledger.losses, 1);
        assert_eq!(ledger.retries, 1 + 3);
        assert!(ledger.backoff_ms > 0);
    }

    #[test]
    fn report_merges_ledgers_and_flags_degraded() {
        let mut report = CoverageReport::new("hostile");
        report.section("installs").merge(Coverage::new(8, 10));
        let mut a = FaultLedger::new();
        a.inject(FaultChannel::PacketDrop, 3);
        a.retries = 2;
        let mut b = FaultLedger::new();
        b.inject(FaultChannel::PacketDrop, 1);
        b.losses = 2;
        b.degraded = true;
        report.merge_ledger("Fashion", &a);
        report.merge_ledger("Dating", &b);
        assert_eq!(report.injected["packet_drop"], 4);
        assert_eq!(report.losses, 2);
        assert_eq!(report.degraded_shards, vec!["Dating".to_string()]);
        assert!(report.is_degraded());
        assert_eq!(report.total_injected(), 4);
        assert_eq!(report.total_observed(), 8);
    }

    #[test]
    fn clean_report_is_not_degraded() {
        let mut report = CoverageReport::new("none");
        report.section("installs").merge(Coverage::new(10, 10));
        assert!(!report.is_degraded());
        let text = report.render();
        assert!(text.contains("run status: complete"));
        assert!(text.contains("faults injected: none"));
    }

    #[test]
    fn json_export_is_structural_and_complete() {
        let mut report = CoverageReport::new("flaky");
        report
            .section("skill.installs")
            .merge(Coverage::new(48, 50));
        let mut ledger = FaultLedger::new();
        ledger.inject(FaultChannel::InstallFailure, 2);
        ledger.retries = 4;
        ledger.backoff_ms = 120;
        ledger.losses = 2;
        ledger.degraded = true;
        report.merge_ledger("Dating", &ledger);
        let j = report.to_json();
        use alexa_obs::Json;
        assert_eq!(j.get("profile").and_then(Json::as_str), Some("flaky"));
        assert_eq!(
            j.get("sections")
                .and_then(|s| s.get("skill.installs"))
                .and_then(|s| s.get("observed"))
                .and_then(Json::as_u64),
            Some(48)
        );
        assert_eq!(
            j.get("injected")
                .and_then(|i| i.get("install"))
                .and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(j.get("retries").and_then(Json::as_u64), Some(4));
        assert_eq!(j.get("losses").and_then(Json::as_u64), Some(2));
        let rendered = j.render();
        assert!(rendered.contains("\"degraded_shards\": [\"Dating\"]"));
        // Round-trips through the strict parser.
        assert!(Json::parse(&rendered).is_ok());
    }

    #[test]
    fn render_carries_observed_expected_counts() {
        let mut report = CoverageReport::new("degraded");
        report.section("crawl.visits").merge(Coverage::new(37, 40));
        let mut ledger = FaultLedger::new();
        ledger.inject(FaultChannel::CrawlTimeout, 3);
        ledger.retries = 5;
        ledger.backoff_ms = 350;
        ledger.losses = 3;
        report.merge_ledger("web", &ledger);
        let text = report.render();
        assert!(text.contains("crawl.visits"));
        assert!(text.contains("37"));
        assert!(text.contains("40"));
        assert!(text.contains("crawl_timeout=3"));
        assert!(text.contains("DEGRADED"));
    }
}
