//! `alexa-fault` — the deterministic fault plane for the audit pipeline.
//!
//! The paper's measurement campaign was lossy in ways a perfect simulation
//! hides: skills failed to enable, crawled prebid sites timed out, and 4 of
//! the marketplace policy pages could not be downloaded at all (§7.2). This
//! crate injects those failure modes *deterministically* so the pipeline can
//! be exercised — and its graceful-degradation paths tested — without
//! giving up the repo's core contract that a fixed `(seed, profile)` yields
//! byte-identical output for any `--jobs` value.
//!
//! Three design rules make that possible:
//!
//! 1. **Stateless decisions.** [`FaultPlane::fires`] is a pure hash of
//!    `(seed, channel, structural key)` compared against the profile's rate
//!    for that channel. There is no RNG stream to advance, so consulting the
//!    plane never perturbs the simulation's own randomness, and a rate of
//!    zero is *exactly* the unfaulted pipeline.
//! 2. **Structural keys.** Callers key decisions by what the work *is*
//!    (persona/skill/attempt, site/iteration/slot), never by when or where
//!    it ran, so scheduling across worker threads cannot change outcomes.
//! 3. **Virtual time.** Retry backoff delays are computed and accounted for
//!    but never slept, so fault-heavy runs stay fast and wall-clock never
//!    leaks into observables.

mod coverage;
mod plane;
mod profile;
mod retry;

pub use coverage::{Coverage, CoverageReport, FaultLedger};
pub use plane::FaultPlane;
pub use profile::{FaultChannel, FaultProfile, ProfileParseError, CHANNEL_LABELS};
pub use retry::{retry, RetryBudget, RetryOutcome, RetryPolicy};

/// FNV-1a over a byte string, the repo's standard structural hash.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates structurally-close keys (adjacent
/// packet indices, consecutive attempts) so per-channel rates hold locally,
/// not just in aggregate.
pub(crate) fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Map a hash to a unit-interval sample in `[0, 1)`.
pub(crate) fn unit(h: u64) -> f64 {
    // 53 high bits → f64 mantissa, the usual unbiased construction.
    (mix(h) >> 11) as f64 / (1u64 << 53) as f64
}
