//! The stateless fault oracle.

use crate::profile::{FaultChannel, FaultProfile};
use crate::{fnv1a, unit};

/// A deterministic fault oracle: pure function of `(seed, profile, channel,
/// structural key)`.
///
/// The plane holds no mutable state and no RNG stream — every decision is
/// an independent hash — so it can be cloned freely into worker shards and
/// consulted in any order without affecting determinism. With the `none`
/// profile every query answers "no fault" and the pipeline is bit-identical
/// to one that never consulted the plane.
#[derive(Debug, Clone)]
pub struct FaultPlane {
    seed: u64,
    profile: FaultProfile,
}

impl FaultPlane {
    /// A plane for one run. The seed should be derived from the audit seed
    /// so fault placement varies with it.
    pub fn new(seed: u64, profile: FaultProfile) -> FaultPlane {
        FaultPlane { seed, profile }
    }

    /// A plane that never fires (the `none` profile).
    pub fn disabled() -> FaultPlane {
        FaultPlane::new(0, FaultProfile::none())
    }

    /// The profile driving this plane.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Whether any channel can fire.
    pub fn is_active(&self) -> bool {
        self.profile.is_active()
    }

    /// A unit-interval sample for `(channel, key)`, stable across calls.
    fn sample(&self, channel: FaultChannel, key: &str) -> f64 {
        let h = fnv1a(format!("{}\u{1f}{}\u{1f}{}", self.seed, channel.label(), key).as_bytes());
        unit(h)
    }

    /// Does the fault on `channel` fire for this structural `key`?
    ///
    /// Keys must name the work structurally (e.g. `"Fashion/skill-12#2"` for
    /// the second install attempt of a skill), never positionally, so the
    /// answer is independent of thread scheduling. Decisions are *nested in
    /// rate*: if a key fires at rate `r` it also fires at every rate above
    /// `r`, which is what makes coverage decrease monotonically across
    /// profile tiers.
    pub fn fires(&self, channel: FaultChannel, key: &str) -> bool {
        let rate = self.profile.rate(channel);
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        self.sample(channel, key) < rate
    }

    /// Truncated length for a flow of `len` units when [`FaultChannel::FlowTruncation`]
    /// fires: a deterministic cut keeping 25–75% of the flow (at least one
    /// unit of a non-empty flow, so a truncated flow is still observed).
    pub fn truncated_len(&self, key: &str, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let keep = 0.25 + 0.5 * self.sample(FaultChannel::FlowTruncation, &format!("{key}/cut"));
        ((len as f64 * keep) as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_never_fires() {
        let plane = FaultPlane::disabled();
        for ch in FaultChannel::ALL {
            for i in 0..200 {
                assert!(!plane.fires(ch, &format!("key-{i}")));
            }
        }
    }

    #[test]
    fn full_rate_always_fires() {
        let plane = FaultPlane::new(7, FaultProfile::uniform(1.0));
        for ch in FaultChannel::ALL {
            assert!(plane.fires(ch, "anything"));
        }
    }

    #[test]
    fn decisions_are_stable_and_key_dependent() {
        let plane = FaultPlane::new(1234, FaultProfile::hostile());
        let a: Vec<bool> = (0..100)
            .map(|i| plane.fires(FaultChannel::CrawlTimeout, &format!("site-{i}")))
            .collect();
        let b: Vec<bool> = (0..100)
            .map(|i| plane.fires(FaultChannel::CrawlTimeout, &format!("site-{i}")))
            .collect();
        assert_eq!(a, b, "same key must always answer the same");
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
    }

    #[test]
    fn rates_nest_across_profiles() {
        // A key that fires at a low rate must also fire at any higher rate.
        let low = FaultPlane::new(42, FaultProfile::flaky());
        let high = FaultPlane::new(42, FaultProfile::hostile());
        for i in 0..500 {
            let key = format!("k{i}");
            for ch in FaultChannel::ALL {
                if low.fires(ch, &key) {
                    assert!(high.fires(ch, &key));
                }
            }
        }
    }

    #[test]
    fn empirical_rate_tracks_profile() {
        let plane = FaultPlane::new(9, FaultProfile::uniform(0.3));
        let n = 4000;
        let hits = (0..n)
            .filter(|i| plane.fires(FaultChannel::PacketDrop, &format!("p{i}")))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed {rate}");
    }

    #[test]
    fn truncation_keeps_a_bounded_nonzero_prefix() {
        let plane = FaultPlane::new(5, FaultProfile::hostile());
        for len in [1usize, 2, 10, 1000] {
            for i in 0..50 {
                let t = plane.truncated_len(&format!("f{i}"), len);
                assert!(t >= 1 && t <= (len * 3).div_ceil(4), "len {len} -> {t}");
            }
        }
        assert_eq!(plane.truncated_len("x", 0), 0);
    }

    #[test]
    fn seed_moves_fault_placement() {
        let a = FaultPlane::new(7, FaultProfile::degraded());
        let b = FaultPlane::new(8, FaultProfile::degraded());
        let pattern = |p: &FaultPlane| -> Vec<bool> {
            (0..200)
                .map(|i| p.fires(FaultChannel::InstallFailure, &format!("s{i}")))
                .collect()
        };
        assert_ne!(pattern(&a), pattern(&b));
    }
}
