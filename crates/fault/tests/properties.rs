//! Property-based tests for the fault plane's retry and decision machinery.

use alexa_fault::{retry, FaultChannel, FaultPlane, FaultProfile, RetryBudget, RetryPolicy};
use proptest::prelude::*;

fn policy() -> impl Strategy<Value = RetryPolicy> {
    (1u32..8, 1u64..500, 1000u64..20_000, 0.0..1.0f64).prop_map(
        |(max_attempts, base_delay_ms, max_delay_ms, jitter)| RetryPolicy {
            max_attempts,
            base_delay_ms,
            max_delay_ms,
            jitter,
        },
    )
}

proptest! {
    // Backoff never shrinks from one attempt to the next: even at the
    // jitter extremes, doubling the exponential step dominates.
    #[test]
    fn backoff_is_monotone_nondecreasing(
        p in policy(),
        seed in 0u64..u64::MAX,
        key in "[a-z]{1,12}",
        attempt in 1u32..20,
    ) {
        let a = p.backoff_ms(seed, &key, attempt);
        let b = p.backoff_ms(seed, &key, attempt + 1);
        prop_assert!(b >= a, "attempt {attempt}: {a} ms then {b} ms");
    }

    // Jitter stays inside its advertised envelope:
    // `exp <= delay <= min(exp * (1 + jitter), max)`.
    #[test]
    fn backoff_respects_jitter_bounds(
        p in policy(),
        seed in 0u64..u64::MAX,
        key in "[a-z]{1,12}",
        attempt in 1u32..20,
    ) {
        let step = attempt - 1;
        let exp = if step >= 63 {
            p.max_delay_ms
        } else {
            (p.base_delay_ms << step).min(p.max_delay_ms)
        };
        let hi = ((exp as f64 * (1.0 + p.jitter)) as u64).min(p.max_delay_ms);
        let d = p.backoff_ms(seed, &key, attempt);
        prop_assert!(d >= exp.min(p.max_delay_ms), "delay {d} below exponential floor {exp}");
        prop_assert!(d <= hi, "delay {d} above jitter ceiling {hi}");
    }

    // A budget hands out exactly `total` retries across any sequence of
    // failing operations, then denies; `exhausted` flips exactly then.
    #[test]
    fn budget_exhaustion_is_exact(total in 0u32..40, ops in 1usize..12) {
        let p = RetryPolicy { max_attempts: 1000, base_delay_ms: 1, max_delay_ms: 10, jitter: 0.0 };
        let mut budget = RetryBudget::new(total);
        let mut granted = 0u64;
        for op in 0..ops {
            let out = retry(
                &p,
                &mut budget,
                9,
                &format!("op{op}"),
                |_| Err::<(), ()>(()),
                |_| true,
            );
            granted += u64::from(out.retries);
        }
        prop_assert_eq!(granted, u64::from(total), "every retry must come from the budget");
        prop_assert_eq!(budget.remaining(), 0);
        prop_assert_eq!(budget.exhausted(), total > 0);
        // Once dry, a further failing op gets no retries and is denied.
        let out = retry(&p, &mut budget, 9, "after", |_| Err::<(), ()>(()), |_| true);
        prop_assert_eq!(out.attempts, 1);
        prop_assert!(out.budget_denied);
    }

    // Fault decisions nest across severity: any site that fires under a
    // milder preset also fires under every harsher one.
    #[test]
    fn preset_decisions_nest(seed in 0u64..u64::MAX, key in "[a-z/#0-9]{1,24}") {
        let tiers = [
            FaultProfile::flaky(),
            FaultProfile::degraded(),
            FaultProfile::hostile(),
        ];
        for channel in FaultChannel::ALL {
            let mut fired_before = false;
            for profile in &tiers {
                let fires = FaultPlane::new(seed, profile.clone()).fires(channel, &key);
                prop_assert!(
                    fires || !fired_before,
                    "{channel:?}/{key}: fired under a milder preset but not {}",
                    profile.name()
                );
                fired_before = fires;
            }
        }
    }

    // The virtual clock only accumulates when retries are granted.
    #[test]
    fn no_backoff_without_retries(seed in 0u64..u64::MAX, key in "[a-z]{1,8}") {
        let p = RetryPolicy::standard();
        let mut budget = RetryBudget::new(0);
        let out = retry(&p, &mut budget, seed, &key, |_| Err::<(), ()>(()), |_| true);
        prop_assert_eq!(out.retries, 0);
        prop_assert_eq!(out.backoff_ms, 0);
    }
}
