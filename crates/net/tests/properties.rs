//! Property-based tests for the network substrate.

use alexa_net::{
    read_trace, write_trace, Capture, DataType, DnsTable, Domain, FilterList, Packet, Payload,
    Record,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Strategy producing syntactically valid domain names under known suffixes.
fn valid_domain() -> impl Strategy<Value = String> {
    let label = "[a-z][a-z0-9]{0,10}";
    (
        prop::collection::vec(label, 1..4),
        prop::sample::select(vec!["com", "net", "org", "fm"]),
    )
        .prop_map(|(labels, tld)| format!("{}.{}", labels.join("."), tld))
}

proptest! {
    #[test]
    fn parse_accepts_valid_names(name in valid_domain()) {
        let d = Domain::parse(&name).unwrap();
        prop_assert_eq!(d.as_str(), name.as_str());
    }

    #[test]
    fn parse_is_case_insensitive(name in valid_domain()) {
        let upper = name.to_ascii_uppercase();
        prop_assert_eq!(Domain::parse(&upper).unwrap(), Domain::parse(&name).unwrap());
    }

    #[test]
    fn registrable_is_suffix_of_name(name in valid_domain()) {
        let d = Domain::parse(&name).unwrap();
        let reg = d.registrable().unwrap();
        prop_assert!(d.is_subdomain_of(&reg));
        prop_assert!(reg.depth() <= d.depth());
    }

    #[test]
    fn registrable_is_idempotent(name in valid_domain()) {
        let d = Domain::parse(&name).unwrap();
        let reg = d.registrable().unwrap();
        prop_assert_eq!(reg.registrable().unwrap(), reg);
    }

    #[test]
    fn dns_reverse_inverts_resolve(names in prop::collection::hash_set(valid_domain(), 1..40)) {
        let mut table = DnsTable::new();
        for name in &names {
            let d = Domain::parse(name).unwrap();
            let ip = table.resolve(&d);
            prop_assert_eq!(table.reverse(ip), Some(&d));
        }
        prop_assert_eq!(table.len(), names.len());
    }

    #[test]
    fn filterlist_subdomain_consistency(name in valid_domain(), sub in "[a-z]{1,8}") {
        // If a registrable domain is listed, every subdomain must match too.
        let mut fl = FilterList::empty();
        let d = Domain::parse(&name).unwrap();
        let reg = d.registrable().unwrap();
        fl.add_suffix(reg.as_str());
        prop_assert!(fl.is_ad_tracking(&d));
        let deeper = Domain::parse(&format!("{sub}.{name}")).unwrap();
        prop_assert!(fl.is_ad_tracking(&deeper));
    }

    #[test]
    fn encryption_always_preserves_wire_len(values in prop::collection::vec("[ -~]{0,40}", 0..10)) {
        let records: Vec<Record> = values
            .into_iter()
            .map(|v| Record::new(alexa_net::DataType::Preference, v))
            .collect();
        let plain = Payload::Plain(records);
        prop_assert_eq!(plain.encrypt().wire_len(), plain.wire_len());
    }

    #[test]
    fn trace_roundtrips_arbitrary_captures(
        label in "[ -~]{0,30}",
        packets in prop::collection::vec(
            (
                0u64..1_000_000,
                prop::bool::ANY,
                valid_domain(),
                prop::collection::vec(("[ -~]{0,24}", 0usize..9), 0..4),
                0usize..4096,
            ),
            0..8,
        ),
    ) {
        let mut cap = Capture::new(label);
        for (ts, outgoing, name, records, enc_len) in packets {
            let domain = Domain::parse(&name).unwrap();
            let ip = Ipv4Addr::new(10, 1, 2, 3);
            let payload = if records.is_empty() {
                Payload::Encrypted { len: enc_len }
            } else {
                Payload::Plain(
                    records
                        .into_iter()
                        .map(|(v, ti)| Record::new(DataType::ALL[ti % DataType::ALL.len()], v))
                        .collect(),
                )
            };
            cap.packets.push(if outgoing {
                Packet::outgoing(ts, domain, ip, payload)
            } else {
                Packet::incoming(ts, domain, ip, payload)
            });
        }
        let parsed = read_trace(&write_trace(std::slice::from_ref(&cap))).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0].label, &cap.label);
        prop_assert_eq!(&parsed[0].packets, &cap.packets);
    }
}
