//! Network substrate for the `echoaudit` workspace.
//!
//! The paper observes the Echo ecosystem from two network vantage points:
//!
//! * a **RPi bridged-AP router** running `tcpdump`, which sees every flow the
//!   commercial Echo produces but only as *encrypted* traffic — endpoints,
//!   DNS lookups, timing and sizes;
//! * an instrumented **AVS Echo** (the AVS Device SDK on a RPi), which logs
//!   every payload *before* encryption — full data types — but, being
//!   uncertified, only ever talks to Amazon and cannot run streaming skills.
//!
//! This crate models everything both vantage points operate on: validated
//! [`Domain`] names with eTLD+1 extraction, a deterministic [`DnsTable`],
//! typed [`Packet`]s whose payloads are either opaque ([`Payload::Encrypted`])
//! or structured ([`Payload::Plain`]), the two taps ([`RouterTap`],
//! [`AvsTap`]), a domain→organization map ([`OrgMap`]) equivalent to the
//! paper's DuckDuckGo-entity + Crunchbase + WHOIS resolution, and a
//! Pi-hole-style [`FilterList`] for advertising & tracking classification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod dns;
pub mod domain;
pub mod filterlist;
pub mod firewall;
pub mod flowstats;
pub mod orgmap;
pub mod packet;
pub mod trace;

pub use capture::{AvsTap, Capture, FlowRecord, RouterTap, TapStats};
pub use dns::DnsTable;
pub use domain::Domain;
pub use filterlist::{FilterList, TrafficPurpose};
pub use firewall::{Firewall, FirewallStats, Verdict};
pub use flowstats::{aggregate as aggregate_flows, FlowStats};
pub use orgmap::{OrgClass, OrgMap};
pub use packet::{DataType, Direction, Packet, Payload, Record};
pub use trace::{read_trace, write_trace, TraceError};
