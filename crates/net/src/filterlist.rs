//! Pi-hole-style filter lists for advertising & tracking classification.
//!
//! The paper detects advertising and tracking endpoints with blocklists
//! (firebog.net's Pi-hole collection) plus manual investigation. We embed the
//! equivalent rules for every A&T service observed in the study (the
//! grey-shaded rows of Table 1) plus the web-advertising domains the ad-tech
//! simulation uses. Rules are of two kinds, matching Pi-hole semantics:
//!
//! * **suffix rules** match a registrable domain and all its subdomains
//!   (`podtrac.com` matches `dts.podtrac.com`);
//! * **exact-host rules** match one fully-qualified name only
//!   (`device-metrics-us-2.amazon.com` is tracking, but `amazon.com` as a
//!   whole stays functional).

use crate::domain::Domain;
use std::collections::BTreeSet;

/// Purpose classification of one traffic flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrafficPurpose {
    /// Ordinary functional traffic.
    Functional,
    /// Advertising and/or tracking traffic.
    AdvertisingTracking,
}

impl std::fmt::Display for TrafficPurpose {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TrafficPurpose::Functional => "Functional",
            TrafficPurpose::AdvertisingTracking => "Advertising & Tracking",
        };
        f.write_str(s)
    }
}

/// Audio / smart-speaker advertising & tracking services (suffix rules) —
/// the grey rows of Table 1 plus the services of Table 4.
const BUILTIN_SUFFIX: &[&str] = &[
    // Audio advertising & tracking observed on skills.
    "megaphone.fm",
    "podtrac.com",
    "chtbl.com",
    "libsyn.com",
    "streamtheworld.com",
    "tritondigital.com",
    "omny.fm",
    // Spotify's audio-ads / analytics SDK endpoints (Table 14 labels
    // Spotify AB an analytic provider and advertising network).
    "spotify.com",
    // Web advertising & tracking used by the crawl simulation.
    "amazon-adsystem.com",
    "doubleclick.net",
    "criteo.com",
    "pubmatic.com",
    "rubiconproject.com",
    "adnxs.com",
    "openx.net",
    "indexexchange.com",
    "sharethrough.com",
    "triplelift.com",
    "sovrn.com",
    "33across.com",
    "smartadserver.com",
    "medianet.com",
    "taboola.com",
    "outbrain.com",
    "bidswitch.net",
    "casalemedia.com",
    "gumgum.com",
    "yieldmo.com",
];

/// Exact-host tracking rules: specific hostnames under otherwise functional
/// registrable domains.
const BUILTIN_EXACT: &[&str] = &["device-metrics-us-2.amazon.com"];

/// A compiled filter list.
///
/// Rule sets are `BTreeSet`s so any rendered view of the list (Debug dumps,
/// future rule exports) is in rule order rather than hash order.
#[derive(Debug, Clone)]
pub struct FilterList {
    suffixes: BTreeSet<String>,
    exact: BTreeSet<String>,
}

impl Default for FilterList {
    fn default() -> FilterList {
        FilterList::new()
    }
}

impl FilterList {
    /// The built-in list covering every A&T service in the paper.
    pub fn new() -> FilterList {
        let mut fl = FilterList::empty();
        for &s in BUILTIN_SUFFIX {
            fl.add_suffix(s);
        }
        for &e in BUILTIN_EXACT {
            fl.add_exact(e);
        }
        fl
    }

    /// An empty list.
    pub fn empty() -> FilterList {
        FilterList {
            suffixes: BTreeSet::new(),
            exact: BTreeSet::new(),
        }
    }

    /// Add a suffix rule (domain + all subdomains).
    pub fn add_suffix(&mut self, domain: &str) {
        self.suffixes.insert(domain.to_ascii_lowercase());
    }

    /// Add an exact-host rule.
    pub fn add_exact(&mut self, host: &str) {
        self.exact.insert(host.to_ascii_lowercase());
    }

    /// Whether a domain is an advertising/tracking endpoint.
    pub fn is_ad_tracking(&self, domain: &Domain) -> bool {
        if self.exact.contains(domain.as_str()) {
            return true;
        }
        // Walk the suffix chain: a.b.c.com → a.b.c.com, b.c.com, c.com, com.
        let name = domain.as_str();
        let mut idx = 0;
        loop {
            let candidate = &name[idx..];
            if self.suffixes.contains(candidate) {
                return true;
            }
            match name[idx..].find('.') {
                Some(dot) => idx += dot + 1,
                None => return false,
            }
        }
    }

    /// Classify a domain's traffic purpose.
    pub fn classify(&self, domain: &Domain) -> TrafficPurpose {
        if self.is_ad_tracking(domain) {
            TrafficPurpose::AdvertisingTracking
        } else {
            TrafficPurpose::Functional
        }
    }

    /// Number of rules (suffix + exact).
    pub fn len(&self) -> usize {
        self.suffixes.len() + self.exact.len()
    }

    /// Whether the list has no rules.
    pub fn is_empty(&self) -> bool {
        self.suffixes.is_empty() && self.exact.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    #[test]
    fn suffix_rules_cover_subdomains() {
        let fl = FilterList::new();
        assert!(fl.is_ad_tracking(&d("megaphone.fm")));
        assert!(fl.is_ad_tracking(&d("dcs.megaphone.fm")));
        assert!(fl.is_ad_tracking(&d("dts.podtrac.com")));
        assert!(fl.is_ad_tracking(&d("play.podtrac.com")));
        assert!(fl.is_ad_tracking(&d("turnernetworksales.mc.tritondigital.com")));
    }

    #[test]
    fn exact_rule_does_not_taint_parent() {
        let fl = FilterList::new();
        assert!(fl.is_ad_tracking(&d("device-metrics-us-2.amazon.com")));
        assert!(!fl.is_ad_tracking(&d("amazon.com")));
        assert!(!fl.is_ad_tracking(&d("api.amazon.com")));
    }

    #[test]
    fn functional_domains_pass() {
        let fl = FilterList::new();
        for name in [
            "amazonalexa.com",
            "static.garmincdn.com",
            "discovery.meethue.com",
        ] {
            assert_eq!(fl.classify(&d(name)), TrafficPurpose::Functional, "{name}");
        }
    }

    #[test]
    fn no_partial_label_match() {
        let fl = FilterList::new();
        // "notpodtrac.com" must not match the "podtrac.com" suffix rule.
        assert!(!fl.is_ad_tracking(&d("notpodtrac.com")));
    }

    #[test]
    fn custom_rules() {
        let mut fl = FilterList::empty();
        assert!(fl.is_empty());
        fl.add_suffix("tracker.example.net");
        fl.add_exact("pixel.site.com");
        assert_eq!(fl.len(), 2);
        assert!(fl.is_ad_tracking(&d("x.tracker.example.net")));
        assert!(fl.is_ad_tracking(&d("pixel.site.com")));
        assert!(!fl.is_ad_tracking(&d("site.com")));
    }

    #[test]
    fn debug_dump_is_insertion_order_independent() {
        // Regression test for the HashSet → BTreeSet conversion.
        let mut a = FilterList::empty();
        a.add_suffix("zzz.com");
        a.add_suffix("aaa.com");
        a.add_exact("x.b.com");
        let mut b = FilterList::empty();
        b.add_exact("x.b.com");
        b.add_suffix("aaa.com");
        b.add_suffix("zzz.com");
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn table4_services_all_flagged() {
        // Every A&T service from Table 4 must classify as A&T.
        let fl = FilterList::new();
        for name in [
            "chtbl.com",
            "traffic.omny.fm",
            "dts.podtrac.com",
            "turnernetworksales.mc.tritondigital.com",
            "play.podtrac.com",
        ] {
            assert_eq!(
                fl.classify(&d(name)),
                TrafficPurpose::AdvertisingTracking,
                "{name}"
            );
        }
    }
}
