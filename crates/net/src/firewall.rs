//! The traffic-filtering defense of §8.1.
//!
//! The paper proposes, as a user-side defense, to "selectively block
//! network traffic that is not essential for the skill to work", citing the
//! *Blocking without Breaking* approach (Mandalari et al., PETS '21). This
//! module implements that defense as a router-resident firewall:
//!
//! * advertising & tracking endpoints (per the [`FilterList`]) are
//!   **blocked**;
//! * an explicit allowlist (e.g. the platform's voice endpoints, which the
//!   device cannot function without) is always **allowed**;
//! * everything else is allowed — the defense must not break functionality.
//!
//! [`FirewallStats`] records what was dropped so the audit can quantify the
//! defense: how much A&T traffic disappears, and whether any functional
//! flow was harmed.

use crate::domain::Domain;
use crate::filterlist::FilterList;
use crate::packet::Packet;

/// Per-packet decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forwarded unchanged.
    Allow,
    /// Dropped at the router.
    Block,
}

/// Counters describing a firewall's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FirewallStats {
    /// Packets forwarded.
    pub allowed: usize,
    /// Packets dropped.
    pub blocked: usize,
}

impl FirewallStats {
    /// Share of traffic that was blocked.
    pub fn blocked_share(&self) -> f64 {
        let total = self.allowed + self.blocked;
        if total == 0 {
            0.0
        } else {
            self.blocked as f64 / total as f64
        }
    }
}

/// A router-resident advertising & tracking firewall.
///
/// ```
/// use alexa_net::{Domain, Firewall, Packet, Payload};
/// use std::net::Ipv4Addr;
/// let mut fw = Firewall::new();
/// let tracker = Packet::outgoing(
///     0,
///     Domain::parse("dts.podtrac.com").unwrap(),
///     Ipv4Addr::new(10, 0, 0, 1),
///     Payload::Encrypted { len: 64 },
/// );
/// assert!(fw.filter(&tracker).is_none()); // dropped
/// assert_eq!(fw.stats().blocked, 1);
/// ```
#[derive(Debug)]
pub struct Firewall {
    blocklist: FilterList,
    allowlist: Vec<Domain>,
    stats: FirewallStats,
}

impl Default for Firewall {
    fn default() -> Firewall {
        Firewall::new()
    }
}

impl Firewall {
    /// Firewall with the built-in A&T blocklist and an empty allowlist.
    pub fn new() -> Firewall {
        Firewall::with_blocklist(FilterList::new())
    }

    /// Firewall over a custom blocklist.
    pub fn with_blocklist(blocklist: FilterList) -> Firewall {
        Firewall {
            blocklist,
            allowlist: Vec::new(),
            stats: FirewallStats::default(),
        }
    }

    /// Always allow a domain (and its subdomains), even if blocklisted.
    pub fn allow(&mut self, domain: Domain) {
        self.allowlist.push(domain);
    }

    /// Decide a packet's fate without forwarding it.
    pub fn judge(&self, packet: &Packet) -> Verdict {
        if self
            .allowlist
            .iter()
            .any(|a| packet.remote.is_subdomain_of(a))
        {
            return Verdict::Allow;
        }
        if self.blocklist.is_ad_tracking(&packet.remote) {
            Verdict::Block
        } else {
            Verdict::Allow
        }
    }

    /// Filter a packet, recording the decision. Returns the packet when
    /// forwarded.
    pub fn filter<'a>(&mut self, packet: &'a Packet) -> Option<&'a Packet> {
        match self.judge(packet) {
            Verdict::Allow => {
                self.stats.allowed += 1;
                Some(packet)
            }
            Verdict::Block => {
                self.stats.blocked += 1;
                None
            }
        }
    }

    /// Filter a whole batch, keeping forwarded packets.
    pub fn filter_batch(&mut self, packets: Vec<Packet>) -> Vec<Packet> {
        packets
            .into_iter()
            .filter(|p| match self.judge(p) {
                Verdict::Allow => {
                    self.stats.allowed += 1;
                    true
                }
                Verdict::Block => {
                    self.stats.blocked += 1;
                    false
                }
            })
            .collect()
    }

    /// Activity counters so far.
    pub fn stats(&self) -> FirewallStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Payload;
    use std::net::Ipv4Addr;

    fn pkt(name: &str) -> Packet {
        Packet::outgoing(
            1,
            Domain::parse(name).unwrap(),
            Ipv4Addr::new(10, 0, 0, 1),
            Payload::Encrypted { len: 64 },
        )
    }

    #[test]
    fn blocks_ad_tracking_endpoints() {
        let mut fw = Firewall::new();
        assert!(fw.filter(&pkt("dts.podtrac.com")).is_none());
        assert!(fw.filter(&pkt("dcs.megaphone.fm")).is_none());
        assert_eq!(fw.stats().blocked, 2);
    }

    #[test]
    fn allows_functional_traffic() {
        let mut fw = Firewall::new();
        assert!(fw.filter(&pkt("avs-alexa-na.amazon.com")).is_some());
        assert!(fw.filter(&pkt("dillilabs.com")).is_some());
        assert_eq!(fw.stats().allowed, 2);
        assert_eq!(fw.stats().blocked, 0);
    }

    #[test]
    fn blocks_device_metrics_exact_host() {
        let mut fw = Firewall::new();
        assert!(fw.filter(&pkt("device-metrics-us-2.amazon.com")).is_none());
        assert!(fw.filter(&pkt("api.amazon.com")).is_some());
    }

    #[test]
    fn allowlist_overrides_blocklist() {
        let mut fw = Firewall::new();
        fw.allow(Domain::parse("podtrac.com").unwrap());
        assert!(fw.filter(&pkt("dts.podtrac.com")).is_some());
        assert!(fw.filter(&pkt("chtbl.com")).is_none());
    }

    #[test]
    fn batch_filter_partitions() {
        let mut fw = Firewall::new();
        let batch = vec![
            pkt("api.amazon.com"),
            pkt("chtbl.com"),
            pkt("dillilabs.com"),
        ];
        let kept = fw.filter_batch(batch);
        assert_eq!(kept.len(), 2);
        assert_eq!(
            fw.stats(),
            FirewallStats {
                allowed: 2,
                blocked: 1
            }
        );
        assert!((fw.stats().blocked_share() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_share_is_zero() {
        assert_eq!(FirewallStats::default().blocked_share(), 0.0);
    }
}
